//! # SAGA-Bench (Rust)
//!
//! Umbrella crate for the Rust reproduction of *SAGA-Bench: Software and
//! Hardware Characterization of StreAming Graph Analytics Workloads*
//! (Basak et al., ISPASS 2020).
//!
//! The suite is organized as a workspace; this crate re-exports every member
//! so downstream users (and the root-level examples and integration tests)
//! can depend on a single package:
//!
//! - [`graph`] — the four dynamic graph data structures (AS, AC, Stinger,
//!   DAH) behind the [`graph::DynamicGraph`] trait, plus CSR snapshots.
//! - [`stream`] — edge-stream generation (RMAT and SNAP-like dataset
//!   profiles), shuffling, batching, and per-batch degree statistics.
//! - [`algorithms`] — six vertex-centric algorithms in both the
//!   recomputation-from-scratch (FS) and incremental (INC) compute models.
//! - [`core`] — the streaming driver (interleaved update/compute), the
//!   experiment harness, P1/P2/P3 stage aggregation, and report formatting.
//! - [`perf`] — the trace-driven memory-hierarchy simulator substituting for
//!   the paper's Intel PCM hardware counters.
//! - [`server`] — a dependency-free multi-tenant HTTP service hosting many
//!   named streaming-analytics sessions (structure × algorithm × compute
//!   model) concurrently, with admission-controlled ingest and journaled
//!   batches for offline differential replay (DESIGN.md §13).
//! - [`utils`] — the parallel runtime, memory-access probes, statistics, and
//!   small shared primitives.
//! - [`trace`] — the observability layer: structured spans and instants
//!   (`SAGA_TRACE=1` exports a Chrome trace-event timeline), plus the
//!   counter/gauge/histogram metrics registry (see README §Observability).
//!
//! # Quickstart
//!
//! ```rust
//! use saga_bench_suite::prelude::*;
//!
//! // A small LiveJournal-like stream, batched.
//! let dataset = DatasetProfile::livejournal().scaled(1_000, 20_000);
//! let stream = dataset.generate(7);
//!
//! // Stream it into a DAH structure, running incremental PageRank per batch.
//! let mut driver = StreamDriver::builder(DataStructureKind::Dah, dataset.num_nodes())
//!     .algorithm(AlgorithmKind::PageRank)
//!     .compute_model(ComputeModelKind::Incremental)
//!     .batch_size(4_000)
//!     .threads(2)
//!     .build();
//! let outcome = driver.run(&stream);
//! assert_eq!(outcome.batches.len(), 5);
//! ```

pub use saga_algorithms as algorithms;
pub use saga_core as core;
pub use saga_graph as graph;
pub use saga_perf as perf;
pub use saga_server as server;
pub use saga_stream as stream;
pub use saga_trace as trace;
pub use saga_utils as utils;

/// Convenient glob-import surface used by the examples and tests.
pub mod prelude {
    pub use saga_algorithms::{AlgorithmKind, ComputeModelKind};
    pub use saga_core::driver::{StreamDriver, StreamOutcome};
    pub use saga_core::stages::{Stage, StageSummary};
    pub use saga_graph::{DataStructureKind, DynamicGraph, Edge, Node};
    pub use saga_stream::{batching::BatchIter, profiles::DatasetProfile};
}
