//! `saga` — command-line driver for the SAGA-Bench suite.
//!
//! Runs one streaming-analytics configuration end to end and prints the
//! per-batch latency breakdown plus a stage summary:
//!
//! ```text
//! saga run --dataset LJ --structure AS --algorithm PR --model INC
//! saga run --dataset Talk --structure DAH --algorithm BFS --scale 0.5 --threads 4
//! saga run --file soc-LiveJournal1.txt --structure Stinger --algorithm CC
//! saga list
//! ```

use saga_bench_suite::algorithms::{AlgorithmKind, ComputeModelKind};
use saga_bench_suite::core::driver::StreamDriver;
use saga_bench_suite::core::stages::{stage_of, Stage};
use saga_bench_suite::graph::DataStructureKind;
use saga_bench_suite::stream::loader::load_snap_text;
use saga_bench_suite::stream::profiles::DatasetProfile;
use saga_bench_suite::stream::EdgeStream;
use saga_bench_suite::utils::stats::Summary;

fn usage() -> ! {
    eprintln!(
        "usage:
  saga run [options]     stream a dataset through one configuration
  saga list              list datasets, structures, algorithms

run options:
  --dataset <LJ|Orkut|RMAT|Wiki|Talk>   synthetic profile (default: LJ)
  --file <path>                         SNAP edge-list file instead of a profile
  --undirected                          treat --file edges as undirected
  --structure <AS|AC|Stinger|DAH|DeltaCSR>  data structure (default: AS)
  --algorithm <BFS|CC|MC|PR|SSSP|SSWP>  algorithm (default: PR)
  --model <FS|INC>                      compute model (default: INC)
  --scale <f>                           dataset scale multiplier (default: 1.0)
  --batch <n>                           batch size (default: dataset suggestion)
  --threads <n>                         worker threads (default: available)
  --seed <n>                            stream seed (default: 42)"
    );
    std::process::exit(2)
}

fn parse_structure(s: &str) -> Option<DataStructureKind> {
    DataStructureKind::ALL_WITH_DELTA
        .into_iter()
        .find(|k| k.abbrev().eq_ignore_ascii_case(s))
}

fn parse_algorithm(s: &str) -> Option<AlgorithmKind> {
    AlgorithmKind::ALL
        .into_iter()
        .find(|k| k.abbrev().eq_ignore_ascii_case(s))
}

fn parse_model(s: &str) -> Option<ComputeModelKind> {
    ComputeModelKind::ALL
        .into_iter()
        .find(|k| k.abbrev().eq_ignore_ascii_case(s))
}

fn parse_dataset(s: &str) -> Option<DatasetProfile> {
    DatasetProfile::all()
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(s))
}

fn list() {
    println!("datasets (synthetic stand-ins for the paper's Table II):");
    for p in DatasetProfile::all() {
        let stats = p.paper_stats();
        println!(
            "  {:<6} paper: {} vertices / {} edges, scaled default: {} / {} ({})",
            p.name(),
            stats.vertices,
            stats.edges,
            p.num_nodes(),
            p.num_edges(),
            if p.is_directed() { "directed" } else { "undirected" },
        );
    }
    println!("\nstructures: AS, AC, Stinger, DAH, DeltaCSR");
    println!("algorithms: BFS, CC, MC, PR, SSSP, SSWP");
    println!("compute models: FS, INC");
}

struct RunArgs {
    dataset: DatasetProfile,
    file: Option<String>,
    undirected: bool,
    structure: DataStructureKind,
    algorithm: AlgorithmKind,
    model: ComputeModelKind,
    scale: f64,
    batch: Option<usize>,
    threads: usize,
    seed: u64,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            dataset: DatasetProfile::livejournal(),
            file: None,
            undirected: false,
            structure: DataStructureKind::AdjacencyShared,
            algorithm: AlgorithmKind::PageRank,
            model: ComputeModelKind::Incremental,
            scale: 1.0,
            batch: None,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            seed: 42,
        }
    }
}

fn parse_run_args(args: &[String]) -> RunArgs {
    let mut out = RunArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage()).as_str();
        match flag.as_str() {
            "--dataset" => {
                let v = value();
                out.dataset = parse_dataset(v).unwrap_or_else(|| {
                    eprintln!("unknown dataset: {v}");
                    usage()
                });
            }
            "--file" => out.file = Some(value().to_string()),
            "--undirected" => out.undirected = true,
            "--structure" => {
                let v = value();
                out.structure = parse_structure(v).unwrap_or_else(|| {
                    eprintln!("unknown structure: {v}");
                    usage()
                });
            }
            "--algorithm" => {
                let v = value();
                out.algorithm = parse_algorithm(v).unwrap_or_else(|| {
                    eprintln!("unknown algorithm: {v}");
                    usage()
                });
            }
            "--model" => {
                let v = value();
                out.model = parse_model(v).unwrap_or_else(|| {
                    eprintln!("unknown compute model: {v}");
                    usage()
                });
            }
            "--scale" => out.scale = value().parse().unwrap_or_else(|_| usage()),
            "--batch" => out.batch = Some(value().parse().unwrap_or_else(|_| usage())),
            "--threads" => out.threads = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => out.seed = value().parse().unwrap_or_else(|_| usage()),
            _ => {
                eprintln!("unknown option: {flag}");
                usage()
            }
        }
    }
    out
}

fn load_stream(args: &RunArgs) -> EdgeStream {
    match &args.file {
        Some(path) => load_snap_text(path, !args.undirected, args.seed).unwrap_or_else(|e| {
            eprintln!("could not load {path}: {e}");
            std::process::exit(1)
        }),
        None => args.dataset.clone().scaled_by(args.scale).generate(args.seed),
    }
}

fn run(args: RunArgs) {
    let stream = load_stream(&args);
    let batch_size = args.batch.unwrap_or(stream.suggested_batch_size);
    println!(
        "{} | {} vertices, {} edges, {} batches of {} | {} + {} on {} | {} threads",
        stream.name,
        stream.num_nodes,
        stream.edges.len(),
        stream.edges.len().div_ceil(batch_size),
        batch_size,
        args.algorithm,
        args.model,
        args.structure,
        args.threads,
    );
    let mut builder = StreamDriver::builder(args.structure, stream.num_nodes)
        .algorithm(args.algorithm)
        .compute_model(args.model)
        .threads(args.threads)
        .batch_size(batch_size);
    if args.batch.is_none() {
        builder = builder.batch_size(stream.suggested_batch_size);
    }
    let mut driver = builder.build();
    let outcome = driver.run(&stream);

    println!("\nbatch  update(ms)  compute(ms)  total(ms)  update%");
    println!("---------------------------------------------------");
    for b in &outcome.batches {
        println!(
            "{:>5}  {:>10.2}  {:>11.2}  {:>9.2}  {:>6.1}%",
            b.index,
            b.update_seconds * 1e3,
            b.compute_seconds * 1e3,
            b.batch_seconds() * 1e3,
            b.update_fraction() * 100.0
        );
    }

    // Stage summary (§IV-B of the paper).
    let total = outcome.batches.len();
    println!("\nstage  mean batch latency (ms)  95% CI (±ms)");
    println!("---------------------------------------------");
    for stage in Stage::ALL {
        let samples: Vec<f64> = outcome
            .batches
            .iter()
            .filter(|b| stage_of(b.index, total) == stage)
            .map(|b| b.batch_seconds() * 1e3)
            .collect();
        let s = Summary::from_samples(&samples);
        println!("{stage:>5}  {:>23.3}  {:>12.3}", s.mean, s.ci95);
    }
    println!(
        "\ntotal: {} unique edges, {:.1} ms end to end",
        outcome.total_edges,
        outcome.total_seconds() * 1e3
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(parse_run_args(&args[1..])),
        Some("list") => list(),
        _ => usage(),
    }
}
