//! The central correctness invariant of the benchmark: after every batch,
//! the incremental compute model must produce the same results as
//! recomputation from scratch — exactly for the five monotone algorithms,
//! and within convergence tolerance for PageRank — on every data structure.

use saga_algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind,
    VertexValues,
};
use saga_graph::{build_graph, DataStructureKind, Edge, Node, Weight};
use saga_utils::hash::{hash_edge, mix64};
use saga_utils::parallel::ThreadPool;

const NODES: usize = 300;
const BATCHES: usize = 6;
const BATCH_SIZE: usize = 500;

fn weight(src: Node, dst: Node) -> Weight {
    1.0 + (hash_edge(src, dst) % 64) as Weight / 8.0
}

/// Deterministic pseudo-random stream with a mild hub to exercise
/// contention paths.
fn stream(seed: u64, directed: bool) -> Vec<Vec<Edge>> {
    (0..BATCHES)
        .map(|b| {
            (0..BATCH_SIZE)
                .map(|i| {
                    let r = mix64(seed ^ ((b * BATCH_SIZE + i) as u64));
                    let src = if r.is_multiple_of(17) {
                        7 // hub
                    } else {
                        ((r >> 8) % NODES as u64) as Node
                    };
                    let dst = ((r >> 32) % NODES as u64) as Node;
                    let _ = directed;
                    Edge::new(src, dst, weight(src, dst))
                })
                .collect()
        })
        .collect()
}

fn assert_equivalent(kind: AlgorithmKind, batch_idx: usize, ds: DataStructureKind, fs: &VertexValues, inc: &VertexValues) {
    match (fs, inc) {
        (VertexValues::U32(a), VertexValues::U32(b)) => {
            assert_eq!(a, b, "{kind} diverged on {ds:?} at batch {batch_idx}");
        }
        (VertexValues::F32(a), VertexValues::F32(b)) => {
            for (v, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    x == y || (x - y).abs() < 1e-4,
                    "{kind} diverged on {ds:?} at batch {batch_idx}, vertex {v}: FS {x} INC {y}"
                );
            }
        }
        (VertexValues::F64(a), VertexValues::F64(b)) => {
            for (v, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-6,
                    "{kind} diverged on {ds:?} at batch {batch_idx}, vertex {v}: FS {x} INC {y}"
                );
            }
        }
        _ => panic!("value type mismatch"),
    }
}

fn run_equivalence(kind: AlgorithmKind, ds: DataStructureKind, directed: bool) {
    let pool = ThreadPool::new(4);
    let graph = build_graph(ds, NODES, directed, pool.threads());
    let params = AlgorithmParams {
        root: 7,
        pr_epsilon: 1e-11,
        pr_fs_tolerance: 1e-11,
        ..AlgorithmParams::default()
    };
    let mut fs_state = AlgorithmState::new(kind, ComputeModelKind::FromScratch, NODES, params);
    let mut inc_state = AlgorithmState::new(kind, ComputeModelKind::Incremental, NODES, params);
    let mut tracker = AffectedTracker::new(NODES);
    for (i, batch) in stream(0xBEEF ^ kind as u64, directed).iter().enumerate() {
        graph.update_batch(batch, &pool);
        let impact = tracker.process_batch(
            graph.as_ref(),
            batch,
            inc_state.affects_source_neighborhood(),
            &pool,
        );
        fs_state.perform_alg(graph.as_ref(), &impact.affected, &impact.new_vertices, &pool);
        inc_state.perform_alg(graph.as_ref(), &impact.affected, &impact.new_vertices, &pool);
        assert_equivalent(kind, i, ds, &fs_state.values(), &inc_state.values());
    }
}

macro_rules! equivalence_tests {
    ($($name:ident: $kind:expr, $ds:expr;)*) => {
        $(
            #[test]
            fn $name() {
                run_equivalence($kind, $ds, true);
            }
        )*
    };
}

equivalence_tests! {
    bfs_as: AlgorithmKind::Bfs, DataStructureKind::AdjacencyShared;
    bfs_ac: AlgorithmKind::Bfs, DataStructureKind::AdjacencyChunked;
    bfs_stinger: AlgorithmKind::Bfs, DataStructureKind::Stinger;
    bfs_dah: AlgorithmKind::Bfs, DataStructureKind::Dah;
    cc_as: AlgorithmKind::Cc, DataStructureKind::AdjacencyShared;
    cc_ac: AlgorithmKind::Cc, DataStructureKind::AdjacencyChunked;
    cc_stinger: AlgorithmKind::Cc, DataStructureKind::Stinger;
    cc_dah: AlgorithmKind::Cc, DataStructureKind::Dah;
    mc_as: AlgorithmKind::Mc, DataStructureKind::AdjacencyShared;
    mc_ac: AlgorithmKind::Mc, DataStructureKind::AdjacencyChunked;
    mc_stinger: AlgorithmKind::Mc, DataStructureKind::Stinger;
    mc_dah: AlgorithmKind::Mc, DataStructureKind::Dah;
    pr_as: AlgorithmKind::PageRank, DataStructureKind::AdjacencyShared;
    pr_ac: AlgorithmKind::PageRank, DataStructureKind::AdjacencyChunked;
    pr_stinger: AlgorithmKind::PageRank, DataStructureKind::Stinger;
    pr_dah: AlgorithmKind::PageRank, DataStructureKind::Dah;
    sssp_as: AlgorithmKind::Sssp, DataStructureKind::AdjacencyShared;
    sssp_ac: AlgorithmKind::Sssp, DataStructureKind::AdjacencyChunked;
    sssp_stinger: AlgorithmKind::Sssp, DataStructureKind::Stinger;
    sssp_dah: AlgorithmKind::Sssp, DataStructureKind::Dah;
    sswp_as: AlgorithmKind::Sswp, DataStructureKind::AdjacencyShared;
    sswp_ac: AlgorithmKind::Sswp, DataStructureKind::AdjacencyChunked;
    sswp_stinger: AlgorithmKind::Sswp, DataStructureKind::Stinger;
    sswp_dah: AlgorithmKind::Sswp, DataStructureKind::Dah;
}

#[test]
fn undirected_equivalence_all_algorithms() {
    for kind in AlgorithmKind::ALL {
        eprintln!("[undirected] {kind} on AS");
        run_equivalence(kind, DataStructureKind::AdjacencyShared, false);
        eprintln!("[undirected] {kind} on DAH");
        run_equivalence(kind, DataStructureKind::Dah, false);
    }
}

#[test]
fn all_structures_agree_with_each_other() {
    // The same stream must yield identical BFS depths on every structure.
    let pool = ThreadPool::new(4);
    let batches = stream(0x1234, true);
    let mut results: Vec<VertexValues> = Vec::new();
    for ds in DataStructureKind::ALL {
        let graph = build_graph(ds, NODES, true, pool.threads());
        let params = AlgorithmParams {
            root: 7,
            ..AlgorithmParams::default()
        };
        let mut state =
            AlgorithmState::new(AlgorithmKind::Bfs, ComputeModelKind::Incremental, NODES, params);
        let mut tracker = AffectedTracker::new(NODES);
        for batch in &batches {
            graph.update_batch(batch, &pool);
            let impact = tracker.process_batch(graph.as_ref(), batch, false, &pool);
            state.perform_alg(graph.as_ref(), &impact.affected, &impact.new_vertices, &pool);
        }
        results.push(state.values());
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1], "structures disagree on final BFS depths");
    }
}
