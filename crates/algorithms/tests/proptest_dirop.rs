//! Property-based direction-optimizing BFS equivalence: for arbitrary edge
//! streams — including hub-heavy ones that push the scout-count heuristic
//! into its bottom-up regime — the Beamer-style kernel must produce exactly
//! the depths of classic top-down BFS and of a sequential reference walk,
//! on every structure (the paper's four plus delta-CSR, whose replay
//! crosses compaction boundaries when batches are large enough).

use proptest::prelude::*;
use saga_algorithms::bfs::{bfs_direction_optimizing, bfs_from_scratch, BfsProgram, UNREACHED};
use saga_algorithms::fs::reset_values;
use saga_graph::properties::AtomicU32Array;
use saga_graph::{build_graph, DataStructureKind, Edge, GraphTopology, Node};
use saga_utils::parallel::ThreadPool;

const NODES: usize = 48;

/// Uniform random batches, like the FS/INC property suite uses.
fn arb_batches() -> impl Strategy<Value = Vec<Vec<Edge>>> {
    prop::collection::vec(
        prop::collection::vec((0..NODES as Node, 0..NODES as Node), 1..100),
        1..4,
    )
    .prop_map(to_edges)
}

/// Hub-heavy batches: a handful of hubs fan out to arbitrary vertices, so
/// mid-search frontiers cover most of the graph and the dense switch fires.
fn arb_hub_batches() -> impl Strategy<Value = Vec<Vec<Edge>>> {
    prop::collection::vec(
        prop::collection::vec((0..4 as Node, 0..NODES as Node), 40..160),
        1..3,
    )
    .prop_map(to_edges)
}

fn to_edges(batches: Vec<Vec<(Node, Node)>>) -> Vec<Vec<Edge>> {
    batches
        .into_iter()
        .map(|batch| {
            batch
                .into_iter()
                .map(|(s, d)| Edge::new(s, d, 1.0))
                .collect()
        })
        .collect()
}

/// Sequential queue BFS over the structure's own topology view — the
/// trust anchor both parallel kernels are compared against.
fn reference_depths(g: &dyn GraphTopology, root: Node) -> Vec<u32> {
    let mut depth = vec![UNREACHED; NODES];
    depth[root as usize] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        let d = depth[v as usize];
        let mut frontier: Vec<Node> = Vec::new();
        g.for_each_out_neighbor(v, &mut |nb, _| frontier.push(nb));
        for nb in frontier {
            if depth[nb as usize] == UNREACHED {
                depth[nb as usize] = d + 1;
                queue.push_back(nb);
            }
        }
    }
    depth
}

fn check_dirop_equivalence(batches: &[Vec<Edge>], root: Node) -> Result<(), TestCaseError> {
    let pool = ThreadPool::new(3);
    for ds in DataStructureKind::ALL_WITH_DELTA {
        let graph = build_graph(ds, NODES, true, pool.threads());
        let program = BfsProgram::new(root);
        for (i, batch) in batches.iter().enumerate() {
            graph.update_batch(batch, &pool);
            let reference = reference_depths(graph.as_ref(), root);

            let classic = AtomicU32Array::filled(NODES, 0);
            reset_values(&program, &classic, NODES, &pool);
            bfs_from_scratch(&program, graph.as_ref(), &classic, &pool);
            prop_assert_eq!(
                &classic.to_vec(),
                &reference,
                "top-down batch {} on {:?}",
                i,
                ds
            );

            let dirop = AtomicU32Array::filled(NODES, 0);
            reset_values(&program, &dirop, NODES, &pool);
            bfs_direction_optimizing(&program, graph.as_ref(), &dirop, &pool);
            prop_assert_eq!(
                &dirop.to_vec(),
                &reference,
                "direction-optimizing batch {} on {:?}",
                i,
                ds
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dirop_bfs_matches_topdown_on_all_structures(
        batches in arb_batches(),
        root in 0..NODES as Node,
    ) {
        check_dirop_equivalence(&batches, root)?;
    }

    #[test]
    fn dirop_bfs_matches_topdown_on_hub_heavy_streams(
        batches in arb_hub_batches(),
        root in 0..4 as Node,
    ) {
        check_dirop_equivalence(&batches, root)?;
    }
}
