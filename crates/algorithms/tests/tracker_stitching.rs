//! Worker-order stitching of [`AffectedTracker::process_mixed_batch`]:
//! the affected/new-vertex sets must be permutation-equal regardless of
//! how many workers raced on the generation marks — a single-threaded
//! pool is the ground truth for an 8-way pool. A real divergence here
//! would mean the try_mark/worker-buffer stitching loses or duplicates
//! vertices under contention.

use std::collections::BTreeSet;

use saga_algorithms::AffectedTracker;
use saga_graph::{build_deletable_graph, DataStructureKind, Edge, Node};
use saga_utils::hash::mix64;
use saga_utils::parallel::ThreadPool;

const NODES: usize = 200;

fn weight(src: Node, dst: Node) -> f32 {
    1.0 + ((src ^ dst) % 8) as f32
}

/// A hub-heavy batch: lots of duplicate endpoints so the marks race.
fn batch(seed: u64, len: usize) -> Vec<Edge> {
    (0..len)
        .map(|i| {
            let r = mix64(seed ^ i as u64);
            // Concentrate a third of the batch on a few hubs.
            let src = if r.is_multiple_of(3) { (r % 4) as Node } else { (r % NODES as u64) as Node };
            let dst = ((r >> 17) % NODES as u64) as Node;
            Edge::new(src, dst, weight(src, dst))
        })
        .collect()
}

fn sorted(v: &[Node]) -> Vec<Node> {
    let mut v = v.to_vec();
    v.sort_unstable();
    v
}

/// Runs three mixed batches through one tracker at the given pool width,
/// returning per-batch sorted (affected, new_vertices) sets.
fn run(threads: usize, source_hoods: bool, delete_hoods: bool) -> Vec<(Vec<Node>, Vec<Node>)> {
    let pool = ThreadPool::new(threads);
    let graph = build_deletable_graph(DataStructureKind::Stinger, NODES, true, pool.threads());
    let mut tracker = AffectedTracker::new(NODES);
    let mut out = Vec::new();
    for b in 0..3u64 {
        let inserts = batch(0x51ED * (b + 1), 400);
        let deletes: Vec<Edge> = batch(0x51ED * (b + 1), 400)
            .into_iter()
            .step_by(3)
            .collect();
        graph.update_batch(&inserts, &pool);
        graph.delete_batch(&deletes, &pool);
        let impact = tracker.process_mixed_batch(
            graph.as_ref(),
            &inserts,
            &deletes,
            source_hoods,
            delete_hoods,
            &pool,
        );
        // Within one batch the report itself must already be duplicate-free.
        let unique: BTreeSet<Node> = impact.affected.iter().copied().collect();
        assert_eq!(unique.len(), impact.affected.len(), "affected has duplicates");
        let unique: BTreeSet<Node> = impact.new_vertices.iter().copied().collect();
        assert_eq!(unique.len(), impact.new_vertices.len(), "new_vertices has duplicates");
        out.push((sorted(&impact.affected), sorted(&impact.new_vertices)));
    }
    out
}

/// The ground truth: a single worker. Any wider pool must report the same
/// sets (as sets — the stitched order may differ) for every batch and
/// every neighborhood-seeding mode.
#[test]
fn mixed_batch_stitching_is_permutation_equal_across_pool_widths() {
    for (source_hoods, delete_hoods) in
        [(false, false), (true, false), (false, true), (true, true)]
    {
        let reference = run(1, source_hoods, delete_hoods);
        for threads in [2, 8] {
            let wide = run(threads, source_hoods, delete_hoods);
            assert_eq!(
                reference, wide,
                "tracker output diverged at {threads} threads \
                 (source_hoods={source_hoods}, delete_hoods={delete_hoods})"
            );
        }
    }
}

/// Re-running the same batches through a *fresh* tracker on a fresh graph
/// is deterministic at any width: first-seen bookkeeping (`seen` bitvec)
/// must not leak across tracker instances.
#[test]
fn fresh_trackers_are_deterministic() {
    let a = run(8, true, true);
    let b = run(8, true, true);
    assert_eq!(a, b);
}
