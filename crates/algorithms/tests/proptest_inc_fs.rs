//! Property-based FS/INC equivalence: for arbitrary random streams, the
//! incremental compute model must agree with from-scratch recomputation on
//! the monotone algorithms after every batch.

use proptest::prelude::*;
use saga_algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind,
    VertexValues,
};
use saga_graph::{build_graph, DataStructureKind, Edge, Node};
use saga_utils::parallel::ThreadPool;

const NODES: usize = 40;

fn arb_stream() -> impl Strategy<Value = Vec<Vec<Edge>>> {
    prop::collection::vec(
        prop::collection::vec((0..NODES as Node, 0..NODES as Node), 1..80),
        1..5,
    )
    .prop_map(|batches| {
        batches
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .map(|(s, d)| {
                        Edge::new(s, d, 1.0 + (saga_utils::hash::hash_edge(s, d) % 8) as f32)
                    })
                    .collect()
            })
            .collect()
    })
}

fn check_equivalence(
    kind: AlgorithmKind,
    batches: &[Vec<Edge>],
    ds: DataStructureKind,
    root: Node,
) -> Result<(), TestCaseError> {
    let pool = ThreadPool::new(3);
    let graph = build_graph(ds, NODES, true, pool.threads());
    let params = AlgorithmParams {
        root,
        ..AlgorithmParams::default()
    };
    let mut fs = AlgorithmState::new(kind, ComputeModelKind::FromScratch, NODES, params);
    let mut inc = AlgorithmState::new(kind, ComputeModelKind::Incremental, NODES, params);
    let mut tracker = AffectedTracker::new(NODES);
    for (i, batch) in batches.iter().enumerate() {
        graph.update_batch(batch, &pool);
        let impact = tracker.process_batch(graph.as_ref(), batch, false, &pool);
        fs.perform_alg(graph.as_ref(), &impact.affected, &impact.new_vertices, &pool);
        inc.perform_alg(graph.as_ref(), &impact.affected, &impact.new_vertices, &pool);
        match (fs.values(), inc.values()) {
            (VertexValues::U32(a), VertexValues::U32(b)) => {
                prop_assert_eq!(a, b, "{} batch {} on {:?}", kind, i, ds);
            }
            (VertexValues::F32(a), VertexValues::F32(b)) => {
                for (v, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                    prop_assert!(
                        x == y || (x - y).abs() < 1e-4,
                        "{} batch {} vertex {}: FS {} INC {}",
                        kind,
                        i,
                        v,
                        x,
                        y
                    );
                }
            }
            _ => prop_assert!(false, "unexpected value type"),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bfs_inc_equals_fs(batches in arb_stream(), root in 0..NODES as Node) {
        check_equivalence(AlgorithmKind::Bfs, &batches, DataStructureKind::AdjacencyShared, root)?;
    }

    #[test]
    fn cc_inc_equals_fs(batches in arb_stream()) {
        check_equivalence(AlgorithmKind::Cc, &batches, DataStructureKind::Dah, 0)?;
    }

    #[test]
    fn mc_inc_equals_fs(batches in arb_stream()) {
        check_equivalence(AlgorithmKind::Mc, &batches, DataStructureKind::Stinger, 0)?;
    }

    #[test]
    fn sssp_inc_equals_fs(batches in arb_stream(), root in 0..NODES as Node) {
        check_equivalence(AlgorithmKind::Sssp, &batches, DataStructureKind::AdjacencyChunked, root)?;
    }

    #[test]
    fn sswp_inc_equals_fs(batches in arb_stream(), root in 0..NODES as Node) {
        check_equivalence(AlgorithmKind::Sswp, &batches, DataStructureKind::AdjacencyShared, root)?;
    }
}
