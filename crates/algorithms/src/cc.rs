//! Connected Components.
//!
//! Table I: `v.value ← min(v.value, min_{e ∈ Edges(v)} e.other.value)` —
//! note `Edges(v)`, not `InEdges(v)`: connectivity ignores edge direction,
//! so the program's scope is [`EdgeScope::Symmetric`].
//!
//! The FS kernel is whole-graph label propagation to fixpoint
//! ([`fixpoint_compute`]); every vertex starts labeled with its own id and
//! components converge to the minimum id they contain.
//!
//! [`fixpoint_compute`]: crate::fs::fixpoint_compute

use crate::program::{EdgeScope, ValueStore, VertexProgram};
use saga_graph::properties::AtomicU32Array;
use saga_graph::{GraphTopology, Node};

/// Connected components as a vertex program.
///
/// # Examples
///
/// ```
/// use saga_algorithms::cc::CcProgram;
/// use saga_algorithms::program::{EdgeScope, VertexProgram};
///
/// let p = CcProgram::new();
/// assert_eq!(p.scope(), EdgeScope::Symmetric);
/// assert_eq!(p.initial(7, 10), 7); // own id
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CcProgram;

impl CcProgram {
    /// Creates the program.
    pub fn new() -> Self {
        Self
    }
}

impl VertexProgram for CcProgram {
    type Value = u32;
    type Store = AtomicU32Array;

    fn name(&self) -> &'static str {
        "CC"
    }

    fn scope(&self) -> EdgeScope {
        EdgeScope::Symmetric
    }

    fn initial(&self, v: Node, _num_nodes: usize) -> u32 {
        v
    }

    fn pull(&self, graph: &dyn GraphTopology, v: Node, values: &Self::Store) -> u32 {
        let mut best = values.load(v as usize);
        graph.for_each_out_neighbor(v, &mut |nb, _| {
            best = best.min(values.load(nb as usize));
        });
        if graph.is_directed() {
            graph.for_each_in_neighbor(v, &mut |nb, _| {
                best = best.min(values.load(nb as usize));
            });
        }
        best
    }

    fn combine(&self, old: u32, pulled: u32) -> u32 {
        old.min(pulled)
    }

    fn significant_change(&self, old: u32, new: u32) -> bool {
        new < old
    }

    fn derives_from(&self, value: u32, src_value: u32, _weight: f32) -> bool {
        // Labels propagate unchanged, so a vertex's label may come from any
        // equal-labeled neighbor. The label's *owner* is never tagged: its
        // value equals its initial and the repair pass skips those.
        value == src_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{fixpoint_compute, reset_values};
    use saga_graph::{build_graph, DataStructureKind, Edge};
    use saga_utils::parallel::ThreadPool;

    #[test]
    fn direction_is_ignored() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::AdjacencyShared, 4, true, 1);
        // 2 -> 0 and 2 -> 1: all three are one component despite direction.
        g.update_batch(&[Edge::new(2, 0, 1.0), Edge::new(2, 1, 1.0)], &pool);
        let program = CcProgram::new();
        let values = AtomicU32Array::filled(4, 0);
        reset_values(&program, &values, 4, &pool);
        fixpoint_compute(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.to_vec(), vec![0, 0, 0, 3]);
    }

    #[test]
    fn undirected_components() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::Dah, 6, false, 2);
        g.update_batch(&[Edge::new(5, 4, 1.0), Edge::new(4, 3, 1.0), Edge::new(1, 0, 1.0)], &pool);
        let program = CcProgram::new();
        let values = AtomicU32Array::filled(6, 0);
        reset_values(&program, &values, 6, &pool);
        fixpoint_compute(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.to_vec(), vec![0, 0, 2, 3, 3, 3]);
    }
}
