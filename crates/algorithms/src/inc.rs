//! The incremental compute model (**INC**) — Algorithm 1 of the paper.
//!
//! INC exploits the overlap between successive compute phases with two
//! techniques (§III-B):
//!
//! 1. **Processing amortization** — computation starts from the vertex
//!    values produced by the previous batch's compute phase (implemented by
//!    never resetting the store, and by the program's `combine` keeping
//!    monotone values valid).
//! 2. **Selective triggering** — computation starts from only the vertices
//!    affected by the latest update; changes larger than the triggering
//!    condition propagate iteration-by-iteration to neighbors, guarded by a
//!    CAS `visited` bitvector, until no vertex is triggered.

use crate::program::{EdgeScope, ValueStore, VertexProgram};
use crossbeam::queue::SegQueue;
use saga_graph::{GraphTopology, Node};
use saga_utils::bitvec::AtomicBitVec;
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::sync::atomic::{AtomicUsize, Ordering};

/// What an incremental compute phase did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncOutcome {
    /// Frontier rounds executed, including the initial affected pass.
    pub iterations: usize,
    /// Total vertex-function evaluations.
    pub recomputed: usize,
    /// Vertices whose change was significant enough to trigger neighbors.
    pub triggered: usize,
}

/// Runs Algorithm 1: recompute `affected`, then propagate significant
/// changes through `visited`-guarded frontier queues until quiescence.
///
/// `new_vertices` are vertices appearing in the stream for the first time;
/// they are reset to the program's initial value (lines 2–4).
pub fn incremental_compute<P: VertexProgram>(
    program: &P,
    graph: &dyn GraphTopology,
    values: &P::Store,
    affected: &[Node],
    new_vertices: &[Node],
    pool: &ThreadPool,
) -> IncOutcome {
    let n = graph.capacity();
    // Lines 2–4: initialize vertices entering the graph this batch.
    pool.parallel_for(0..new_vertices.len(), Schedule::Static, |i| {
        let v = new_vertices[i];
        values.store(v as usize, program.initial(v, n));
    });

    let mut visited = AtomicBitVec::new(n);
    let next: SegQueue<Node> = SegQueue::new();
    let recomputed = AtomicUsize::new(0);
    let triggered = AtomicUsize::new(0);

    let process = |frontier: &[Node], visited: &AtomicBitVec| {
        let grain = saga_utils::parallel::adaptive_grain(frontier.len(), pool.threads());
        pool.parallel_for(0..frontier.len(), Schedule::Dynamic(grain), |i| {
            let v = frontier[i];
            recomputed.fetch_add(1, Ordering::Relaxed);
            // Lines 9–10: re-calculate the vertex function.
            let old = values.load(v as usize);
            let pulled = program.pull(graph, v, values);
            let new = program.combine(old, pulled);
            if new != old {
                values.store(v as usize, new);
            }
            // Lines 11–15: trigger out-neighbors on significant change.
            if program.significant_change(old, new) {
                triggered.fetch_add(1, Ordering::Relaxed);
                let push = |nb: Node| {
                    if visited.try_set(nb as usize) {
                        next.push(nb);
                    }
                };
                graph.for_each_out_neighbor(v, &mut |nb, _| push(nb));
                if program.scope() == EdgeScope::Symmetric && graph.is_directed() {
                    graph.for_each_in_neighbor(v, &mut |nb, _| push(nb));
                }
            }
        });
    };

    // Lines 6–15: the affected pass.
    let mut iterations = 1;
    process(affected, &visited);

    // Lines 17–25: frontier propagation until quiescence.
    let mut frontier: Vec<Node> = Vec::new();
    loop {
        frontier.clear();
        while let Some(v) = next.pop() {
            frontier.push(v);
        }
        if frontier.is_empty() {
            break;
        }
        visited.clear_all(); // line 20
        iterations += 1;
        assert!(
            iterations < 1_000_000,
            "incremental compute did not quiesce after {iterations} rounds; \
             frontier has {} vertices (e.g. {:?})",
            frontier.len(),
            &frontier[..frontier.len().min(5)]
        );
        process(&frontier, &visited);
    }

    IncOutcome {
        iterations,
        recomputed: recomputed.load(Ordering::Relaxed),
        triggered: triggered.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsProgram;
    use saga_graph::{build_graph, DataStructureKind, Edge};

    #[test]
    fn empty_affected_set_is_a_noop() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::AdjacencyShared, 4, true, 1);
        let program = BfsProgram::new(0);
        let store = <BfsProgram as VertexProgram>::Store::create(4, u32::MAX);
        store.store(0, 0);
        let out = incremental_compute(&program, g.as_ref(), &store, &[], &[], &pool);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.recomputed, 0);
        assert_eq!(out.triggered, 0);
    }

    #[test]
    fn propagates_along_a_path() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::AdjacencyShared, 5, true, 1);
        g.update_batch(
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(2, 3, 1.0),
                Edge::new(3, 4, 1.0),
            ],
            &pool,
        );
        let program = BfsProgram::new(0);
        let store = <BfsProgram as VertexProgram>::Store::create(5, u32::MAX);
        store.store(0, 0);
        let affected: Vec<Node> = vec![0, 1, 2, 3, 4];
        let out = incremental_compute(&program, g.as_ref(), &store, &affected, &[], &pool);
        assert_eq!(store.load(4), 4);
        assert!(out.iterations >= 2, "chain must propagate over rounds");
        assert!(out.recomputed >= 5);
    }
}
