//! The incremental compute model (**INC**) — Algorithm 1 of the paper.
//!
//! INC exploits the overlap between successive compute phases with two
//! techniques (§III-B):
//!
//! 1. **Processing amortization** — computation starts from the vertex
//!    values produced by the previous batch's compute phase (implemented by
//!    never resetting the store, and by the program's `combine` keeping
//!    monotone values valid).
//! 2. **Selective triggering** — computation starts from only the vertices
//!    affected by the latest update; changes larger than the triggering
//!    condition propagate iteration-by-iteration to neighbors, guarded by a
//!    CAS `visited` bitvector, until no vertex is triggered.
//!
//! Deletion batches additionally get a KickStarter-style **repair pass**
//! ([`incremental_compute_with_deletions`]): monotone `combine` only ever
//! improves values, so a stored property that depended on a removed edge
//! would survive forever. The repair tags the transitive derivation
//! closure of the deleted edges, resets it to the program's initial
//! values, and reseeds it from surviving in-neighbors through the normal
//! trigger rounds — falling back to from-scratch recomputation when the
//! cascade exceeds a size threshold.

use crate::program::{EdgeScope, ValueStore, VertexProgram};
use saga_graph::{Edge, GraphTopology, Node};
use saga_utils::bitvec::AtomicBitVec;
use saga_utils::frontier::FlatFrontier;
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::prefetch::PREFETCH_DISTANCE;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};

/// What an incremental compute phase did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncOutcome {
    /// Frontier rounds executed, including the initial affected pass.
    pub iterations: usize,
    /// Total vertex-function evaluations.
    pub recomputed: usize,
    /// Vertices whose change was significant enough to trigger neighbors.
    pub triggered: usize,
    /// Vertices reset and reseeded by the deletion-repair pass.
    pub repaired: usize,
}

/// Result of an incremental phase over a batch that contained deletions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeletionOutcome {
    /// Repair (if any was needed) stayed under the threshold and the
    /// incremental rounds ran to quiescence.
    Done(IncOutcome),
    /// The repair cascade exceeded the caller's limit before closing; the
    /// value store was **not** modified. The caller should recompute from
    /// scratch (cheaper than resetting and reseeding most of the graph).
    CascadeOverflow {
        /// Vertices tagged before the limit tripped.
        tagged: usize,
    },
}

/// Runs Algorithm 1: recompute `affected`, then propagate significant
/// changes through `visited`-guarded frontier queues until quiescence.
///
/// `new_vertices` are vertices appearing in the stream for the first time;
/// they are reset to the program's initial value (lines 2–4).
pub fn incremental_compute<P: VertexProgram>(
    program: &P,
    graph: &dyn GraphTopology,
    values: &P::Store,
    affected: &[Node],
    new_vertices: &[Node],
    pool: &ThreadPool,
) -> IncOutcome {
    let n = graph.capacity();
    // Lines 2–4: initialize vertices entering the graph this batch.
    pool.parallel_for(0..new_vertices.len(), Schedule::Static, |i| {
        let v = new_vertices[i];
        values.store(v as usize, program.initial(v, n));
    });

    let mut visited = AtomicBitVec::new(n);
    let mut next = FlatFrontier::new(n);
    let recomputed = AtomicUsize::new(0);
    let triggered = AtomicUsize::new(0);

    let process = |frontier: &[Node], visited: &AtomicBitVec, next: &FlatFrontier| {
        let grain = saga_utils::parallel::adaptive_grain(frontier.len(), pool.threads());
        pool.parallel_for(0..frontier.len(), Schedule::Dynamic(grain), |i| {
            if let Some(&ahead) = frontier.get(i + PREFETCH_DISTANCE) {
                values.prefetch_hint(ahead as usize);
            }
            let v = frontier[i];
            recomputed.fetch_add(1, Ordering::Relaxed);
            // Lines 9–10: re-calculate the vertex function.
            let old = values.load(v as usize);
            let pulled = program.pull(graph, v, values);
            let new = program.combine(old, pulled);
            if new != old {
                values.store(v as usize, new);
            }
            // Lines 11–15: trigger out-neighbors on significant change.
            if program.significant_change(old, new) {
                triggered.fetch_add(1, Ordering::Relaxed);
                let push = |nb: Node| {
                    if visited.try_set(nb as usize) {
                        next.push(nb);
                    }
                };
                graph.for_each_out_neighbor(v, &mut |nb, _| push(nb));
                if program.scope() == EdgeScope::Symmetric && graph.is_directed() {
                    graph.for_each_in_neighbor(v, &mut |nb, _| push(nb));
                }
            }
        });
    };

    // Lines 6–15: the affected pass. The affected list can repeat a
    // vertex (it is stitched from per-worker buffers keyed by batch edge,
    // and several edges can share an endpoint), so dedupe through the
    // visited marks first — recomputing a vertex twice in the same round
    // is wasted work and inflates `recomputed`. The marks are cleared
    // again before processing: a seed must stay eligible for round-2
    // re-triggering by its neighbors.
    let seeds: Vec<Node> = {
        let mut seeds = Vec::with_capacity(affected.len());
        for &v in affected {
            if visited.try_set(v as usize) {
                seeds.push(v);
            }
        }
        seeds
    };
    visited.clear_all();
    let mut iterations = 1;
    process(&seeds, &visited, &next);

    // Lines 17–25: frontier propagation until quiescence.
    let mut frontier: Vec<Node> = Vec::new();
    loop {
        next.take_into(&mut frontier);
        if frontier.is_empty() {
            break;
        }
        visited.clear_all(); // line 20
        iterations += 1;
        assert!(
            iterations < 1_000_000,
            "incremental compute did not quiesce after {iterations} rounds; \
             frontier has {} vertices (e.g. {:?})",
            frontier.len(),
            &frontier[..frontier.len().min(5)]
        );
        process(&frontier, &visited, &next);
    }

    IncOutcome {
        iterations,
        recomputed: recomputed.load(Ordering::Relaxed),
        triggered: triggered.load(Ordering::Relaxed),
        repaired: 0,
    }
}

/// Computes the set of vertices whose stored property may (transitively)
/// depend on one of the `deleted` edges — the KickStarter-style tag
/// closure. Must run **after** the deletions are applied to `graph` but
/// **before** any value is modified: the closure walks surviving edges
/// but judges derivability against the pre-repair values.
///
/// Seeds are the deleted edges' destinations (and sources too, for
/// symmetric-scope programs and undirected graphs, where values flow both
/// ways). A vertex already holding its initial value cannot be stale and
/// is never tagged — this keeps cascades out of unreached regions and
/// anchors CC/MC label components at their label owner. From a tagged
/// vertex `u`, a neighbor `nb` joins the closure when
/// [`VertexProgram::derives_from`] says `nb`'s value could have come from
/// `u`'s across the connecting edge's stored weight.
///
/// Returns the tagged vertices, or `Err(tagged_so_far)` once the closure
/// exceeds `limit` — the signal that from-scratch recomputation is the
/// cheaper path. The value store is never modified here.
pub fn plan_deletion_repair<P: VertexProgram>(
    program: &P,
    graph: &dyn GraphTopology,
    values: &P::Store,
    deleted: &[Edge],
    limit: usize,
) -> Result<Vec<Node>, usize> {
    let n = graph.capacity();
    let symmetric = program.scope() == EdgeScope::Symmetric || !graph.is_directed();
    let mut tagged = vec![false; n];
    let mut queue: Vec<Node> = Vec::new();
    let mut order: Vec<Node> = Vec::new();
    let tag = |v: Node, tagged: &mut Vec<bool>, queue: &mut Vec<Node>, order: &mut Vec<Node>| {
        let i = v as usize;
        if i < n && !tagged[i] && values.load(i) != program.initial(v, n) {
            tagged[i] = true;
            queue.push(v);
            order.push(v);
        }
    };
    for e in deleted {
        // Endpoints are tagged unconditionally (beyond the initial-value
        // check): the batch edge's weight may differ from the weight that
        // was stored, so a derives_from test against it would be unsound.
        tag(e.dst, &mut tagged, &mut queue, &mut order);
        if symmetric {
            tag(e.src, &mut tagged, &mut queue, &mut order);
        }
    }
    while let Some(u) = queue.pop() {
        if order.len() > limit {
            return Err(order.len());
        }
        let u_val = values.load(u as usize);
        let mut visit = |nb: Node, w: f32| {
            let i = nb as usize;
            if !tagged[i]
                && values.load(i) != program.initial(nb, n)
                && program.derives_from(values.load(i), u_val, w)
            {
                tagged[i] = true;
                queue.push(nb);
                order.push(nb);
            }
        };
        graph.for_each_out_neighbor(u, &mut |nb, w| visit(nb, w));
        if symmetric && graph.is_directed() {
            graph.for_each_in_neighbor(u, &mut |nb, w| visit(nb, w));
        }
    }
    if order.len() > limit {
        return Err(order.len());
    }
    Ok(order)
}

/// [`incremental_compute`] for a batch that may carry deletions.
///
/// For programs where deletions cannot strand stale state
/// ([`VertexProgram::needs_deletion_repair`] is false, i.e. PageRank) or
/// when `deleted` is empty, this is exactly the plain incremental phase.
/// Otherwise the repair closure is planned first
/// ([`plan_deletion_repair`]); if it stays within `repair_limit`, the
/// tagged vertices are reset to their initial values and appended to the
/// affected set, so the normal trigger/propagate rounds reseed them from
/// surviving in-neighbors. On overflow the store is left untouched and
/// [`DeletionOutcome::CascadeOverflow`] tells the caller to fall back to
/// from-scratch recomputation.
#[allow(clippy::too_many_arguments)] // mirrors incremental_compute + deletion inputs
pub fn incremental_compute_with_deletions<P: VertexProgram>(
    program: &P,
    graph: &dyn GraphTopology,
    values: &P::Store,
    affected: &[Node],
    new_vertices: &[Node],
    deleted: &[Edge],
    repair_limit: usize,
    pool: &ThreadPool,
) -> DeletionOutcome {
    if deleted.is_empty() || !program.needs_deletion_repair() {
        return DeletionOutcome::Done(incremental_compute(
            program,
            graph,
            values,
            affected,
            new_vertices,
            pool,
        ));
    }
    let repair_span = saga_trace::span!("repair", deleted = deleted.len() as u64);
    let tagged = match plan_deletion_repair(program, graph, values, deleted, repair_limit) {
        Ok(tagged) => tagged,
        Err(count) => {
            drop(repair_span);
            saga_trace::instant!("repair-overflow", tagged = count as u64);
            return DeletionOutcome::CascadeOverflow { tagged: count };
        }
    };
    let n = graph.capacity();
    for &v in &tagged {
        values.store(v as usize, program.initial(v, n));
    }
    drop(repair_span);
    let mut seeds = Vec::with_capacity(affected.len() + tagged.len());
    seeds.extend_from_slice(affected);
    seeds.extend_from_slice(&tagged);
    let mut outcome = incremental_compute(program, graph, values, &seeds, new_vertices, pool);
    outcome.repaired = tagged.len();
    DeletionOutcome::Done(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsProgram;
    use saga_graph::{build_graph, DataStructureKind, Edge};

    #[test]
    fn empty_affected_set_is_a_noop() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::AdjacencyShared, 4, true, 1);
        let program = BfsProgram::new(0);
        let store = <BfsProgram as VertexProgram>::Store::create(4, u32::MAX);
        store.store(0, 0);
        let out = incremental_compute(&program, g.as_ref(), &store, &[], &[], &pool);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.recomputed, 0);
        assert_eq!(out.triggered, 0);
    }

    #[test]
    fn propagates_along_a_path() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::AdjacencyShared, 5, true, 1);
        g.update_batch(
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(2, 3, 1.0),
                Edge::new(3, 4, 1.0),
            ],
            &pool,
        );
        let program = BfsProgram::new(0);
        let store = <BfsProgram as VertexProgram>::Store::create(5, u32::MAX);
        store.store(0, 0);
        let affected: Vec<Node> = vec![0, 1, 2, 3, 4];
        let out = incremental_compute(&program, g.as_ref(), &store, &affected, &[], &pool);
        assert_eq!(store.load(4), 4);
        assert!(out.iterations >= 2, "chain must propagate over rounds");
        assert!(out.recomputed >= 5);
    }

    #[test]
    fn duplicate_affected_entries_are_recomputed_once() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::AdjacencyShared, 4, true, 1);
        g.update_batch(&[Edge::new(0, 1, 1.0)], &pool);
        let program = BfsProgram::new(0);
        let store = <BfsProgram as VertexProgram>::Store::create(4, u32::MAX);
        store.store(0, 0);
        store.store(1, 1);
        // Vertex 1 appears four times (e.g. four batch edges shared the
        // endpoint); it must be evaluated once, not four times.
        let out = incremental_compute(&program, g.as_ref(), &store, &[1, 1, 1, 1], &[], &pool);
        assert_eq!(out.recomputed, 1);
        assert_eq!(out.iterations, 1, "no change, so no propagation rounds");
    }

    fn path_graph(
        pool: &ThreadPool,
        n: usize,
    ) -> Box<dyn saga_graph::DeletableGraph> {
        let g = saga_graph::build_deletable_graph(
            DataStructureKind::AdjacencyShared,
            n,
            true,
            pool.threads(),
        );
        let edges: Vec<Edge> = (0..n as Node - 1).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        g.update_batch(&edges, pool);
        g
    }

    #[test]
    fn deletion_repair_resets_the_downstream_cascade() {
        let pool = ThreadPool::new(2);
        let n = 8;
        let g = path_graph(&pool, n);
        let program = BfsProgram::new(0);
        let store = <BfsProgram as VertexProgram>::Store::create(n, 0);
        for v in 0..n {
            store.store(v, v as u32); // converged depths on the path
        }
        // Cut 3 -> 4: vertices 4..8 must lose their depths.
        let cut = [Edge::new(3, 4, 1.0)];
        g.delete_batch(&cut, &pool);
        let plan =
            plan_deletion_repair(&program, g.as_ref(), &store, &cut, 1_000).unwrap();
        let mut sorted = plan.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![4, 5, 6, 7], "exactly the stranded suffix");
        let out = incremental_compute_with_deletions(
            &program,
            g.as_ref(),
            &store,
            &[3, 4],
            &[],
            &cut,
            1_000,
            &pool,
        );
        match out {
            DeletionOutcome::Done(o) => assert_eq!(o.repaired, 4),
            other => panic!("expected Done, got {other:?}"),
        }
        for v in 4..n {
            assert_eq!(store.load(v), crate::bfs::UNREACHED, "vertex {v}");
        }
        for v in 0..4 {
            assert_eq!(store.load(v), v as u32, "vertex {v} untouched");
        }
    }

    #[test]
    fn cascade_overflow_leaves_values_untouched() {
        let pool = ThreadPool::new(2);
        let n = 8;
        let g = path_graph(&pool, n);
        let program = BfsProgram::new(0);
        let store = <BfsProgram as VertexProgram>::Store::create(n, 0);
        for v in 0..n {
            store.store(v, v as u32);
        }
        let cut = [Edge::new(1, 2, 1.0)];
        g.delete_batch(&cut, &pool);
        // The stranded suffix has 6 vertices; a limit of 2 must trip.
        let out = incremental_compute_with_deletions(
            &program,
            g.as_ref(),
            &store,
            &[1, 2],
            &[],
            &cut,
            2,
            &pool,
        );
        match out {
            DeletionOutcome::CascadeOverflow { tagged } => assert!(tagged > 2),
            other => panic!("expected overflow, got {other:?}"),
        }
        for v in 0..n {
            assert_eq!(store.load(v), v as u32, "store must be unmodified");
        }
    }

    #[test]
    fn repair_skips_initial_valued_vertices() {
        let pool = ThreadPool::new(1);
        let n = 4;
        let g = path_graph(&pool, n);
        let program = BfsProgram::new(0);
        // Nothing reached yet except the root: deleting an edge inside the
        // unreached region must not cascade at all.
        let store = <BfsProgram as VertexProgram>::Store::create(n, u32::MAX);
        store.store(0, 0);
        let cut = [Edge::new(1, 2, 1.0)];
        g.delete_batch(&cut, &pool);
        let plan =
            plan_deletion_repair(&program, g.as_ref(), &store, &cut, 1_000).unwrap();
        assert!(plan.is_empty(), "unreached vertices are never stale");
    }
}
