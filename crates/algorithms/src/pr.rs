//! PageRank.
//!
//! Table I: `v.rank ← 0.15/|V| + 0.85 · Σ_{e ∈ InEdges(v)} e.source.rank /
//! e.source.out_degree`.
//!
//! PR is the one non-monotone algorithm in the suite: the incremental
//! model's triggering condition is the magnitude test
//! `|old − new| > ε` with `ε = 1e-7` (Algorithm 1, line 11 and its
//! initialization), and INC results are approximate by design.
//!
//! The FS kernel is the conventional iterate-until-tolerance PageRank of
//! GAP (L1-norm stop).
//!
//! Note that on a degree-aware hashing graph every `out_degree` call in the
//! pull is a degree-query meta-operation — the reason the paper finds DAH
//! "performs particularly poorly in PR" (§V-B).

use crate::program::{ValueStore, VertexProgram};
use saga_graph::properties::AtomicF64Array;
use saga_graph::{GraphTopology, Node};
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::sync::atomic::{AtomicU64, Ordering};

/// Default damping factor (the paper's 0.85).
pub const DAMPING: f64 = 0.85;
/// Default incremental triggering threshold (the paper's `ε = 1e-7`).
pub const DEFAULT_EPSILON: f64 = 1e-7;
/// Default FS stopping tolerance on the L1 rank change (GAP's default).
pub const DEFAULT_FS_TOLERANCE: f64 = 1e-4;
/// Default FS iteration cap.
pub const DEFAULT_MAX_ITERS: usize = 100;

/// PageRank as a vertex program.
///
/// # Examples
///
/// ```
/// use saga_algorithms::pr::PrProgram;
/// use saga_algorithms::program::VertexProgram;
///
/// let p = PrProgram::new(100);
/// assert_eq!(p.initial(0, 100), (1.0 - 0.85) / 100.0); // the no-in-edge fixpoint
/// assert!(p.affects_source_neighborhood());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PrProgram {
    num_nodes: usize,
    damping: f64,
    epsilon: f64,
    fs_tolerance: f64,
    max_iters: usize,
}

impl PrProgram {
    /// PageRank over a fixed universe of `num_nodes` vertices with default
    /// parameters.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            damping: DAMPING,
            epsilon: DEFAULT_EPSILON,
            fs_tolerance: DEFAULT_FS_TOLERANCE,
            max_iters: DEFAULT_MAX_ITERS,
        }
    }

    /// Overrides the incremental triggering threshold ε (used by the
    /// ablation bench).
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides the FS stopping tolerance.
    #[must_use]
    pub fn with_fs_tolerance(mut self, tolerance: f64) -> Self {
        self.fs_tolerance = tolerance;
        self
    }

    /// The triggering threshold ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The FS stopping tolerance on the L1 rank change.
    pub fn fs_tolerance(&self) -> f64 {
        self.fs_tolerance
    }

    /// The FS iteration cap.
    pub fn max_iters(&self) -> usize {
        self.max_iters
    }

    /// The damping factor.
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// The fixed vertex-universe size this instance ranks over.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

impl VertexProgram for PrProgram {
    type Value = f64;
    type Store = AtomicF64Array;

    fn name(&self) -> &'static str {
        "PR"
    }

    fn initial(&self, _v: Node, num_nodes: usize) -> f64 {
        // Algorithm 1 line 4 initializes new vertices to 1/|V|, but any
        // vertex that ever appears is recomputed in the same phase, so the
        // only lasting effect of the initial value is on vertices that
        // never appear in the stream. Those have no in-edges and their
        // exact PageRank is the base term — using it keeps the incremental
        // model consistent with from-scratch recomputation over the whole
        // vertex universe.
        (1.0 - self.damping) / num_nodes as f64
    }

    fn pull(&self, graph: &dyn GraphTopology, v: Node, values: &Self::Store) -> f64 {
        let base = (1.0 - self.damping) / self.num_nodes as f64;
        // Two-phase: collect the in-neighbors first, then query degrees.
        // `for_each_in_neighbor` may hold an internal lock while invoking
        // the callback, and `out_degree(src)` can need that same lock when
        // `src` shares it with `v` (a self-loop on AS, a shared chunk on
        // AC/DAH) — see the reentrancy note on `GraphTopology`.
        let mut in_neighbors: Vec<Node> = Vec::with_capacity(graph.in_degree(v));
        graph.for_each_in_neighbor(v, &mut |src, _| in_neighbors.push(src));
        let mut sum = 0.0;
        for src in in_neighbors {
            // The out-degree query is a second DAH meta-operation per
            // incoming neighbor (§V-B).
            let deg = graph.out_degree(src);
            debug_assert!(deg > 0, "in-neighbor must have an out-edge");
            sum += values.load(src as usize) / deg as f64;
        }
        base + self.damping * sum
    }

    fn combine(&self, _old: f64, pulled: f64) -> f64 {
        pulled
    }

    fn significant_change(&self, old: f64, new: f64) -> bool {
        (old - new).abs() > self.epsilon
    }

    fn affects_source_neighborhood(&self) -> bool {
        true
    }

    fn derives_from(&self, _value: f64, _src_value: f64, _weight: f32) -> bool {
        // Never used: `needs_deletion_repair` is false (see below).
        false
    }

    fn needs_deletion_repair(&self) -> bool {
        // `combine` replaces the old rank with the freshly pulled one, so
        // re-pulling the affected vertices after a deletion already yields
        // the correct values — no stale-dependency cascade exists.
        false
    }
}

/// Conventional PageRank from scratch: Jacobi-style in-place iteration
/// until the L1 rank change drops below the tolerance (or the iteration
/// cap). `values` must already be reset. Returns iterations executed.
pub fn pagerank_from_scratch(
    program: &PrProgram,
    graph: &dyn GraphTopology,
    values: &AtomicF64Array,
    pool: &ThreadPool,
) -> usize {
    let n = graph.capacity();
    for iter in 1..=program.max_iters {
        // Accumulate the L1 delta in fixed-point nanounits to stay atomic.
        let delta_bits = AtomicU64::new(0);
        let grain = saga_utils::parallel::adaptive_grain(n, pool.threads()).max(16);
        pool.parallel_for(0..n, Schedule::Dynamic(grain), |v| {
            let old = values.load(v);
            let new = program.pull(graph, v as Node, values);
            if new != old {
                values.set(v, new);
                let scaled = ((new - old).abs() * 1e12) as u64;
                delta_bits.fetch_add(scaled, Ordering::Relaxed);
            }
        });
        let delta = delta_bits.load(Ordering::Relaxed) as f64 / 1e12;
        if delta < program.fs_tolerance {
            return iter;
        }
    }
    program.max_iters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::reset_values;
    use saga_graph::{build_graph, DataStructureKind, Edge};

    #[test]
    fn ranks_sum_to_about_one_on_a_cycle() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::AdjacencyShared, 4, true, 1);
        g.update_batch(
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(2, 3, 1.0),
                Edge::new(3, 0, 1.0),
            ],
            &pool,
        );
        let program = PrProgram::new(4).with_fs_tolerance(1e-12);
        let values = AtomicF64Array::filled(4, 0.0);
        reset_values(&program, &values, 4, &pool);
        pagerank_from_scratch(&program, g.as_ref(), &values, &pool);
        let ranks = values.to_vec();
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        // Perfect symmetry: every vertex has the same rank.
        for r in &ranks {
            assert!((r - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn self_loops_do_not_deadlock_shared_locks() {
        // Regression: PR's pull queries out_degree(src) for every incoming
        // neighbor. With a self-loop on an undirected AS graph (or a
        // same-chunk neighbor on AC/DAH), a query issued from inside the
        // traversal callback would re-lock the lock the traversal holds.
        use saga_graph::{build_graph, DataStructureKind};
        for ds in DataStructureKind::ALL {
            for directed in [true, false] {
                let pool = ThreadPool::new(2);
                let g = build_graph(ds, 4, directed, pool.threads());
                g.update_batch(
                    &[Edge::new(2, 2, 1.0), Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)],
                    &pool,
                );
                let program = PrProgram::new(4);
                let values = AtomicF64Array::filled(4, 0.0);
                reset_values(&program, &values, 4, &pool);
                let iters = pagerank_from_scratch(&program, g.as_ref(), &values, &pool);
                assert!(iters > 0, "{ds:?} directed={directed}");
                assert!(values.to_vec().iter().all(|r| r.is_finite()));
            }
        }
    }

    #[test]
    fn hub_receives_more_rank() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::Dah, 5, true, 2);
        // Everyone points at 4; 4 points at 0.
        g.update_batch(
            &[
                Edge::new(0, 4, 1.0),
                Edge::new(1, 4, 1.0),
                Edge::new(2, 4, 1.0),
                Edge::new(3, 4, 1.0),
                Edge::new(4, 0, 1.0),
            ],
            &pool,
        );
        let program = PrProgram::new(5);
        let values = AtomicF64Array::filled(5, 0.0);
        reset_values(&program, &values, 5, &pool);
        pagerank_from_scratch(&program, g.as_ref(), &values, &pool);
        let ranks = values.to_vec();
        assert!(ranks[4] > ranks[0]);
        assert!(ranks[0] > ranks[1]);
        assert!((ranks[1] - ranks[3]).abs() < 1e-9);
    }
}
