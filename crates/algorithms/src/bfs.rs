//! Breadth-First Search.
//!
//! Table I: `v.depth ← min_{e ∈ InEdges(v)} (e.source.depth + 1)`.
//!
//! The FS kernel is the conventional frontier-based parallel BFS of the GAP
//! benchmark suite (push direction, CAS-guarded depth relaxation).

use crate::program::{ValueStore, VertexProgram};
use crossbeam::queue::SegQueue;
use saga_graph::properties::AtomicU32Array;
use saga_graph::{GraphTopology, Node};
use saga_utils::bitvec::AtomicBitVec;
use saga_utils::parallel::{Schedule, ThreadPool};

/// Depth of a vertex not (yet) reachable from the root.
pub const UNREACHED: u32 = u32::MAX;

/// BFS as a vertex program.
///
/// # Examples
///
/// ```
/// use saga_algorithms::bfs::{BfsProgram, UNREACHED};
/// use saga_algorithms::program::VertexProgram;
///
/// let p = BfsProgram::new(3);
/// assert_eq!(p.initial(3, 10), 0);
/// assert_eq!(p.initial(4, 10), UNREACHED);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BfsProgram {
    root: Node,
}

impl BfsProgram {
    /// BFS from `root`.
    pub fn new(root: Node) -> Self {
        Self { root }
    }

    /// The search root.
    pub fn root(&self) -> Node {
        self.root
    }
}

impl VertexProgram for BfsProgram {
    type Value = u32;
    type Store = AtomicU32Array;

    fn name(&self) -> &'static str {
        "BFS"
    }

    fn initial(&self, v: Node, _num_nodes: usize) -> u32 {
        if v == self.root {
            0
        } else {
            UNREACHED
        }
    }

    fn pull(&self, graph: &dyn GraphTopology, v: Node, values: &Self::Store) -> u32 {
        let mut best = UNREACHED;
        graph.for_each_in_neighbor(v, &mut |src, _| {
            let d = values.load(src as usize).saturating_add(1);
            best = best.min(d);
        });
        best
    }

    fn combine(&self, old: u32, pulled: u32) -> u32 {
        old.min(pulled)
    }

    fn significant_change(&self, old: u32, new: u32) -> bool {
        new < old
    }

    fn derives_from(&self, value: u32, src_value: u32, _weight: f32) -> bool {
        value == src_value.saturating_add(1)
    }
}

/// Conventional frontier BFS from scratch. `values` must already be reset.
/// Returns the number of levels expanded.
pub fn bfs_from_scratch(
    program: &BfsProgram,
    graph: &dyn GraphTopology,
    values: &AtomicU32Array,
    pool: &ThreadPool,
) -> usize {
    let n = graph.capacity();
    let mut visited = AtomicBitVec::new(n);
    let next: SegQueue<Node> = SegQueue::new();
    let mut frontier = vec![program.root];
    let mut levels = 0;
    while !frontier.is_empty() {
        levels += 1;
        let grain = saga_utils::parallel::adaptive_grain(frontier.len(), pool.threads());
        pool.parallel_for(0..frontier.len(), Schedule::Dynamic(grain), |i| {
            let v = frontier[i];
            let depth = values.load(v as usize);
            graph.for_each_out_neighbor(v, &mut |nb, _| {
                if values.fetch_min(nb as usize, depth + 1) && visited.try_set(nb as usize) {
                    next.push(nb);
                }
            });
        });
        frontier.clear();
        while let Some(v) = next.pop() {
            frontier.push(v);
        }
        visited.clear_all();
    }
    levels
}

/// Direction-optimizing BFS from scratch (Beamer et al.; the kernel GAP
/// actually ships). Runs top-down (push) while the frontier is small and
/// switches to bottom-up (every unvisited vertex pulls from its
/// in-neighbors) once the frontier exceeds 1/20 of the vertices, where
/// scanning the unvisited side is cheaper than pushing a huge frontier's
/// edges.
///
/// Produces exactly the same depths as [`bfs_from_scratch`]; exposed
/// separately so the classic and direction-optimizing kernels can be
/// compared (see the `extensions` bench). Returns levels expanded.
pub fn bfs_direction_optimizing(
    program: &BfsProgram,
    graph: &dyn GraphTopology,
    values: &AtomicU32Array,
    pool: &ThreadPool,
) -> usize {
    /// Switch to bottom-up when the frontier exceeds n / this.
    const DIRECTION_SWITCH_FRACTION: usize = 20;

    let n = graph.capacity();
    let switch_at = (n / DIRECTION_SWITCH_FRACTION).max(1);
    let mut visited = AtomicBitVec::new(n);
    let next: SegQueue<Node> = SegQueue::new();
    let mut frontier = vec![program.root];
    let mut depth = 0u32;
    let mut levels = 0;
    while !frontier.is_empty() {
        levels += 1;
        if frontier.len() < switch_at {
            // Top-down step: push from the frontier.
            let grain = saga_utils::parallel::adaptive_grain(frontier.len(), pool.threads());
            pool.parallel_for(0..frontier.len(), Schedule::Dynamic(grain), |i| {
                let v = frontier[i];
                let d = values.load(v as usize);
                graph.for_each_out_neighbor(v, &mut |nb, _| {
                    if values.fetch_min(nb as usize, d + 1) && visited.try_set(nb as usize) {
                        next.push(nb);
                    }
                });
            });
        } else {
            // Bottom-up step: every unvisited vertex scans its in-neighbors
            // for a frontier member; no CAS contention on the frontier side.
            let grain = saga_utils::parallel::adaptive_grain(n, pool.threads()).max(16);
            pool.parallel_for(0..n, Schedule::Dynamic(grain), |v| {
                if values.load(v) != UNREACHED {
                    return;
                }
                let mut found = false;
                graph.for_each_in_neighbor(v as Node, &mut |src, _| {
                    if !found && values.load(src as usize) == depth {
                        found = true;
                    }
                });
                if found {
                    values.store(v, depth + 1);
                    next.push(v as Node);
                }
            });
        }
        frontier.clear();
        while let Some(v) = next.pop() {
            frontier.push(v);
        }
        visited.clear_all();
        depth += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::reset_values;
    use saga_graph::{build_graph, DataStructureKind, Edge};

    #[test]
    fn fs_bfs_computes_exact_depths() {
        let pool = ThreadPool::new(3);
        let g = build_graph(DataStructureKind::AdjacencyChunked, 7, true, 3);
        g.update_batch(
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 1.0),
                Edge::new(1, 3, 1.0),
                Edge::new(2, 3, 1.0),
                Edge::new(3, 4, 1.0),
                Edge::new(5, 4, 1.0), // 5 unreachable from 0
            ],
            &pool,
        );
        let program = BfsProgram::new(0);
        let values = AtomicU32Array::filled(7, 0);
        reset_values(&program, &values, 7, &pool);
        bfs_from_scratch(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.to_vec(), vec![0, 1, 1, 2, 3, UNREACHED, UNREACHED]);
    }

    #[test]
    fn pull_takes_the_best_in_neighbor() {
        let pool = ThreadPool::new(1);
        let g = build_graph(DataStructureKind::AdjacencyShared, 4, true, 1);
        g.update_batch(&[Edge::new(0, 2, 1.0), Edge::new(1, 2, 1.0)], &pool);
        let program = BfsProgram::new(0);
        let values = AtomicU32Array::filled(4, UNREACHED);
        values.set(0, 0);
        values.set(1, 5);
        assert_eq!(program.pull(g.as_ref(), 2, &values), 1);
        // Vertex with no in-edges pulls UNREACHED.
        assert_eq!(program.pull(g.as_ref(), 3, &values), UNREACHED);
    }

    #[test]
    fn direction_optimizing_matches_classic_bfs() {
        // Deterministic pseudo-random graph large enough to trigger the
        // bottom-up switch.
        let pool = ThreadPool::new(4);
        let n = 600usize;
        let g = build_graph(DataStructureKind::AdjacencyShared, n, true, pool.threads());
        let edges: Vec<Edge> = (0..6_000u64)
            .map(|i| {
                let r = saga_utils::hash::mix64(i);
                Edge::new(
                    ((r >> 8) % n as u64) as Node,
                    ((r >> 32) % n as u64) as Node,
                    1.0,
                )
            })
            .collect();
        g.update_batch(&edges, &pool);
        let program = BfsProgram::new(edges[0].src);
        let classic = AtomicU32Array::filled(n, 0);
        reset_values(&program, &classic, n, &pool);
        bfs_from_scratch(&program, g.as_ref(), &classic, &pool);
        let dirop = AtomicU32Array::filled(n, 0);
        reset_values(&program, &dirop, n, &pool);
        bfs_direction_optimizing(&program, g.as_ref(), &dirop, &pool);
        assert_eq!(classic.to_vec(), dirop.to_vec());
    }

    #[test]
    fn direction_optimizing_on_a_path_stays_top_down() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::Stinger, 30, true, pool.threads());
        let edges: Vec<Edge> = (0..29).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        g.update_batch(&edges, &pool);
        let program = BfsProgram::new(0);
        let values = AtomicU32Array::filled(30, 0);
        reset_values(&program, &values, 30, &pool);
        let levels = bfs_direction_optimizing(&program, g.as_ref(), &values, &pool);
        // 29 productive rounds plus the final empty-frontier check round.
        assert_eq!(levels, 30);
        assert_eq!(values.get(29), 29);
    }

}
