//! Breadth-First Search.
//!
//! Table I: `v.depth ← min_{e ∈ InEdges(v)} (e.source.depth + 1)`.
//!
//! The FS kernel the engine runs is [`bfs_direction_optimizing`] — the
//! Beamer-style sparse/dense kernel GAP ships, with the alpha/beta
//! scout-count switch. The conventional push-only frontier BFS
//! ([`bfs_from_scratch`]) stays exported as the comparison baseline.

use crate::program::{ValueStore, VertexProgram};
use saga_graph::properties::AtomicU32Array;
use saga_graph::{GraphTopology, Node};
use saga_utils::bitvec::AtomicBitVec;
use saga_utils::frontier::FlatFrontier;
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::prefetch::PREFETCH_DISTANCE;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};

/// Depth of a vertex not (yet) reachable from the root.
pub const UNREACHED: u32 = u32::MAX;

/// BFS as a vertex program.
///
/// # Examples
///
/// ```
/// use saga_algorithms::bfs::{BfsProgram, UNREACHED};
/// use saga_algorithms::program::VertexProgram;
///
/// let p = BfsProgram::new(3);
/// assert_eq!(p.initial(3, 10), 0);
/// assert_eq!(p.initial(4, 10), UNREACHED);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BfsProgram {
    root: Node,
}

impl BfsProgram {
    /// BFS from `root`.
    pub fn new(root: Node) -> Self {
        Self { root }
    }

    /// The search root.
    pub fn root(&self) -> Node {
        self.root
    }
}

impl VertexProgram for BfsProgram {
    type Value = u32;
    type Store = AtomicU32Array;

    fn name(&self) -> &'static str {
        "BFS"
    }

    fn initial(&self, v: Node, _num_nodes: usize) -> u32 {
        if v == self.root {
            0
        } else {
            UNREACHED
        }
    }

    fn pull(&self, graph: &dyn GraphTopology, v: Node, values: &Self::Store) -> u32 {
        let mut best = UNREACHED;
        graph.for_each_in_neighbor(v, &mut |src, _| {
            let d = values.load(src as usize).saturating_add(1);
            best = best.min(d);
        });
        best
    }

    fn combine(&self, old: u32, pulled: u32) -> u32 {
        old.min(pulled)
    }

    fn significant_change(&self, old: u32, new: u32) -> bool {
        new < old
    }

    fn derives_from(&self, value: u32, src_value: u32, _weight: f32) -> bool {
        value == src_value.saturating_add(1)
    }
}

/// Conventional frontier BFS from scratch. `values` must already be reset.
/// Returns the number of levels expanded.
pub fn bfs_from_scratch(
    program: &BfsProgram,
    graph: &dyn GraphTopology,
    values: &AtomicU32Array,
    pool: &ThreadPool,
) -> usize {
    let n = graph.capacity();
    let mut visited = AtomicBitVec::new(n);
    let mut next = FlatFrontier::new(n);
    let mut frontier = vec![program.root];
    let mut levels = 0;
    while !frontier.is_empty() {
        levels += 1;
        let grain = saga_utils::parallel::adaptive_grain(frontier.len(), pool.threads());
        pool.parallel_for(0..frontier.len(), Schedule::Dynamic(grain), |i| {
            // Hide the random property read of the vertex a few slots
            // behind the cursor while this one's neighbors are scanned.
            if let Some(&ahead) = frontier.get(i + PREFETCH_DISTANCE) {
                values.prefetch(ahead as usize);
            }
            let v = frontier[i];
            let depth = values.load(v as usize);
            graph.for_each_out_neighbor(v, &mut |nb, _| {
                if values.fetch_min(nb as usize, depth + 1) && visited.try_set(nb as usize) {
                    next.push(nb);
                }
            });
        });
        next.take_into(&mut frontier);
        visited.clear_all();
    }
    levels
}

/// What the direction-optimizing kernel did, level by level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirOptStats {
    /// Levels expanded (same meaning as the [`bfs_from_scratch`] return).
    pub levels: usize,
    /// How many of those levels ran in the dense bottom-up direction.
    pub bottom_up_levels: usize,
}

/// Switch top-down → bottom-up when the frontier's scouted out-edges
/// exceed `1/ALPHA` of the unexplored edges (Beamer's `alpha`; GAP's
/// default value).
const ALPHA: u64 = 15;
/// Switch bottom-up → top-down when the frontier shrinks below `n / BETA`
/// vertices (Beamer's `beta`; GAP's default value).
const BETA: usize = 18;

/// Direction-optimizing BFS from scratch (Beamer et al.; the kernel GAP
/// actually ships). Runs top-down (push) while the frontier is small and
/// switches to bottom-up (every unvisited vertex pulls from its
/// in-neighbors) while the frontier is dense, where scanning the unvisited
/// side is cheaper than pushing a huge frontier's edges.
///
/// The switch uses the scout-count heuristics of the original paper: the
/// out-degrees of newly discovered vertices are accumulated *at push time*
/// (so the decision costs nothing extra), the kernel goes dense when that
/// scout count exceeds `1/ALPHA` of the still-unexplored edges, and
/// returns to sparse when the frontier drops under `n / BETA` vertices.
///
/// Produces exactly the same depths as [`bfs_from_scratch`]; exposed
/// separately so the classic and direction-optimizing kernels can be
/// compared (see the `extensions` bench). Returns levels expanded.
pub fn bfs_direction_optimizing(
    program: &BfsProgram,
    graph: &dyn GraphTopology,
    values: &AtomicU32Array,
    pool: &ThreadPool,
) -> usize {
    bfs_direction_optimizing_stats(program, graph, values, pool).levels
}

/// [`bfs_direction_optimizing`], returning the per-direction level counts
/// (used by the heuristic shape tests and the compute benchmarks).
pub fn bfs_direction_optimizing_stats(
    program: &BfsProgram,
    graph: &dyn GraphTopology,
    values: &AtomicU32Array,
    pool: &ThreadPool,
) -> DirOptStats {
    let n = graph.capacity();
    let mut visited = AtomicBitVec::new(n);
    let mut next = FlatFrontier::new(n);
    // Out-degrees of the vertices discovered this level, summed as they
    // are pushed: the scout count of the *next* level's frontier.
    let next_scout = AtomicUsize::new(0);
    let mut frontier = vec![program.root];
    let mut scout_count = graph.out_degree(program.root) as u64;
    let mut edges_to_check = graph.num_edges() as u64;
    let mut depth = 0u32;
    let mut bottom_up = false;
    let mut stats = DirOptStats::default();
    while !frontier.is_empty() {
        stats.levels += 1;
        if bottom_up {
            // Stay dense until the frontier thins out.
            bottom_up = frontier.len() >= (n / BETA).max(1);
        } else {
            bottom_up = scout_count > edges_to_check / ALPHA;
        }
        if bottom_up {
            stats.bottom_up_levels += 1;
            // Bottom-up step: every unvisited vertex scans its in-neighbors
            // for a frontier member; no CAS contention on the frontier side.
            let grain = saga_utils::parallel::adaptive_grain(n, pool.threads()).max(16);
            pool.parallel_for(0..n, Schedule::Dynamic(grain), |v| {
                if values.load(v) != UNREACHED {
                    return;
                }
                let mut found = false;
                graph.for_each_in_neighbor(v as Node, &mut |src, _| {
                    if !found && values.load(src as usize) == depth {
                        found = true;
                    }
                });
                if found {
                    values.store(v, depth + 1);
                    next_scout.fetch_add(graph.out_degree(v as Node), Ordering::Relaxed);
                    next.push(v as Node);
                }
            });
        } else {
            // Top-down step: push from the frontier.
            let grain = saga_utils::parallel::adaptive_grain(frontier.len(), pool.threads());
            pool.parallel_for(0..frontier.len(), Schedule::Dynamic(grain), |i| {
                if let Some(&ahead) = frontier.get(i + PREFETCH_DISTANCE) {
                    values.prefetch(ahead as usize);
                }
                let v = frontier[i];
                let d = values.load(v as usize);
                let mut discovered: Vec<Node> = Vec::new();
                graph.for_each_out_neighbor(v, &mut |nb, _| {
                    if values.fetch_min(nb as usize, d + 1) && visited.try_set(nb as usize) {
                        next.push(nb);
                        discovered.push(nb);
                    }
                });
                // Scout degrees are summed after the neighbor scan returns:
                // chunk-locked structures (AC) hold their lock across
                // `for_each`, so re-entering the topology from inside the
                // callback can self-deadlock on a same-chunk neighbor.
                let scouted: usize = discovered.iter().map(|&nb| graph.out_degree(nb)).sum();
                if scouted != 0 {
                    next_scout.fetch_add(scouted, Ordering::Relaxed);
                }
            });
        }
        edges_to_check = edges_to_check.saturating_sub(scout_count);
        scout_count = next_scout.swap(0, Ordering::Relaxed) as u64;
        next.take_into(&mut frontier);
        visited.clear_all();
        depth += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::reset_values;
    use saga_graph::{build_graph, DataStructureKind, Edge};

    #[test]
    fn fs_bfs_computes_exact_depths() {
        let pool = ThreadPool::new(3);
        let g = build_graph(DataStructureKind::AdjacencyChunked, 7, true, 3);
        g.update_batch(
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 1.0),
                Edge::new(1, 3, 1.0),
                Edge::new(2, 3, 1.0),
                Edge::new(3, 4, 1.0),
                Edge::new(5, 4, 1.0), // 5 unreachable from 0
            ],
            &pool,
        );
        let program = BfsProgram::new(0);
        let values = AtomicU32Array::filled(7, 0);
        reset_values(&program, &values, 7, &pool);
        bfs_from_scratch(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.to_vec(), vec![0, 1, 1, 2, 3, UNREACHED, UNREACHED]);
    }

    #[test]
    fn pull_takes_the_best_in_neighbor() {
        let pool = ThreadPool::new(1);
        let g = build_graph(DataStructureKind::AdjacencyShared, 4, true, 1);
        g.update_batch(&[Edge::new(0, 2, 1.0), Edge::new(1, 2, 1.0)], &pool);
        let program = BfsProgram::new(0);
        let values = AtomicU32Array::filled(4, UNREACHED);
        values.set(0, 0);
        values.set(1, 5);
        assert_eq!(program.pull(g.as_ref(), 2, &values), 1);
        // Vertex with no in-edges pulls UNREACHED.
        assert_eq!(program.pull(g.as_ref(), 3, &values), UNREACHED);
    }

    #[test]
    fn direction_optimizing_matches_classic_bfs() {
        // Deterministic pseudo-random graph large enough to trigger the
        // bottom-up switch.
        let pool = ThreadPool::new(4);
        let n = 600usize;
        let g = build_graph(DataStructureKind::AdjacencyShared, n, true, pool.threads());
        let edges: Vec<Edge> = (0..6_000u64)
            .map(|i| {
                let r = saga_utils::hash::mix64(i);
                Edge::new(
                    ((r >> 8) % n as u64) as Node,
                    ((r >> 32) % n as u64) as Node,
                    1.0,
                )
            })
            .collect();
        g.update_batch(&edges, &pool);
        let program = BfsProgram::new(edges[0].src);
        let classic = AtomicU32Array::filled(n, 0);
        reset_values(&program, &classic, n, &pool);
        bfs_from_scratch(&program, g.as_ref(), &classic, &pool);
        let dirop = AtomicU32Array::filled(n, 0);
        reset_values(&program, &dirop, n, &pool);
        bfs_direction_optimizing(&program, g.as_ref(), &dirop, &pool);
        assert_eq!(classic.to_vec(), dirop.to_vec());
    }

    #[test]
    fn direction_optimizing_on_a_path_starts_top_down() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::Stinger, 30, true, pool.threads());
        let edges: Vec<Edge> = (0..29).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        g.update_batch(&edges, &pool);
        let program = BfsProgram::new(0);
        let values = AtomicU32Array::filled(30, 0);
        reset_values(&program, &values, 30, &pool);
        let stats = bfs_direction_optimizing_stats(&program, g.as_ref(), &values, &pool);
        // 29 productive rounds plus the final empty-frontier check round.
        assert_eq!(stats.levels, 30);
        assert_eq!(values.get(29), 29);
        // A unit-width frontier never trips the scout heuristic while a
        // meaningful share of the edges is unexplored.
        assert!(
            stats.levels - stats.bottom_up_levels >= 15,
            "path should run mostly sparse, got {stats:?}"
        );
    }

    #[test]
    fn dense_switch_fires_on_hub_heavy_input() {
        // A star: the root's first frontier already scouts every edge, so
        // the very next level must run bottom-up.
        let pool = ThreadPool::new(2);
        let n = 200usize;
        let g = build_graph(DataStructureKind::AdjacencyShared, n, true, pool.threads());
        let edges: Vec<Edge> = (1..n as Node).map(|i| Edge::new(0, i, 1.0)).collect();
        g.update_batch(&edges, &pool);
        let program = BfsProgram::new(0);
        let values = AtomicU32Array::filled(n, 0);
        reset_values(&program, &values, n, &pool);
        let stats = bfs_direction_optimizing_stats(&program, g.as_ref(), &values, &pool);
        assert!(
            stats.bottom_up_levels >= 1,
            "hub frontier must go dense, got {stats:?}"
        );
        for v in 1..n {
            assert_eq!(values.get(v), 1, "vertex {v}");
        }
    }
}
