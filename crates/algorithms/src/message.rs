//! Message-passing adaptation of the vertex programs for the BSP layer.
//!
//! The serial engines evaluate Table I's vertex functions by *pulling*: a
//! vertex walks its in-edges and reads each source's property directly.
//! The sharded BSP engine (`saga-bsp`) cannot read remote shards' property
//! arrays — that cross-shard traffic is exactly what it exists to batch —
//! so each program is re-expressed in *push* form: the per-edge term of
//! the pull reduction becomes an explicit [`message`](MessageProgram::message)
//! computed on the **source** shard and delivered to the destination at
//! the next superstep barrier.
//!
//! The equivalence is mechanical. Every pull in this suite has the shape
//! `reduce_{e ∈ InEdges(v)} term(src.value, e.weight)`; the message *is*
//! `term`, and the destination folds it in with the program's existing
//! [`combine`](crate::program::VertexProgram::combine)
//! ([`GatherMode::Fold`]). PageRank is the one non-fold program — its
//! reduction is a sum re-evaluated from zero each iteration — so it
//! gathers under [`GatherMode::Sum`] with an explicit zero/add/finish
//! triple, mirroring [`crate::pr::pagerank_from_scratch`]'s Jacobi sweep
//! (same damping, same L1-delta stop, same iteration cap).

use crate::bfs::{BfsProgram, UNREACHED};
use crate::cc::CcProgram;
use crate::mc::McProgram;
use crate::pr::PrProgram;
use crate::program::VertexProgram;
use crate::sssp::SsspProgram;
use crate::sswp::SswpProgram;

/// How a destination vertex absorbs the messages addressed to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherMode {
    /// Fold each message into the stored value with
    /// [`VertexProgram::combine`]; a vertex whose value passes
    /// [`VertexProgram::significant_change`] re-scatters next superstep.
    /// The monotone reductions (BFS, CC, MC, SSSP, SSWP) gather this way.
    Fold,
    /// Re-evaluate the value from an explicit zero each superstep:
    /// `new = finish(Σ messages)`, every vertex active every superstep,
    /// terminated by the L1-delta tolerance or the superstep cap.
    /// PageRank's Jacobi iteration gathers this way.
    Sum,
}

/// A [`VertexProgram`] whose vertex function is also available in push
/// (message) form — the contract the `saga-bsp` superstep engine runs.
pub trait MessageProgram: VertexProgram {
    /// How destinations absorb this program's messages.
    fn gather_mode(&self) -> GatherMode {
        GatherMode::Fold
    }

    /// The per-edge term of the vertex function, computed source-side:
    /// what a source holding `value` contributes across an out-edge of
    /// `weight`, given the source's current `out_degree`. `None` means the
    /// contribution cannot improve any destination (e.g. an unreached BFS
    /// source) and no message is sent.
    fn message(&self, value: Self::Value, weight: f32, out_degree: usize) -> Option<Self::Value>;

    /// [`GatherMode::Sum`] only: the additive identity the gather starts
    /// from.
    fn zero(&self) -> Self::Value {
        unimplemented!("zero() is only defined for GatherMode::Sum programs")
    }

    /// [`GatherMode::Sum`] only: folds one message into the accumulator.
    fn add(&self, _acc: Self::Value, _msg: Self::Value) -> Self::Value {
        unimplemented!("add() is only defined for GatherMode::Sum programs")
    }

    /// [`GatherMode::Sum`] only: maps the finished accumulator to the
    /// vertex's new value.
    fn finish(&self, _acc: Self::Value) -> Self::Value {
        unimplemented!("finish() is only defined for GatherMode::Sum programs")
    }

    /// [`GatherMode::Sum`] only: the contribution of one vertex's change
    /// to the global L1 termination delta.
    fn delta_magnitude(&self, _old: Self::Value, _new: Self::Value) -> f64 {
        0.0
    }

    /// [`GatherMode::Sum`] only: stop when the summed
    /// [`delta_magnitude`](Self::delta_magnitude) of a superstep drops
    /// below this.
    fn sum_tolerance(&self) -> f64 {
        0.0
    }

    /// Upper bound on supersteps (a safety cap for [`GatherMode::Sum`];
    /// the fold-mode programs terminate by message exhaustion).
    fn max_supersteps(&self) -> usize {
        usize::MAX
    }
}

impl MessageProgram for BfsProgram {
    fn message(&self, value: u32, _weight: f32, _out_degree: usize) -> Option<u32> {
        // Pull term: `src.depth + 1` (saturating). An unreached source
        // contributes UNREACHED to the min — i.e. nothing.
        (value != UNREACHED).then(|| value.saturating_add(1))
    }
}

impl MessageProgram for CcProgram {
    fn message(&self, value: u32, _weight: f32, _out_degree: usize) -> Option<u32> {
        // Labels travel unchanged; `combine` takes the min at the
        // destination. (Symmetric scope: the engine scatters along both
        // edge directions, matching the pull over `Edges(v)`.)
        Some(value)
    }
}

impl MessageProgram for McProgram {
    fn message(&self, value: u32, _weight: f32, _out_degree: usize) -> Option<u32> {
        Some(value)
    }
}

impl MessageProgram for SsspProgram {
    fn message(&self, value: f32, weight: f32, _out_degree: usize) -> Option<f32> {
        // Pull term: `src.path + w`. An infinite source can't shorten
        // anything.
        value.is_finite().then_some(value + weight)
    }
}

impl MessageProgram for SswpProgram {
    fn message(&self, value: f32, weight: f32, _out_degree: usize) -> Option<f32> {
        // Pull term: `min(src.path, w)` under a max reduction. A zero
        // (unreached) source's term is 0, which never beats the
        // destination's stored value (≥ 0).
        (value > 0.0).then(|| value.min(weight))
    }
}

impl MessageProgram for PrProgram {
    fn gather_mode(&self) -> GatherMode {
        GatherMode::Sum
    }

    fn message(&self, value: f64, _weight: f32, out_degree: usize) -> Option<f64> {
        debug_assert!(out_degree > 0, "a scattering source has an out-edge");
        Some(value / out_degree as f64)
    }

    fn zero(&self) -> f64 {
        0.0
    }

    fn add(&self, acc: f64, msg: f64) -> f64 {
        acc + msg
    }

    fn finish(&self, acc: f64) -> f64 {
        (1.0 - self.damping()) / self.num_nodes() as f64 + self.damping() * acc
    }

    fn delta_magnitude(&self, old: f64, new: f64) -> f64 {
        // Mirror `pagerank_from_scratch`'s fixed-point accumulation: the
        // serial kernel rounds each |Δ| down to nanounits before summing,
        // so the BSP sweep must too for bit-identical stopping decisions.
        ((new - old).abs() * 1e12) as u64 as f64 / 1e12
    }

    fn sum_tolerance(&self) -> f64 {
        self.fs_tolerance()
    }

    fn max_supersteps(&self) -> usize {
        self.max_iters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_message_is_the_pull_term() {
        let p = BfsProgram::new(0);
        assert_eq!(p.message(0, 1.0, 3), Some(1));
        assert_eq!(p.message(7, 1.0, 3), Some(8));
        assert_eq!(p.message(UNREACHED, 1.0, 3), None, "unreached sends nothing");
        assert_eq!(p.message(UNREACHED - 1, 1.0, 3), Some(UNREACHED - 1 + 1));
        assert_eq!(p.gather_mode(), GatherMode::Fold);
    }

    #[test]
    fn label_programs_forward_values_unchanged() {
        assert_eq!(CcProgram::new().message(5, 0.3, 9), Some(5));
        assert_eq!(McProgram::new().message(5, 0.3, 9), Some(5));
    }

    #[test]
    fn sssp_message_adds_the_weight_and_skips_infinity() {
        let p = SsspProgram::new(0);
        assert_eq!(p.message(2.0, 1.5, 4), Some(3.5));
        assert_eq!(p.message(f32::INFINITY, 1.5, 4), None);
    }

    #[test]
    fn sswp_message_is_the_bottleneck_and_skips_unreached() {
        let p = SswpProgram::new(0);
        assert_eq!(p.message(0.8, 0.3, 4), Some(0.3), "edge is the bottleneck");
        assert_eq!(p.message(0.2, 0.9, 4), Some(0.2), "path is the bottleneck");
        assert_eq!(p.message(f32::INFINITY, 0.9, 4), Some(0.9), "root passes the weight");
        assert_eq!(p.message(0.0, 0.9, 4), None, "unreached sends nothing");
    }

    #[test]
    fn pr_gathers_by_sum_with_the_jacobi_finish() {
        let p = PrProgram::new(10);
        assert_eq!(p.gather_mode(), GatherMode::Sum);
        assert_eq!(p.message(0.5, 1.0, 2), Some(0.25));
        let acc = p.add(p.add(p.zero(), 0.25), 0.15);
        let finished = p.finish(acc);
        assert!((finished - (0.15 / 10.0 + 0.85 * 0.4)).abs() < 1e-15);
        assert_eq!(p.max_supersteps(), crate::pr::DEFAULT_MAX_ITERS);
        assert_eq!(p.sum_tolerance(), crate::pr::DEFAULT_FS_TOLERANCE);
        // Same nanounit rounding as the serial FS kernel.
        assert_eq!(p.delta_magnitude(0.1, 0.1 + 4.4e-13), 0.0);
        assert!(p.delta_magnitude(0.1, 0.2) > 0.099);
    }

    #[test]
    fn fold_programs_report_fold_mode() {
        assert_eq!(SsspProgram::new(0).gather_mode(), GatherMode::Fold);
        assert_eq!(SswpProgram::new(0).gather_mode(), GatherMode::Fold);
        assert_eq!(CcProgram::new().gather_mode(), GatherMode::Fold);
        assert_eq!(McProgram::new().gather_mode(), GatherMode::Fold);
    }
}
