//! Max Computation.
//!
//! Table I: `v.value ← max(v.value, max_{e ∈ InEdges(v)} e.source.value)`.
//! Every vertex starts with its own id and the maximum id propagates along
//! directed edges. The paper implements MC itself because GAP does not ship
//! it (§III-B); its FS and INC formulations are nearly identical, which is
//! why MC is the one algorithm that benefits little from INC (§V-C,
//! footnote 7).
//!
//! The FS kernel is whole-graph fixpoint iteration
//! ([`fixpoint_compute`](crate::fs::fixpoint_compute)).

use crate::program::{ValueStore, VertexProgram};
use saga_graph::properties::AtomicU32Array;
use saga_graph::{GraphTopology, Node};

/// Max computation as a vertex program.
///
/// # Examples
///
/// ```
/// use saga_algorithms::mc::McProgram;
/// use saga_algorithms::program::VertexProgram;
///
/// let p = McProgram::new();
/// assert_eq!(p.combine(3, 9), 9);
/// assert!(p.significant_change(3, 9));
/// assert!(!p.significant_change(9, 9));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct McProgram;

impl McProgram {
    /// Creates the program.
    pub fn new() -> Self {
        Self
    }
}

impl VertexProgram for McProgram {
    type Value = u32;
    type Store = AtomicU32Array;

    fn name(&self) -> &'static str {
        "MC"
    }

    fn initial(&self, v: Node, _num_nodes: usize) -> u32 {
        v
    }

    fn pull(&self, graph: &dyn GraphTopology, v: Node, values: &Self::Store) -> u32 {
        let mut best = values.load(v as usize);
        graph.for_each_in_neighbor(v, &mut |src, _| {
            best = best.max(values.load(src as usize));
        });
        best
    }

    fn combine(&self, old: u32, pulled: u32) -> u32 {
        old.max(pulled)
    }

    fn significant_change(&self, old: u32, new: u32) -> bool {
        new > old
    }

    fn derives_from(&self, value: u32, src_value: u32, _weight: f32) -> bool {
        // Like CC: the max label arrives unchanged from an in-neighbor.
        value == src_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{fixpoint_compute, reset_values};
    use saga_graph::{build_graph, DataStructureKind, Edge};
    use saga_utils::parallel::ThreadPool;

    #[test]
    fn max_id_flows_downstream() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::Stinger, 5, true, 1);
        // 4 -> 2 -> 0, and 1 -> 0; 3 isolated.
        g.update_batch(
            &[Edge::new(4, 2, 1.0), Edge::new(2, 0, 1.0), Edge::new(1, 0, 1.0)],
            &pool,
        );
        let program = McProgram::new();
        let values = AtomicU32Array::filled(5, 0);
        reset_values(&program, &values, 5, &pool);
        fixpoint_compute(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.to_vec(), vec![4, 1, 4, 3, 4]);
    }

    #[test]
    fn direction_matters_for_mc() {
        let pool = ThreadPool::new(1);
        let g = build_graph(DataStructureKind::AdjacencyShared, 3, true, 1);
        // 0 -> 2: the max does NOT flow upstream to 0.
        g.update_batch(&[Edge::new(0, 2, 1.0)], &pool);
        let program = McProgram::new();
        let values = AtomicU32Array::filled(3, 0);
        reset_values(&program, &values, 3, &pool);
        fixpoint_compute(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.to_vec(), vec![0, 1, 2]);
    }
}
