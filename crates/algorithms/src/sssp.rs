//! Single-Source Shortest Paths.
//!
//! Table I: `v.path ← min_{e ∈ InEdges(v)} (e.source.path + e.weight)`.
//!
//! The FS kernel is delta-stepping (borrowed from GAP, as in the paper —
//! and, per the paper's §V-C footnote, "highly optimized", which is why FS
//! stays competitive with INC on SSSP except on the largest dataset).

use crate::program::{ValueStore, VertexProgram};
use saga_graph::properties::AtomicF32Array;
use saga_graph::{GraphTopology, Node};
use saga_utils::bitvec::AtomicBitVec;
use saga_utils::frontier::FlatFrontier;
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::prefetch::PREFETCH_DISTANCE;

/// Default delta-stepping bucket width; edge weights are in `[1, 8.875]`
/// (see `saga_stream::weight_for`), so 2.0 gives a healthy light/heavy mix.
pub const DEFAULT_DELTA: f32 = 2.0;

/// SSSP as a vertex program.
///
/// # Examples
///
/// ```
/// use saga_algorithms::sssp::SsspProgram;
/// use saga_algorithms::program::VertexProgram;
///
/// let p = SsspProgram::new(2);
/// assert_eq!(p.initial(2, 10), 0.0);
/// assert_eq!(p.initial(3, 10), f32::INFINITY);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SsspProgram {
    root: Node,
    delta: f32,
}

impl SsspProgram {
    /// Shortest paths from `root` with the default bucket width.
    pub fn new(root: Node) -> Self {
        Self {
            root,
            delta: DEFAULT_DELTA,
        }
    }

    /// Overrides the delta-stepping bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not positive.
    #[must_use]
    pub fn with_delta(mut self, delta: f32) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        self.delta = delta;
        self
    }

    /// The search root.
    pub fn root(&self) -> Node {
        self.root
    }
}

impl VertexProgram for SsspProgram {
    type Value = f32;
    type Store = AtomicF32Array;

    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn initial(&self, v: Node, _num_nodes: usize) -> f32 {
        if v == self.root {
            0.0
        } else {
            f32::INFINITY
        }
    }

    fn pull(&self, graph: &dyn GraphTopology, v: Node, values: &Self::Store) -> f32 {
        let mut best = f32::INFINITY;
        graph.for_each_in_neighbor(v, &mut |src, w| {
            best = best.min(values.load(src as usize) + w);
        });
        best
    }

    fn combine(&self, old: f32, pulled: f32) -> f32 {
        old.min(pulled)
    }

    fn significant_change(&self, old: f32, new: f32) -> bool {
        new < old
    }

    fn derives_from(&self, value: f32, src_value: f32, weight: f32) -> bool {
        value == src_value + weight
    }
}

/// Delta-stepping SSSP from scratch. `values` must already be reset.
/// Returns the number of bucket phases processed.
pub fn sssp_delta_stepping(
    program: &SsspProgram,
    graph: &dyn GraphTopology,
    values: &AtomicF32Array,
    pool: &ThreadPool,
) -> usize {
    let n = graph.capacity();
    let delta = program.delta;
    let bucket_of = |dist: f32| (dist / delta) as usize;
    let mut buckets: Vec<Vec<Node>> = vec![Vec::new()];
    buckets[0].push(program.root);
    // Relaxed vertices are collected flat and deduplicated per phase; the
    // bucket is (re)derived from the vertex's distance at drain time, which
    // is equal-or-better than the value that was current at push time, so a
    // vertex lands once in its best-known bucket instead of once per
    // successful relaxation.
    let mut relaxed_set = AtomicBitVec::new(n);
    let mut relaxed = FlatFrontier::new(n);
    let mut drained: Vec<Node> = Vec::new();
    let mut phases = 0;
    let mut current = 0usize;
    loop {
        // Advance to the next non-empty bucket.
        while current < buckets.len() && buckets[current].is_empty() {
            current += 1;
        }
        if current >= buckets.len() {
            return phases;
        }
        // Settle the bucket: light-edge relaxations may refill it.
        while !buckets[current].is_empty() {
            phases += 1;
            let frontier = std::mem::take(&mut buckets[current]);
            let grain = saga_utils::parallel::adaptive_grain(frontier.len(), pool.threads());
            pool.parallel_for(0..frontier.len(), Schedule::Dynamic(grain), |i| {
                if let Some(&ahead) = frontier.get(i + PREFETCH_DISTANCE) {
                    values.prefetch(ahead as usize);
                }
                let v = frontier[i];
                let dist = values.get(v as usize);
                // Stale entry: the vertex settled in an earlier bucket.
                if bucket_of(dist) != current {
                    return;
                }
                graph.for_each_out_neighbor(v, &mut |nb, w| {
                    let candidate = dist + w;
                    if values.fetch_min(nb as usize, candidate)
                        && relaxed_set.try_set(nb as usize)
                    {
                        relaxed.push(nb);
                    }
                });
            });
            relaxed.take_into(&mut drained);
            relaxed_set.clear_all();
            for &v in &drained {
                let b = bucket_of(values.get(v as usize));
                if b >= buckets.len() {
                    buckets.resize_with(b + 1, Vec::new);
                }
                buckets[b].push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::reset_values;
    use saga_graph::{build_graph, DataStructureKind, Edge};

    fn dist_graph(pool: &ThreadPool) -> Box<dyn GraphTopology> {
        let g = build_graph(DataStructureKind::AdjacencyShared, 6, true, 1);
        g.update_batch(
            &[
                Edge::new(0, 1, 4.0),
                Edge::new(0, 2, 1.0),
                Edge::new(2, 1, 2.0), // 0 -> 2 -> 1 = 3.0 beats direct 4.0
                Edge::new(1, 3, 1.0),
                Edge::new(2, 3, 5.0),
                Edge::new(4, 5, 1.0), // unreachable island
            ],
            pool,
        );
        g
    }

    #[test]
    fn delta_stepping_finds_shortest_paths() {
        let pool = ThreadPool::new(3);
        let g = dist_graph(&pool);
        let program = SsspProgram::new(0);
        let values = AtomicF32Array::filled(6, 0.0);
        reset_values(&program, &values, 6, &pool);
        sssp_delta_stepping(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.to_vec(), vec![0.0, 3.0, 1.0, 4.0, f32::INFINITY, f32::INFINITY]);
    }

    #[test]
    fn tiny_delta_still_correct() {
        let pool = ThreadPool::new(2);
        let g = dist_graph(&pool);
        let program = SsspProgram::new(0).with_delta(0.5);
        let values = AtomicF32Array::filled(6, 0.0);
        reset_values(&program, &values, 6, &pool);
        sssp_delta_stepping(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.get(3), 4.0);
    }

    #[test]
    fn huge_delta_degenerates_to_bellman_ford() {
        let pool = ThreadPool::new(2);
        let g = dist_graph(&pool);
        let program = SsspProgram::new(0).with_delta(1e6);
        let values = AtomicF32Array::filled(6, 0.0);
        reset_values(&program, &values, 6, &pool);
        sssp_delta_stepping(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.get(1), 3.0);
        assert_eq!(values.get(3), 4.0);
    }
}
