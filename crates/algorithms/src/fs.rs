//! The recomputation-from-scratch compute model (**FS**) — §III-B.
//!
//! Every update phase is considered to produce a brand-new graph: all
//! vertex values are reset to their initial values and a conventional
//! static-graph algorithm is run, oblivious of the previous batch's
//! computation. The specialized kernels (frontier BFS, delta-stepping SSSP,
//! tolerance-stopped PageRank) live in their algorithm modules; this module
//! provides the shared reset and the generic Jacobi fixpoint used by the
//! label-propagation algorithms (CC, MC).

use crate::program::{ValueStore, VertexProgram};
use saga_graph::GraphTopology;
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::sync::atomic::{AtomicBool, Ordering};

/// Resets every vertex to the program's initial value (the "oblivious"
/// restart of the FS model).
pub fn reset_values<P: VertexProgram>(
    program: &P,
    values: &P::Store,
    num_nodes: usize,
    pool: &ThreadPool,
) {
    pool.parallel_for(0..num_nodes, Schedule::Static, |v| {
        values.store(v, program.initial(v as u32, num_nodes));
    });
}

/// Conventional whole-graph Jacobi iteration: applies the vertex function
/// to every vertex each round until no vertex changes. Returns the number
/// of rounds.
///
/// This is the textbook static-graph formulation of label-propagation
/// algorithms (CC, MC): correct for any monotone vertex function, and
/// deliberately oblivious of which part of the graph changed.
pub fn fixpoint_compute<P: VertexProgram>(
    program: &P,
    graph: &dyn GraphTopology,
    values: &P::Store,
    pool: &ThreadPool,
) -> usize {
    let n = graph.capacity();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let changed = AtomicBool::new(false);
        let grain = saga_utils::parallel::adaptive_grain(n, pool.threads()).max(16);
        pool.parallel_for(0..n, Schedule::Dynamic(grain), |v| {
            let old = values.load(v);
            let pulled = program.pull(graph, v as u32, values);
            let new = program.combine(old, pulled);
            if new != old {
                values.store(v, new);
                changed.store(true, Ordering::Relaxed);
            }
        });
        if !changed.load(Ordering::Relaxed) {
            return rounds;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CcProgram;
    use saga_graph::{build_graph, DataStructureKind, Edge};

    #[test]
    fn reset_applies_per_vertex_initials() {
        let pool = ThreadPool::new(2);
        let program = CcProgram::new();
        let store = <CcProgram as VertexProgram>::Store::create(5, 0);
        reset_values(&program, &store, 5, &pool);
        for v in 0..5 {
            assert_eq!(store.load(v), v as u32, "CC initial label is the id");
        }
    }

    #[test]
    fn fixpoint_converges_on_components() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::Stinger, 6, true, 1);
        // Two components: {0,1,2} in a chain and {4,5}; 3 isolated.
        g.update_batch(
            &[Edge::new(2, 1, 1.0), Edge::new(1, 0, 1.0), Edge::new(4, 5, 1.0)],
            &pool,
        );
        let program = CcProgram::new();
        let store = <CcProgram as VertexProgram>::Store::create(6, 0);
        reset_values(&program, &store, 6, &pool);
        let rounds = fixpoint_compute(&program, g.as_ref(), &store, &pool);
        assert!(rounds >= 2);
        assert_eq!(store.load(0), 0);
        assert_eq!(store.load(1), 0);
        assert_eq!(store.load(2), 0);
        assert_eq!(store.load(3), 3);
        assert_eq!(store.load(4), 4);
        assert_eq!(store.load(5), 4);
    }
}
