//! The six vertex-centric algorithms of SAGA-Bench, each implemented in
//! both compute models (§III-B, §III-C of the paper).
//!
//! | Algorithm | Vertex function (Table I) | Module |
//! |-----------|---------------------------|--------|
//! | BFS  | `min_in (src.depth + 1)` | [`bfs`] |
//! | CC   | `min_edges other.value` | [`cc`] |
//! | MC   | `max_in src.value` | [`mc`] |
//! | PR   | `0.15/V + 0.85 sum_in src.rank/src.out_deg` | [`pr`] |
//! | SSSP | `min_in (src.path + w)` | [`sssp`] |
//! | SSWP | `max_in min(src.path, w)` | [`sswp`] |
//!
//! Compute models:
//!
//! - **FS** ([`fs`]): recomputation from scratch with conventional
//!   static-graph kernels (frontier BFS, delta-stepping SSSP,
//!   tolerance-stopped PR, fixpoint label propagation).
//! - **INC** ([`inc`]): the incremental model of Algorithm 1 — processing
//!   amortization plus selective triggering.
//!
//! [`AlgorithmState`] packages a program with its property array and runs
//! either model — the paper's `performAlg()` API.

#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod fs;
pub mod inc;
pub mod mc;
pub mod message;
pub mod pr;
pub mod program;
pub mod sssp;
pub mod sswp;

use inc::DeletionOutcome;
use saga_utils::sync::Mutex;
use program::{EdgeScope, ValueStore, VertexProgram};
use saga_graph::properties::{AtomicF32Array, AtomicF64Array, AtomicU32Array};
use saga_graph::{Edge, GraphTopology, Node};
use saga_utils::bitvec::{AtomicBitVec, GenerationMarks};
use saga_utils::parallel::{adaptive_grain, ThreadPool};
use saga_utils::sync::atomic::{AtomicUsize, Ordering};

/// The six algorithms (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AlgorithmKind {
    /// Breadth-First Search.
    Bfs,
    /// Connected Components.
    Cc,
    /// Max Computation.
    Mc,
    /// PageRank.
    PageRank,
    /// Single-Source Shortest Paths.
    Sssp,
    /// Single-Source Widest Paths.
    Sswp,
}

impl AlgorithmKind {
    /// All six, in the paper's order.
    pub const ALL: [AlgorithmKind; 6] = [
        AlgorithmKind::Bfs,
        AlgorithmKind::Cc,
        AlgorithmKind::Mc,
        AlgorithmKind::PageRank,
        AlgorithmKind::Sssp,
        AlgorithmKind::Sswp,
    ];

    /// The paper's abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            AlgorithmKind::Bfs => "BFS",
            AlgorithmKind::Cc => "CC",
            AlgorithmKind::Mc => "MC",
            AlgorithmKind::PageRank => "PR",
            AlgorithmKind::Sssp => "SSSP",
            AlgorithmKind::Sswp => "SSWP",
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// The two compute models (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComputeModelKind {
    /// Recomputation from scratch.
    FromScratch,
    /// Incremental computation (Algorithm 1).
    Incremental,
}

impl ComputeModelKind {
    /// Both models.
    pub const ALL: [ComputeModelKind; 2] =
        [ComputeModelKind::FromScratch, ComputeModelKind::Incremental];

    /// The paper's abbreviation (FS / INC).
    pub fn abbrev(&self) -> &'static str {
        match self {
            ComputeModelKind::FromScratch => "FS",
            ComputeModelKind::Incremental => "INC",
        }
    }
}

impl std::fmt::Display for ComputeModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Tunables shared by the algorithm constructors.
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmParams {
    /// Source vertex for BFS/SSSP/SSWP.
    pub root: Node,
    /// Incremental triggering threshold for PageRank (paper: `1e-7`).
    pub pr_epsilon: f64,
    /// FS stopping tolerance for PageRank.
    pub pr_fs_tolerance: f64,
    /// Delta-stepping bucket width for SSSP.
    pub sssp_delta: f32,
    /// Deletion-repair cascade threshold as a fraction of the vertex
    /// universe: when a deletion batch's repair closure would reset more
    /// than `capacity * repair_cascade_fraction` vertices, the incremental
    /// model falls back to from-scratch recomputation for that batch.
    pub repair_cascade_fraction: f64,
}

impl Default for AlgorithmParams {
    fn default() -> Self {
        Self {
            root: 0,
            pr_epsilon: pr::DEFAULT_EPSILON,
            pr_fs_tolerance: pr::DEFAULT_FS_TOLERANCE,
            sssp_delta: sssp::DEFAULT_DELTA,
            repair_cascade_fraction: 0.25,
        }
    }
}

/// What a compute phase did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComputeOutcome {
    /// Rounds / levels / iterations executed.
    pub iterations: usize,
    /// Vertex-function evaluations (0 for FS kernels that do not count).
    pub recomputed: usize,
    /// Vertices that triggered neighbor propagation (INC only).
    pub triggered: usize,
    /// Vertices reset and reseeded by the deletion-repair pass (INC only).
    pub repaired: usize,
    /// Whether the repair cascade overflowed its threshold and this batch
    /// was recomputed from scratch instead (INC only).
    pub fs_fallback: bool,
}

/// A snapshot of the vertex property array.
#[derive(Debug, Clone, PartialEq)]
pub enum VertexValues {
    /// Depths, labels, or max values.
    U32(Vec<u32>),
    /// Distances or widths.
    F32(Vec<f32>),
    /// PageRank scores.
    F64(Vec<f64>),
}

impl VertexValues {
    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        match self {
            VertexValues::U32(v) => v.len(),
            VertexValues::F32(v) => v.len(),
            VertexValues::F64(v) => v.len(),
        }
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The integer values, if this is a U32 snapshot.
    pub fn as_u32(&self) -> Option<&[u32]> {
        match self {
            VertexValues::U32(v) => Some(v),
            _ => None,
        }
    }

    /// The f32 values, if this is an F32 snapshot.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            VertexValues::F32(v) => Some(v),
            _ => None,
        }
    }

    /// The f64 values, if this is an F64 snapshot.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            VertexValues::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The `k` vertices with the largest values, descending (useful for
    /// "top influencers" style queries; ties broken by vertex id).
    pub fn top_k(&self, k: usize) -> Vec<(Node, f64)> {
        let mut indexed: Vec<(Node, f64)> = match self {
            VertexValues::U32(v) => v
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x != u32::MAX)
                .map(|(i, &x)| (i as Node, x as f64))
                .collect(),
            VertexValues::F32(v) => v
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x.is_finite())
                .map(|(i, &x)| (i as Node, x as f64))
                .collect(),
            VertexValues::F64(v) => v
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as Node, x))
                .collect(),
        };
        indexed.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        indexed.truncate(k);
        indexed
    }
}

enum StateInner {
    Bfs(bfs::BfsProgram, AtomicU32Array),
    Cc(cc::CcProgram, AtomicU32Array),
    Mc(mc::McProgram, AtomicU32Array),
    Pr(pr::PrProgram, AtomicF64Array),
    Sssp(sssp::SsspProgram, AtomicF32Array),
    Sswp(sswp::SswpProgram, AtomicF32Array),
}

/// An algorithm instance bound to a compute model and a property array —
/// the receiver of the paper's `performAlg()` API function.
///
/// # Examples
///
/// ```
/// use saga_algorithms::{AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind};
/// use saga_graph::{build_graph, DataStructureKind, Edge};
/// use saga_utils::parallel::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let graph = build_graph(DataStructureKind::AdjacencyShared, 4, true, 1);
/// let batch = [Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)];
/// graph.update_batch(&batch, &pool);
///
/// let mut state = AlgorithmState::new(
///     AlgorithmKind::Bfs,
///     ComputeModelKind::Incremental,
///     4,
///     AlgorithmParams::default(),
/// );
/// let affected = vec![0, 1, 2];
/// state.perform_alg(graph.as_ref(), &affected, &[], &pool);
/// match state.values() {
///     saga_algorithms::VertexValues::U32(depths) => assert_eq!(depths[2], 2),
///     _ => unreachable!(),
/// }
/// ```
pub struct AlgorithmState {
    kind: AlgorithmKind,
    model: ComputeModelKind,
    capacity: usize,
    repair_limit: usize,
    inner: StateInner,
}

impl std::fmt::Debug for AlgorithmState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmState")
            .field("kind", &self.kind)
            .field("model", &self.model)
            .field("capacity", &self.capacity)
            .finish()
    }
}

fn reset_store<P: VertexProgram>(program: &P, store: &P::Store, capacity: usize) {
    for v in 0..capacity {
        store.store(v, program.initial(v as Node, capacity));
    }
}

impl AlgorithmState {
    /// Creates an algorithm state over a fixed `capacity`-vertex universe.
    /// All property values start at the program's initial values.
    pub fn new(
        kind: AlgorithmKind,
        model: ComputeModelKind,
        capacity: usize,
        params: AlgorithmParams,
    ) -> Self {
        let inner = match kind {
            AlgorithmKind::Bfs => {
                let p = bfs::BfsProgram::new(params.root);
                let s = AtomicU32Array::filled(capacity, 0);
                reset_store(&p, &s, capacity);
                StateInner::Bfs(p, s)
            }
            AlgorithmKind::Cc => {
                let p = cc::CcProgram::new();
                let s = AtomicU32Array::filled(capacity, 0);
                reset_store(&p, &s, capacity);
                StateInner::Cc(p, s)
            }
            AlgorithmKind::Mc => {
                let p = mc::McProgram::new();
                let s = AtomicU32Array::filled(capacity, 0);
                reset_store(&p, &s, capacity);
                StateInner::Mc(p, s)
            }
            AlgorithmKind::PageRank => {
                let p = pr::PrProgram::new(capacity)
                    .with_epsilon(params.pr_epsilon)
                    .with_fs_tolerance(params.pr_fs_tolerance);
                let s = AtomicF64Array::filled(capacity, 0.0);
                reset_store(&p, &s, capacity);
                StateInner::Pr(p, s)
            }
            AlgorithmKind::Sssp => {
                let p = sssp::SsspProgram::new(params.root).with_delta(params.sssp_delta);
                let s = AtomicF32Array::filled(capacity, f32::INFINITY);
                reset_store(&p, &s, capacity);
                StateInner::Sssp(p, s)
            }
            AlgorithmKind::Sswp => {
                let p = sswp::SswpProgram::new(params.root);
                let s = AtomicF32Array::filled(capacity, 0.0);
                reset_store(&p, &s, capacity);
                StateInner::Sswp(p, s)
            }
        };
        Self {
            kind,
            model,
            capacity,
            repair_limit: ((capacity as f64 * params.repair_cascade_fraction) as usize).max(1),
            inner,
        }
    }

    /// Which algorithm this state runs.
    pub fn kind(&self) -> AlgorithmKind {
        self.kind
    }

    /// Which compute model this state uses.
    pub fn model(&self) -> ComputeModelKind {
        self.model
    }

    /// Number of vertices in the universe.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether batch sources' existing out-neighbors must be seeded as
    /// affected (PageRank's out-degree effect; see
    /// [`VertexProgram::affects_source_neighborhood`]).
    pub fn affects_source_neighborhood(&self) -> bool {
        match &self.inner {
            StateInner::Pr(p, _) => p.affects_source_neighborhood(),
            _ => false,
        }
    }

    /// Whether the program's vertex function reduces over both edge
    /// directions ([`EdgeScope::Symmetric`], i.e. CC). Deletion batches
    /// then seed both endpoints' neighborhoods as affected.
    pub fn symmetric_scope(&self) -> bool {
        match &self.inner {
            StateInner::Bfs(p, _) => p.scope() == EdgeScope::Symmetric,
            StateInner::Cc(p, _) => p.scope() == EdgeScope::Symmetric,
            StateInner::Mc(p, _) => p.scope() == EdgeScope::Symmetric,
            StateInner::Pr(p, _) => p.scope() == EdgeScope::Symmetric,
            StateInner::Sssp(p, _) => p.scope() == EdgeScope::Symmetric,
            StateInner::Sswp(p, _) => p.scope() == EdgeScope::Symmetric,
        }
    }

    /// The deletion-repair cascade threshold, in vertices (derived from
    /// [`AlgorithmParams::repair_cascade_fraction`]).
    pub fn repair_limit(&self) -> usize {
        self.repair_limit
    }

    /// Runs the compute phase — the paper's `performAlg()`.
    ///
    /// For the incremental model, `affected` is the set of vertices touched
    /// by the latest update (see [`AffectedTracker`]) and `new_vertices`
    /// those appearing for the first time. The FS model ignores both.
    pub fn perform_alg(
        &mut self,
        graph: &dyn GraphTopology,
        affected: &[Node],
        new_vertices: &[Node],
        pool: &ThreadPool,
    ) -> ComputeOutcome {
        self.perform_alg_with_deletions(graph, affected, new_vertices, &[], pool)
    }

    /// [`AlgorithmState::perform_alg`] for a batch that (also) deleted
    /// edges. `deleted` must already be applied to `graph`. The FS model
    /// ignores it (recomputation is deletion-proof by construction); the
    /// INC model runs the KickStarter-style repair pass first and falls
    /// back to from-scratch recomputation when the repair cascade exceeds
    /// [`AlgorithmState::repair_limit`] (reported via
    /// [`ComputeOutcome::fs_fallback`]).
    pub fn perform_alg_with_deletions(
        &mut self,
        graph: &dyn GraphTopology,
        affected: &[Node],
        new_vertices: &[Node],
        deleted: &[Edge],
        pool: &ThreadPool,
    ) -> ComputeOutcome {
        match self.model {
            ComputeModelKind::FromScratch => self.run_from_scratch(graph, pool),
            ComputeModelKind::Incremental => {
                self.run_incremental(graph, affected, new_vertices, deleted, pool)
            }
        }
    }

    fn run_from_scratch(&mut self, graph: &dyn GraphTopology, pool: &ThreadPool) -> ComputeOutcome {
        let n = self.capacity;
        let iterations = match &self.inner {
            StateInner::Bfs(p, s) => {
                fs::reset_values(p, s, n, pool);
                // The direction-optimizing kernel produces identical depths
                // and dominates on dense-frontier batches (see the
                // `extensions` bench); the classic push kernel stays
                // exported for comparison.
                bfs::bfs_direction_optimizing(p, graph, s, pool)
            }
            StateInner::Cc(p, s) => {
                fs::reset_values(p, s, n, pool);
                fs::fixpoint_compute(p, graph, s, pool)
            }
            StateInner::Mc(p, s) => {
                fs::reset_values(p, s, n, pool);
                fs::fixpoint_compute(p, graph, s, pool)
            }
            StateInner::Pr(p, s) => {
                fs::reset_values(p, s, n, pool);
                pr::pagerank_from_scratch(p, graph, s, pool)
            }
            StateInner::Sssp(p, s) => {
                fs::reset_values(p, s, n, pool);
                sssp::sssp_delta_stepping(p, graph, s, pool)
            }
            StateInner::Sswp(p, s) => {
                fs::reset_values(p, s, n, pool);
                sswp::sswp_from_scratch(p, graph, s, pool)
            }
        };
        ComputeOutcome {
            iterations,
            recomputed: 0,
            triggered: 0,
            repaired: 0,
            fs_fallback: false,
        }
    }

    fn run_incremental(
        &mut self,
        graph: &dyn GraphTopology,
        affected: &[Node],
        new_vertices: &[Node],
        deleted: &[Edge],
        pool: &ThreadPool,
    ) -> ComputeOutcome {
        let limit = self.repair_limit;
        let out = match &self.inner {
            StateInner::Bfs(p, s) => inc::incremental_compute_with_deletions(
                p, graph, s, affected, new_vertices, deleted, limit, pool,
            ),
            StateInner::Cc(p, s) => inc::incremental_compute_with_deletions(
                p, graph, s, affected, new_vertices, deleted, limit, pool,
            ),
            StateInner::Mc(p, s) => inc::incremental_compute_with_deletions(
                p, graph, s, affected, new_vertices, deleted, limit, pool,
            ),
            StateInner::Pr(p, s) => inc::incremental_compute_with_deletions(
                p, graph, s, affected, new_vertices, deleted, limit, pool,
            ),
            StateInner::Sssp(p, s) => inc::incremental_compute_with_deletions(
                p, graph, s, affected, new_vertices, deleted, limit, pool,
            ),
            StateInner::Sswp(p, s) => inc::incremental_compute_with_deletions(
                p, graph, s, affected, new_vertices, deleted, limit, pool,
            ),
        };
        match out {
            DeletionOutcome::Done(o) => ComputeOutcome {
                iterations: o.iterations,
                recomputed: o.recomputed,
                triggered: o.triggered,
                repaired: o.repaired,
                fs_fallback: false,
            },
            DeletionOutcome::CascadeOverflow { .. } => {
                let mut fs = self.run_from_scratch(graph, pool);
                fs.fs_fallback = true;
                fs
            }
        }
    }

    /// Snapshots the property array.
    pub fn values(&self) -> VertexValues {
        match &self.inner {
            StateInner::Bfs(_, s) | StateInner::Cc(_, s) | StateInner::Mc(_, s) => {
                VertexValues::U32(s.to_vec())
            }
            StateInner::Pr(_, s) => VertexValues::F64(s.to_vec()),
            StateInner::Sssp(_, s) | StateInner::Sswp(_, s) => VertexValues::F32(s.to_vec()),
        }
    }
}

/// The per-batch affected/new-vertex bookkeeping the update phase hands to
/// Algorithm 1 (its `affected` array and "new vertex" test).
///
/// Marking is parallel and allocation-free in steady state: `flagged` is a
/// generation-stamped mark set (`O(1)` reset per batch instead of a
/// `vec![false; V]` allocation), `seen` an atomic bitvector, and each pool
/// worker appends first-touch wins to its own reusable output buffer; the
/// buffers are stitched in worker order, so a single-threaded pool
/// reproduces the sequential first-touch order exactly.
#[derive(Debug)]
pub struct AffectedTracker {
    seen: AtomicBitVec,
    flagged: GenerationMarks,
    /// Dedup marks for batch sources (only used when seeding
    /// neighborhoods); separate from `flagged` so source collection does
    /// not depend on cross-worker marking order.
    src_marks: GenerationMarks,
    /// Dedup marks for deletion endpoints whose neighborhoods must be
    /// seeded (symmetric-scope algorithms); same rationale as `src_marks`.
    del_marks: GenerationMarks,
    worker_out: Vec<Mutex<WorkerOut>>,
    sources: Vec<Node>,
    delete_seeds: Vec<Node>,
}

/// One worker's share of a batch's output, reused across batches.
#[derive(Debug, Default)]
struct WorkerOut {
    affected: Vec<Node>,
    new_vertices: Vec<Node>,
    sources: Vec<Node>,
    delete_seeds: Vec<Node>,
}

/// Affected and first-seen vertices of one batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchImpact {
    /// Vertices whose in- or out-edge set changed (deduplicated).
    pub affected: Vec<Node>,
    /// Affected vertices never seen in any earlier batch.
    pub new_vertices: Vec<Node>,
}

impl AffectedTracker {
    /// Creates a tracker for a `capacity`-vertex universe.
    pub fn new(capacity: usize) -> Self {
        Self {
            seen: AtomicBitVec::new(capacity),
            flagged: GenerationMarks::new(capacity),
            src_marks: GenerationMarks::new(capacity),
            del_marks: GenerationMarks::new(capacity),
            worker_out: Vec::new(),
            sources: Vec::new(),
            delete_seeds: Vec::new(),
        }
    }

    /// Computes the affected set of `batch`. When
    /// `include_source_neighborhoods` is set (PageRank), the existing
    /// out-neighbors of every distinct batch source are seeded as well
    /// (their contribution denominators changed); call this *after* the
    /// update phase so the query sees the new topology.
    pub fn process_batch(
        &mut self,
        graph: &dyn GraphTopology,
        batch: &[Edge],
        include_source_neighborhoods: bool,
        pool: &ThreadPool,
    ) -> BatchImpact {
        self.process_mixed_batch(graph, batch, &[], include_source_neighborhoods, false, pool)
    }

    /// Like [`process_batch`](Self::process_batch) for a batch that mixes
    /// insertions and deletions. Endpoints of both edge classes are marked
    /// affected. When `include_delete_neighborhoods` is set
    /// (symmetric-scope algorithms on directed graphs, and every algorithm
    /// on undirected graphs), the surviving out- and in-neighbors of each
    /// deletion endpoint are seeded as well, so vertices whose best
    /// in-contribution travelled over the removed edge get re-pulled even
    /// when the deletion repair pass is disabled. Call after the update
    /// phase so the neighborhood queries see the post-delete topology.
    pub fn process_mixed_batch(
        &mut self,
        graph: &dyn GraphTopology,
        inserts: &[Edge],
        deletes: &[Edge],
        include_source_neighborhoods: bool,
        include_delete_neighborhoods: bool,
        pool: &ThreadPool,
    ) -> BatchImpact {
        let _span =
            saga_trace::span!("affected", edges = (inserts.len() + deletes.len()) as u64);
        self.flagged.next_generation();
        self.src_marks.next_generation();
        self.del_marks.next_generation();
        let threads = pool.threads();
        while self.worker_out.len() < threads {
            self.worker_out.push(Mutex::new(WorkerOut::default()));
        }
        let flagged = &self.flagged;
        let src_marks = &self.src_marks;
        let del_marks = &self.del_marks;
        let seen = &self.seen;
        let worker_out = &self.worker_out;

        // Phase 1a: mark the insert endpoints. Each worker scans a
        // contiguous range; `try_mark` gives every vertex exactly one
        // winner, which appends it to that worker's buffer.
        pool.parallel_ranges(0..inserts.len(), |w, range| {
            let mut out = worker_out[w].lock();
            let out = &mut *out;
            for e in &inserts[range] {
                if include_source_neighborhoods && src_marks.try_mark(e.src as usize) {
                    out.sources.push(e.src);
                }
                if flagged.try_mark(e.src as usize) {
                    out.affected.push(e.src);
                    if seen.try_set(e.src as usize) {
                        out.new_vertices.push(e.src);
                    }
                }
                if flagged.try_mark(e.dst as usize) {
                    out.affected.push(e.dst);
                    if seen.try_set(e.dst as usize) {
                        out.new_vertices.push(e.dst);
                    }
                }
            }
        });

        // Phase 1b: mark the delete endpoints under the same generation, so
        // a vertex touched by both classes is reported once. Delete sources
        // join the source set (their out-degree shrank, which changes
        // PageRank denominators just like an insert does), and both
        // endpoints join the neighborhood-seed set when requested.
        pool.parallel_ranges(0..deletes.len(), |w, range| {
            let mut out = worker_out[w].lock();
            let out = &mut *out;
            for e in &deletes[range] {
                if include_source_neighborhoods && src_marks.try_mark(e.src as usize) {
                    out.sources.push(e.src);
                }
                if include_delete_neighborhoods {
                    if del_marks.try_mark(e.src as usize) {
                        out.delete_seeds.push(e.src);
                    }
                    if del_marks.try_mark(e.dst as usize) {
                        out.delete_seeds.push(e.dst);
                    }
                }
                if flagged.try_mark(e.src as usize) {
                    out.affected.push(e.src);
                    if seen.try_set(e.src as usize) {
                        out.new_vertices.push(e.src);
                    }
                }
                if flagged.try_mark(e.dst as usize) {
                    out.affected.push(e.dst);
                    if seen.try_set(e.dst as usize) {
                        out.new_vertices.push(e.dst);
                    }
                }
            }
        });

        // Phase 2: seed the sources' existing out-neighborhoods. Sources
        // are stitched in worker order first (phase 1's barrier makes that
        // safe), then distributed by a dynamic cursor so one hub's big
        // neighborhood does not serialize the rest.
        if include_source_neighborhoods {
            self.sources.clear();
            for slot in worker_out.iter().take(threads) {
                self.sources.append(&mut slot.lock().sources);
            }
            if !self.sources.is_empty() {
                let sources = &self.sources;
                let grain = adaptive_grain(sources.len(), threads);
                let cursor = AtomicUsize::new(0);
                pool.run_on_all(|w| {
                    let mut out = worker_out[w].lock();
                    let out = &mut *out;
                    let mut neighbors: Vec<Node> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(grain, Ordering::Relaxed);
                        if start >= sources.len() {
                            break;
                        }
                        let end = (start + grain).min(sources.len());
                        for &src in &sources[start..end] {
                            neighbors.clear();
                            graph.for_each_out_neighbor(src, &mut |nb, _| neighbors.push(nb));
                            for &nb in &neighbors {
                                if flagged.try_mark(nb as usize) {
                                    out.affected.push(nb);
                                    if seen.try_set(nb as usize) {
                                        out.new_vertices.push(nb);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        }

        // Phase 2b: seed the surviving neighborhoods of the deletion
        // endpoints, same dynamic-cursor shape as phase 2. Out-neighbors
        // cover the downstream direction; on a directed graph the upstream
        // in-neighbors are walked too, because a symmetric-scope program
        // pulls across both orientations.
        if include_delete_neighborhoods {
            self.delete_seeds.clear();
            for slot in worker_out.iter().take(threads) {
                self.delete_seeds.append(&mut slot.lock().delete_seeds);
            }
            if !self.delete_seeds.is_empty() {
                let seeds = &self.delete_seeds;
                let directed = graph.is_directed();
                let grain = adaptive_grain(seeds.len(), threads);
                let cursor = AtomicUsize::new(0);
                pool.run_on_all(|w| {
                    let mut out = worker_out[w].lock();
                    let out = &mut *out;
                    let mut neighbors: Vec<Node> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(grain, Ordering::Relaxed);
                        if start >= seeds.len() {
                            break;
                        }
                        let end = (start + grain).min(seeds.len());
                        for &v in &seeds[start..end] {
                            neighbors.clear();
                            graph.for_each_out_neighbor(v, &mut |nb, _| neighbors.push(nb));
                            if directed {
                                graph.for_each_in_neighbor(v, &mut |nb, _| neighbors.push(nb));
                            }
                            for &nb in &neighbors {
                                if flagged.try_mark(nb as usize) {
                                    out.affected.push(nb);
                                    if seen.try_set(nb as usize) {
                                        out.new_vertices.push(nb);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        }

        // Stitch per-worker buffers in worker order: deterministic for any
        // fixed thread count, and identical to the sequential first-touch
        // order when the pool has one thread.
        let mut impact = BatchImpact::default();
        for slot in &self.worker_out {
            let mut out = slot.lock();
            impact.affected.append(&mut out.affected);
            impact.new_vertices.append(&mut out.new_vertices);
            out.sources.clear();
            out.delete_seeds.clear();
        }
        impact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_graph::{build_graph, DataStructureKind};

    #[test]
    fn kinds_and_models_display_like_the_paper() {
        assert_eq!(AlgorithmKind::PageRank.to_string(), "PR");
        assert_eq!(ComputeModelKind::Incremental.to_string(), "INC");
        assert_eq!(AlgorithmKind::ALL.len(), 6);
        assert_eq!(ComputeModelKind::ALL.len(), 2);
    }

    #[test]
    fn tracker_dedups_and_detects_new_vertices() {
        let pool = ThreadPool::new(1);
        let g = build_graph(DataStructureKind::AdjacencyShared, 6, true, 1);
        let mut tracker = AffectedTracker::new(6);
        let b1 = [Edge::new(0, 1, 1.0), Edge::new(0, 2, 1.0), Edge::new(0, 1, 1.0)];
        g.update_batch(&b1, &pool);
        let i1 = tracker.process_batch(g.as_ref(), &b1, false, &pool);
        assert_eq!(i1.affected, vec![0, 1, 2]);
        assert_eq!(i1.new_vertices, vec![0, 1, 2]);
        let b2 = [Edge::new(1, 3, 1.0)];
        g.update_batch(&b2, &pool);
        let i2 = tracker.process_batch(g.as_ref(), &b2, false, &pool);
        assert_eq!(i2.affected, vec![1, 3]);
        assert_eq!(i2.new_vertices, vec![3]);
    }

    #[test]
    fn tracker_seeds_source_neighborhood_for_pagerank() {
        let pool = ThreadPool::new(1);
        let g = build_graph(DataStructureKind::AdjacencyShared, 6, true, 1);
        let b0 = [Edge::new(0, 1, 1.0), Edge::new(0, 2, 1.0)];
        g.update_batch(&b0, &pool);
        let mut tracker = AffectedTracker::new(6);
        tracker.process_batch(g.as_ref(), &b0, true, &pool);
        // New batch adds 0 -> 3: vertices 1 and 2 pull stale contributions
        // (0's out-degree changed) unless seeded.
        let b = [Edge::new(0, 3, 1.0)];
        g.update_batch(&b, &pool);
        let impact = tracker.process_batch(g.as_ref(), &b, true, &pool);
        let mut affected = impact.affected.clone();
        affected.sort_unstable();
        assert_eq!(affected, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mixed_batch_marks_delete_endpoints_and_neighborhoods() {
        let pool = ThreadPool::new(1);
        let g = saga_graph::build_deletable_graph(DataStructureKind::AdjacencyShared, 8, true, 1);
        // 0 -> {1, 2}, 3 -> 1, 4 -> 0.
        let b0 = [
            Edge::new(0, 1, 1.0),
            Edge::new(0, 2, 1.0),
            Edge::new(3, 1, 1.0),
            Edge::new(4, 0, 1.0),
        ];
        g.update_batch(&b0, &pool);
        let mut tracker = AffectedTracker::new(8);
        tracker.process_batch(g.as_ref(), &b0, false, &pool);
        // Delete 0 -> 1 and apply it before tracking, as the driver does.
        let del = [Edge::new(0, 1, 1.0)];
        g.delete_batch(&del, &pool);

        // Without neighborhood seeding only the endpoints are affected.
        let plain = tracker.process_mixed_batch(g.as_ref(), &[], &del, false, false, &pool);
        let mut affected = plain.affected.clone();
        affected.sort_unstable();
        assert_eq!(affected, vec![0, 1]);
        assert!(plain.new_vertices.is_empty());

        // With seeding, the surviving out-neighbors (0 -> 2) and the
        // in-neighbors of both endpoints (4 -> 0, 3 -> 1) join the set.
        let seeded = tracker.process_mixed_batch(g.as_ref(), &[], &del, false, true, &pool);
        let mut affected = seeded.affected.clone();
        affected.sort_unstable();
        assert_eq!(affected, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_tracker_matches_single_thread_sets() {
        let n = 256;
        let batch: Vec<Edge> = (0..600)
            .map(|i| Edge::new((i * 7) % n, (i * 13 + 1) % n, 1.0))
            .collect();
        let build = |threads: usize| {
            let pool = ThreadPool::new(threads);
            let g = build_graph(DataStructureKind::AdjacencyShared, n as usize, true, 1);
            g.update_batch(&batch, &pool);
            let mut tracker = AffectedTracker::new(n as usize);
            let mut impact = tracker.process_batch(g.as_ref(), &batch, true, &pool);
            impact.affected.sort_unstable();
            impact.new_vertices.sort_unstable();
            impact
        };
        let reference = build(1);
        for threads in [2, 4, 8] {
            assert_eq!(build(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn vertex_values_accessors_and_top_k() {
        let v = VertexValues::F64(vec![0.1, 0.4, 0.2, 0.4]);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert!(v.as_f64().is_some());
        assert!(v.as_u32().is_none());
        // Ties broken by vertex id: 1 before 3.
        assert_eq!(v.top_k(3), vec![(1, 0.4), (3, 0.4), (2, 0.2)]);

        let d = VertexValues::U32(vec![0, u32::MAX, 2]);
        assert_eq!(d.top_k(10), vec![(2, 2.0), (0, 0.0)], "unreached filtered");

        let w = VertexValues::F32(vec![f32::INFINITY, 1.5]);
        assert_eq!(w.top_k(5), vec![(1, 1.5)], "infinite filtered");
    }

    #[test]
    fn fs_and_inc_states_have_matching_metadata() {
        let s = AlgorithmState::new(
            AlgorithmKind::Sswp,
            ComputeModelKind::FromScratch,
            10,
            AlgorithmParams::default(),
        );
        assert_eq!(s.kind(), AlgorithmKind::Sswp);
        assert_eq!(s.model(), ComputeModelKind::FromScratch);
        assert_eq!(s.capacity(), 10);
        assert!(!s.affects_source_neighborhood());
        let pr = AlgorithmState::new(
            AlgorithmKind::PageRank,
            ComputeModelKind::Incremental,
            10,
            AlgorithmParams::default(),
        );
        assert!(pr.affects_source_neighborhood());
    }
}
