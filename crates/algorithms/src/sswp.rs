//! Single-Source Widest Paths.
//!
//! Table I: `v.path ← max_{e ∈ InEdges(v)} (min(e.source.path, e.weight))`
//! — the bottleneck (maximum-capacity) path from the root. Implemented by
//! the paper itself because GAP does not ship it (§III-B).
//!
//! The FS kernel is a frontier-based monotone relaxation (the widest-path
//! analogue of frontier BFS): widths only grow, so CAS `fetch_max`
//! relaxation over out-edges converges to the exact fixpoint.

use crate::program::{ValueStore, VertexProgram};
use crossbeam::queue::SegQueue;
use saga_graph::properties::AtomicF32Array;
use saga_graph::{GraphTopology, Node};
use saga_utils::bitvec::AtomicBitVec;
use saga_utils::parallel::{Schedule, ThreadPool};

/// SSWP as a vertex program.
///
/// # Examples
///
/// ```
/// use saga_algorithms::sswp::SswpProgram;
/// use saga_algorithms::program::VertexProgram;
///
/// let p = SswpProgram::new(0);
/// assert_eq!(p.initial(0, 4), f32::INFINITY); // root has infinite width
/// assert_eq!(p.initial(1, 4), 0.0); // unreached
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SswpProgram {
    root: Node,
}

impl SswpProgram {
    /// Widest paths from `root`.
    pub fn new(root: Node) -> Self {
        Self { root }
    }

    /// The search root.
    pub fn root(&self) -> Node {
        self.root
    }
}

impl VertexProgram for SswpProgram {
    type Value = f32;
    type Store = AtomicF32Array;

    fn name(&self) -> &'static str {
        "SSWP"
    }

    fn initial(&self, v: Node, _num_nodes: usize) -> f32 {
        if v == self.root {
            f32::INFINITY
        } else {
            0.0
        }
    }

    fn pull(&self, graph: &dyn GraphTopology, v: Node, values: &Self::Store) -> f32 {
        let mut best = 0.0f32;
        graph.for_each_in_neighbor(v, &mut |src, w| {
            best = best.max(values.load(src as usize).min(w));
        });
        best
    }

    fn combine(&self, old: f32, pulled: f32) -> f32 {
        old.max(pulled)
    }

    fn significant_change(&self, old: f32, new: f32) -> bool {
        new > old
    }

    fn derives_from(&self, value: f32, src_value: f32, weight: f32) -> bool {
        value == src_value.min(weight)
    }
}

/// Frontier-based widest-path relaxation from scratch. `values` must
/// already be reset. Returns the number of relaxation rounds.
pub fn sswp_from_scratch(
    program: &SswpProgram,
    graph: &dyn GraphTopology,
    values: &AtomicF32Array,
    pool: &ThreadPool,
) -> usize {
    let n = graph.capacity();
    let mut visited = AtomicBitVec::new(n);
    let next: SegQueue<Node> = SegQueue::new();
    let mut frontier = vec![program.root];
    let mut rounds = 0;
    while !frontier.is_empty() {
        rounds += 1;
        let grain = saga_utils::parallel::adaptive_grain(frontier.len(), pool.threads());
        pool.parallel_for(0..frontier.len(), Schedule::Dynamic(grain), |i| {
            let v = frontier[i];
            let width = values.get(v as usize);
            graph.for_each_out_neighbor(v, &mut |nb, w| {
                let candidate = width.min(w);
                if values.fetch_max(nb as usize, candidate) && visited.try_set(nb as usize) {
                    next.push(nb);
                }
            });
        });
        frontier.clear();
        while let Some(v) = next.pop() {
            frontier.push(v);
        }
        visited.clear_all();
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::reset_values;
    use saga_graph::{build_graph, DataStructureKind, Edge};

    #[test]
    fn widest_path_prefers_high_capacity_detour() {
        let pool = ThreadPool::new(2);
        let g = build_graph(DataStructureKind::AdjacencyChunked, 4, true, 2);
        // Direct 0->2 has width 1; detour 0->1->2 has width min(5, 3) = 3.
        g.update_batch(
            &[
                Edge::new(0, 2, 1.0),
                Edge::new(0, 1, 5.0),
                Edge::new(1, 2, 3.0),
                Edge::new(2, 3, 8.0),
            ],
            &pool,
        );
        let program = SswpProgram::new(0);
        let values = AtomicF32Array::filled(4, 0.0);
        reset_values(&program, &values, 4, &pool);
        sswp_from_scratch(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.to_vec(), vec![f32::INFINITY, 5.0, 3.0, 3.0]);
    }

    #[test]
    fn unreachable_width_is_zero() {
        let pool = ThreadPool::new(1);
        let g = build_graph(DataStructureKind::AdjacencyShared, 3, true, 1);
        g.update_batch(&[Edge::new(1, 2, 7.0)], &pool);
        let program = SswpProgram::new(0);
        let values = AtomicF32Array::filled(3, 0.0);
        reset_values(&program, &values, 3, &pool);
        sswp_from_scratch(&program, g.as_ref(), &values, &pool);
        assert_eq!(values.get(1), 0.0);
        assert_eq!(values.get(2), 0.0);
    }
}
