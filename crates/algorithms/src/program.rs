//! The vertex-function abstraction (Table I of the paper).
//!
//! Every SAGA-Bench algorithm is *vertex-centric*: a vertex's property is a
//! reduction over its incoming edges (Table I), e.g.
//! `v.depth ← min_{e ∈ InEdges(v)} (e.source.depth + 1)` for BFS. The
//! [`VertexProgram`] trait captures exactly that vertex function plus the
//! triggering condition of the incremental compute model (Algorithm 1,
//! line 11); both compute engines are generic over it, which is what lets a
//! new algorithm join the benchmark by implementing one trait (§III-D).

use saga_graph::properties::{AtomicF32Array, AtomicF64Array, AtomicU32Array};
use saga_graph::{GraphTopology, Node};

/// Which neighbors a vertex function reduces over and propagates to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeScope {
    /// Pull from in-neighbors, push to out-neighbors (BFS, MC, PR, SSSP,
    /// SSWP — see Table I).
    InPullOutPush,
    /// Pull from and push to both directions (CC: connectivity ignores
    /// edge direction, `min_{e ∈ Edges(v)}` in Table I).
    Symmetric,
}

/// Property storage used by a vertex program.
///
/// Every store is atomic-backed so the engines can run vertex functions
/// from parallel loops; each vertex's slot is written only by the thread
/// processing that vertex.
pub trait ValueStore<V: Copy>: Send + Sync {
    /// Creates a store of `len` slots, all `init`.
    fn create(len: usize, init: V) -> Self;
    /// Reads slot `i`.
    fn load(&self, i: usize) -> V;
    /// Writes slot `i`.
    fn store(&self, i: usize, value: V);
    /// Number of slots.
    fn len(&self) -> usize;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Hints that slot `i` will be accessed soon. Defaults to a no-op;
    /// the atomic-array stores forward it to a hardware prefetch so the
    /// frontier loops can hide the latency of their random property reads.
    fn prefetch_hint(&self, i: usize) {
        let _ = i;
    }
}

impl ValueStore<u32> for AtomicU32Array {
    fn create(len: usize, init: u32) -> Self {
        AtomicU32Array::filled(len, init)
    }
    fn load(&self, i: usize) -> u32 {
        self.get(i)
    }
    fn store(&self, i: usize, value: u32) {
        self.set(i, value)
    }
    fn len(&self) -> usize {
        AtomicU32Array::len(self)
    }
    fn prefetch_hint(&self, i: usize) {
        self.prefetch(i);
    }
}

impl ValueStore<f32> for AtomicF32Array {
    fn create(len: usize, init: f32) -> Self {
        AtomicF32Array::filled(len, init)
    }
    fn load(&self, i: usize) -> f32 {
        self.get(i)
    }
    fn store(&self, i: usize, value: f32) {
        self.set(i, value)
    }
    fn len(&self) -> usize {
        AtomicF32Array::len(self)
    }
    fn prefetch_hint(&self, i: usize) {
        self.prefetch(i);
    }
}

impl ValueStore<f64> for AtomicF64Array {
    fn create(len: usize, init: f64) -> Self {
        AtomicF64Array::filled(len, init)
    }
    fn load(&self, i: usize) -> f64 {
        self.get(i)
    }
    fn store(&self, i: usize, value: f64) {
        self.set(i, value)
    }
    fn len(&self) -> usize {
        AtomicF64Array::len(self)
    }
    fn prefetch_hint(&self, i: usize) {
        self.prefetch(i);
    }
}

/// A vertex-centric algorithm: one row of Table I.
///
/// The contract, shared by both compute models:
///
/// - [`initial`](Self::initial) is the property of a vertex that has not
///   been reached/computed yet (FS resets every vertex to it; INC applies
///   it to vertices appearing for the first time — Algorithm 1, lines 2–4).
/// - [`pull`](Self::pull) evaluates the reduction over the vertex's
///   incoming edges (both directions for [`EdgeScope::Symmetric`]).
/// - [`combine`](Self::combine) merges the pulled value with the vertex's
///   previous property. For the monotone algorithms this is `min`/`max` —
///   the *processing amortization* of the incremental model (previous
///   results remain valid lower/upper bounds when edges are only added).
/// - [`significant_change`](Self::significant_change) is the triggering
///   condition (Algorithm 1, line 11).
pub trait VertexProgram: Send + Sync {
    /// Property type.
    type Value: Copy + PartialEq + Send + Sync + std::fmt::Debug;
    /// Storage for the property array.
    type Store: ValueStore<Self::Value>;

    /// Human-readable name (paper abbreviation).
    fn name(&self) -> &'static str;

    /// Neighbor scope of the vertex function.
    fn scope(&self) -> EdgeScope {
        EdgeScope::InPullOutPush
    }

    /// Property of an untouched vertex.
    fn initial(&self, v: Node, num_nodes: usize) -> Self::Value;

    /// Evaluates the vertex function: the reduction over incoming edges.
    fn pull(&self, graph: &dyn GraphTopology, v: Node, values: &Self::Store) -> Self::Value;

    /// Merges the previous property with a freshly pulled one.
    fn combine(&self, old: Self::Value, pulled: Self::Value) -> Self::Value;

    /// Whether the change from `old` to `new` is large enough to propagate
    /// to neighbors (Algorithm 1, line 11).
    fn significant_change(&self, old: Self::Value, new: Self::Value) -> bool;

    /// When `true`, an inserted edge `(u, v)` additionally seeds the
    /// out-neighbors of `u` as affected. Only PageRank needs this: a new
    /// out-edge changes `u`'s out-degree and therefore the contribution
    /// `u.rank / u.out_degree` that *every existing* out-neighbor of `u`
    /// pulls, even when `u.rank` itself does not change.
    fn affects_source_neighborhood(&self) -> bool {
        false
    }

    /// Whether `value` could have been derived from an in-neighbor holding
    /// `src_value` across an edge of weight `weight`. The deletion-repair
    /// pass (KickStarter-style) uses this to close the set of vertices
    /// whose stored property may transitively depend on a deleted edge:
    /// only derivable values can be stale, everything else is untouched.
    ///
    /// For the monotone reductions this is the exact inversion of
    /// [`pull`](Self::pull)'s per-edge term, e.g. BFS:
    /// `value == src_value + 1`.
    fn derives_from(&self, value: Self::Value, src_value: Self::Value, weight: f32) -> bool;

    /// Whether deleting edges can strand a stale property that the normal
    /// trigger rounds would never overwrite. True for the monotone
    /// min/max reductions (their [`combine`](Self::combine) only improves
    /// values, so a value depending on a removed edge survives forever);
    /// false for PageRank, whose `combine` replaces the old value — a
    /// re-pull of the affected vertices is already a full repair.
    fn needs_deletion_repair(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_store_roundtrip() {
        let s = <AtomicU32Array as ValueStore<u32>>::create(4, 7);
        assert_eq!(ValueStore::len(&s), 4);
        assert!(!ValueStore::is_empty(&s));
        assert_eq!(s.load(2), 7);
        ValueStore::store(&s, 2, 9);
        assert_eq!(s.load(2), 9);
    }

    #[test]
    fn f32_store_roundtrip() {
        let s = <AtomicF32Array as ValueStore<f32>>::create(3, f32::INFINITY);
        assert_eq!(s.load(0), f32::INFINITY);
        ValueStore::store(&s, 0, 1.5);
        assert_eq!(s.load(0), 1.5);
    }

    #[test]
    fn f64_store_roundtrip() {
        let s = <AtomicF64Array as ValueStore<f64>>::create(2, 0.5);
        assert_eq!(s.load(1), 0.5);
        ValueStore::store(&s, 1, 0.25);
        assert_eq!(s.load(1), 0.25);
    }
}
