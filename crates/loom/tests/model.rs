//! Self-tests for the saga-loom model checker: known-correct protocols must
//! pass every explored schedule, and seeded concurrency bugs must be found.

use saga_loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use saga_loom::sync::{Arc, Condvar, Mutex};
use saga_loom::thread;

#[test]
fn fetch_add_never_loses_an_increment() {
    saga_loom::model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
}

#[test]
#[should_panic(expected = "model failed")]
fn racy_read_modify_write_is_caught() {
    saga_loom::model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    // Deliberate bug: the load and store are separate
                    // scheduling points, so increments can be lost.
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn mutex_protected_rmw_is_sound() {
    saga_loom::model(|| {
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let mut guard = counter.lock();
                    *guard += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2);
    });
}

#[test]
fn cas_race_has_exactly_one_winner() {
    saga_loom::model(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let flag = Arc::clone(&flag);
                let wins = Arc::clone(&wins);
                thread::spawn(move || {
                    if flag
                        .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1);
    });
}

#[test]
fn condvar_handoff_is_not_lost() {
    // Producer sets a flag under the mutex and notifies; consumer waits
    // until the flag is set. The wait loop re-checks the predicate, so no
    // schedule loses the handoff.
    saga_loom::model(|| {
        struct Chan {
            state: Mutex<bool>,
            cv: Condvar,
        }
        let chan = Arc::new(Chan {
            state: Mutex::new(false),
            cv: Condvar::new(),
        });
        let consumer = {
            let chan = Arc::clone(&chan);
            thread::spawn(move || {
                let mut ready = chan.state.lock();
                while !*ready {
                    chan.cv.wait(&mut ready);
                }
            })
        };
        {
            let mut ready = chan.state.lock();
            *ready = true;
            chan.cv.notify_all();
        }
        consumer.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn lost_wakeup_is_reported_as_deadlock() {
    saga_loom::model(|| {
        struct Chan {
            state: Mutex<bool>,
            cv: Condvar,
        }
        let chan = Arc::new(Chan {
            state: Mutex::new(false),
            cv: Condvar::new(),
        });
        let consumer = {
            let chan = Arc::clone(&chan);
            thread::spawn(move || {
                let mut ready = chan.state.lock();
                while !*ready {
                    chan.cv.wait(&mut ready);
                }
            })
        };
        // Deliberate bug: the flag is set without holding the mutex and
        // without notifying. Schedules where the consumer checked the flag
        // first strand it in `wait` forever.
        consumer.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn abba_lock_order_deadlocks()
{
    saga_loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let _ga = a.lock();
                thread::yield_now();
                let _gb = b.lock();
            })
        };
        {
            let _gb = b.lock();
            thread::yield_now();
            let _ga = a.lock();
        }
        t.join().unwrap();
    });
}

#[test]
fn two_condvars_on_one_struct_do_not_alias() {
    // Regression guard for address-based identity: the ThreadPool has two
    // adjacent condvars; notifying one must not wake the other's waiter.
    saga_loom::model(|| {
        struct TwoQueues {
            state: Mutex<(bool, bool)>,
            first: Condvar,
            second: Condvar,
        }
        let q = Arc::new(TwoQueues {
            state: Mutex::new((false, false)),
            first: Condvar::new(),
            second: Condvar::new(),
        });
        let waiter = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut st = q.state.lock();
                while !st.1 {
                    q.second.wait(&mut st);
                }
            })
        };
        {
            let mut st = q.state.lock();
            st.0 = true;
            // Wrong queue: must NOT wake the waiter...
            q.first.notify_all();
            // ...and the right queue must.
            st.1 = true;
            q.second.notify_all();
        }
        waiter.join().unwrap();
    });
}

#[test]
fn shutdown_flag_protocol_terminates() {
    // Miniature of the ThreadPool shutdown protocol: worker loops on a
    // condvar until a shutdown flag is set under the lock.
    saga_loom::model(|| {
        struct Ctl {
            state: Mutex<u64>,
            cv: Condvar,
            shutdown: AtomicBool,
        }
        let ctl = Arc::new(Ctl {
            state: Mutex::new(0),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let worker = {
            let ctl = Arc::clone(&ctl);
            thread::spawn(move || {
                let mut epoch = ctl.state.lock();
                loop {
                    if ctl.shutdown.load(Ordering::SeqCst) {
                        return *epoch;
                    }
                    ctl.cv.wait(&mut epoch);
                }
            })
        };
        ctl.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = ctl.state.lock();
            ctl.cv.notify_all();
        }
        assert_eq!(worker.join().unwrap(), 0);
    });
}

#[test]
fn preemption_bound_zero_still_runs_every_thread() {
    let mut b = saga_loom::Builder::new();
    b.preemption_bound = Some(0);
    let schedules = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let seen = std::sync::Arc::clone(&schedules);
    b.check(move || {
        seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let x = Arc::new(AtomicUsize::new(0));
        let t = {
            let x = Arc::clone(&x);
            thread::spawn(move || x.fetch_add(1, Ordering::SeqCst))
        };
        x.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(x.load(Ordering::SeqCst), 2);
    });
    // With bound 0 at least the blocking-forced schedules run.
    assert!(schedules.load(std::sync::atomic::Ordering::SeqCst) >= 1);
}
