//! A small model checker for the suite's concurrency protocols, shaped like
//! the [`loom`](https://docs.rs/loom) crate's API.
//!
//! The real loom crate is not available in this repository's offline build
//! environment, so this crate provides the subset of its surface that the
//! `saga_utils::sync` facade needs: [`model`], [`sync::atomic`] integer
//! atomics, a [`parking_lot`]-shaped [`sync::Mutex`]/[`sync::Condvar`] pair,
//! and [`thread::spawn`]/[`thread::JoinHandle`]. Code written against the
//! facade compiles against `std`/`parking_lot` normally and against this
//! crate under `--cfg loom`.
//!
//! # What it checks
//!
//! [`model`] runs a closure repeatedly, each time under a cooperative
//! scheduler that serializes the program onto one runnable thread at a time
//! and explores a different interleaving of the *scheduling points* (every
//! atomic access, mutex acquisition, condvar wait/notify, spawn, and join).
//! Exploration is a depth-first search over the scheduling decisions with
//! **preemption bounding** (the CHESS strategy): schedules that preempt a
//! runnable thread more than [`Builder::preemption_bound`] times are pruned.
//! Small bounds find the overwhelming majority of interleaving bugs while
//! keeping the schedule count polynomial.
//!
//! Within an explored schedule the checker detects, and reports with a full
//! schedule trace:
//!
//! - assertion failures / panics on any modeled thread,
//! - deadlocks (no thread can make progress, including lost condvar
//!   wakeups),
//! - non-deterministic models (the replayed prefix diverges).
//!
//! # What it does not check
//!
//! Unlike the real loom, this checker explores interleavings under
//! **sequential consistency**: `Ordering` arguments are accepted and
//! ignored, so bugs that require a weaker memory model to surface (e.g. a
//! missing `Acquire` pairing observable only on relaxed hardware) are out of
//! scope — those are covered by the ThreadSanitizer CI job instead.
//! Spurious condvar wakeups and the spurious failure mode of
//! `compare_exchange_weak` are not modeled either.
//!
//! # Examples
//!
//! A racy read-modify-write is caught (this test is in the crate's suite):
//!
//! ```should_panic
//! use saga_loom::sync::atomic::{AtomicUsize, Ordering};
//! use saga_loom::sync::Arc;
//!
//! saga_loom::model(|| {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let counter = Arc::clone(&counter);
//!             saga_loom::thread::spawn(move || {
//!                 // Racy: load and store are separate scheduling points.
//!                 let v = counter.load(Ordering::SeqCst);
//!                 counter.store(v + 1, Ordering::SeqCst);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     // Some interleaving loses an increment; the checker finds it.
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! ```

mod rt;
pub mod sync;
pub mod thread;

/// Configuration for a model-checking run.
///
/// ```
/// use saga_loom::Builder;
/// use saga_loom::sync::atomic::{AtomicUsize, Ordering};
///
/// let mut b = Builder::new();
/// b.preemption_bound = Some(3);
/// b.check(|| {
///     let x = AtomicUsize::new(0);
///     x.fetch_add(1, Ordering::SeqCst);
///     assert_eq!(x.load(Ordering::SeqCst), 1);
/// });
/// ```
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum number of *preemptive* context switches per schedule (a
    /// switch away from a thread that could have kept running). `None`
    /// reads `SAGA_LOOM_PREEMPTION_BOUND`, defaulting to 2.
    pub preemption_bound: Option<usize>,
    /// Maximum number of schedules to explore before the run panics as
    /// inconclusive. `None` reads `SAGA_LOOM_MAX_ITERS`, defaulting to
    /// 500 000.
    pub max_iterations: Option<usize>,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// A builder with the environment-variable defaults described on the
    /// fields.
    pub fn new() -> Self {
        Self {
            preemption_bound: None,
            max_iterations: None,
        }
    }

    /// Exhaustively checks `f` under every schedule within the preemption
    /// bound, panicking with a schedule trace on the first failure.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let bound = self
            .preemption_bound
            .or_else(|| env_usize("SAGA_LOOM_PREEMPTION_BOUND"))
            .unwrap_or(2);
        let max_iters = self
            .max_iterations
            .or_else(|| env_usize("SAGA_LOOM_MAX_ITERS"))
            .unwrap_or(500_000);
        rt::explore(std::sync::Arc::new(f), bound, max_iters);
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// Model-checks `f` with the default [`Builder`] configuration.
///
/// Every schedule of `f`'s scheduling points (within the preemption bound)
/// is executed; the call panics with the offending schedule if any of them
/// panics or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f);
}
