//! Modeled thread spawn/join.
//!
//! Spawned threads are real OS threads, but they only execute while holding
//! the scheduler baton, so the model explores their interleavings
//! deterministically.

use crate::rt;
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a modeled thread; join is a scheduling point enabled once the
/// thread has finished.
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Waits (schedule-wise) for the thread to finish and returns its
    /// result.
    ///
    /// # Errors
    ///
    /// Mirrors `std::thread::JoinHandle::join`'s signature. A panicking
    /// modeled thread aborts the whole model iteration before `join`
    /// returns, so in practice the error case is unreachable.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        rt::join(self.tid);
        let result = self
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        match result {
            Some(v) => Ok(v),
            None => Err(Box::new("modeled thread produced no result")
                as Box<dyn std::any::Any + Send + 'static>),
        }
    }
}

/// Spawns a modeled thread running `f`. Must be called from inside
/// [`crate::model`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::spawn(Box::new(move || {
        let value = f();
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
    }));
    JoinHandle { tid, result }
}

/// A scheduling point with no shared-memory effect; lets the explorer
/// switch threads at a program point of the model's choosing.
pub fn yield_now() {
    rt::shared_op(|| ());
}
