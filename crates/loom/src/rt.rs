//! The scheduler runtime behind [`crate::model`].
//!
//! One *iteration* executes the model closure once under a cooperative
//! scheduler: every managed thread stops at each scheduling point
//! ([`shared_op`], [`mutex_lock`], [`cond_wait`], …) and hands a baton back
//! to the scheduler, which picks the next thread to run according to the
//! schedule being explored. Exploration is a depth-first search over those
//! decisions with preemption bounding (see the crate docs).
//!
//! The runtime is intentionally simple: real OS threads are used for the
//! managed threads, but a global baton guarantees at most one of them runs
//! user code at any instant, so modeled "atomics" can be plain
//! `UnsafeCell`s.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// The operation a parked thread is about to perform; determines whether
/// the scheduler may grant it the baton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pending {
    /// Unconditional shared-memory step (atomic access, notify, spawn).
    Op,
    /// Acquire the mutex keyed by this address; enabled iff unlocked.
    Lock(usize),
    /// Join the given thread; enabled iff it has finished.
    Join(usize),
}

#[derive(Debug)]
enum Status {
    /// Holds the baton and is executing user code.
    Running,
    /// Stopped at a scheduling point, waiting to be granted the baton.
    Parked(Pending),
    /// Blocked in `Condvar::wait`; not schedulable until notified (the
    /// waiter list in `ModelState::cond_waiters` holds the cv/mutex pair).
    CondWait,
    /// The thread function returned (or unwound).
    Finished,
}

/// One recorded scheduling decision, with enough context to both replay it
/// and derive the next schedule to explore.
#[derive(Debug, Clone)]
struct Decision {
    /// Thread ids that were grantable at this point, ascending.
    enabled: Vec<usize>,
    /// Index into `enabled` of the granted thread.
    index: usize,
    /// Thread that held the baton before this decision (for preemption
    /// accounting).
    prev_active: Option<usize>,
    /// Preemptions spent on the schedule prefix before this decision.
    preempts_before: usize,
}

struct ModelState {
    threads: Vec<Status>,
    /// Baton holder; `None` while the scheduler is deciding.
    active: Option<usize>,
    prev_active: Option<usize>,
    /// Lock owner per mutex address (`None` = unlocked).
    mutexes: HashMap<usize, Option<usize>>,
    /// Waiters per condvar address: (thread id, mutex to reacquire).
    cond_waiters: HashMap<usize, Vec<(usize, usize)>>,
    /// OS handles of threads spawned this iteration, joined at the end.
    os_handles: Vec<std::thread::JoinHandle<()>>,
    /// Set on failure (panic / deadlock / divergence): every blocked thread
    /// unwinds with an [`AbortToken`] so the iteration can be torn down.
    abort: bool,
    panic_msg: Option<String>,
    /// Schedule: replayed prefix then fresh extension.
    path: Vec<Decision>,
    cursor: usize,
    preempts: usize,
}

struct Rt {
    state: StdMutex<Option<ModelState>>,
    cv: StdCondvar,
}

static RT: Rt = Rt {
    state: StdMutex::new(None),
    cv: StdCondvar::new(),
};

std::thread_local! {
    static TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Token unwound through managed threads when an iteration is aborted
/// (another thread panicked or deadlocked); not a user failure itself.
struct AbortToken;

fn current_tid() -> Option<usize> {
    TID.with(|t| t.get())
}

/// Whether the calling thread is managed by an active model iteration.
pub(crate) fn is_managed() -> bool {
    current_tid().is_some()
}

/// Whether scheduling must be bypassed: a managed thread that is already
/// unwinding (user panic or [`AbortToken`]) must not re-enter the
/// scheduler from destructors — a panic inside a drop during unwinding
/// aborts the process. Bypassed shared ops are serialized on the runtime
/// lock instead, so teardown stays race-free.
fn abort_bypass() -> bool {
    is_managed() && std::thread::panicking()
}

/// Unwinds the current managed thread without running the panic hook.
fn raise_abort() -> ! {
    std::panic::resume_unwind(Box::new(AbortToken));
}

/// Panics unless called from a managed thread; modeled primitives are only
/// meaningful inside [`crate::model`].
fn expect_managed() -> usize {
    current_tid().expect(
        "saga-loom primitive used outside of saga_loom::model — \
         loom-cfg'd types must only be exercised from model()",
    )
}

/// Parks the calling managed thread at a scheduling point declaring
/// `pending`, and returns once the scheduler grants it the baton. On
/// return the thread holds the baton (exclusive execution) and, for
/// [`Pending::Lock`], owns the mutex.
fn yield_point(pending: Pending) {
    let me = expect_managed();
    let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
    {
        let st = guard.as_mut().expect("model state missing");
        if st.abort {
            drop(guard);
            raise_abort();
        }
        st.threads[me] = Status::Parked(pending);
        st.active = None;
    }
    RT.cv.notify_all();
    loop {
        let st = guard.as_mut().expect("model state missing");
        if st.abort {
            drop(guard);
            raise_abort();
        }
        if st.active == Some(me) {
            st.threads[me] = Status::Running;
            if let Pending::Lock(m) = pending {
                let owner = st.mutexes.entry(m).or_insert(None);
                debug_assert!(owner.is_none(), "granted a held mutex");
                *owner = Some(me);
            }
            return;
        }
        guard = RT.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
    }
}

/// Runs `op` as one atomic scheduling step. The baton serializes managed
/// threads, so `op` may touch the `UnsafeCell` state of modeled atomics.
pub(crate) fn shared_op<T>(op: impl FnOnce() -> T) -> T {
    if abort_bypass() {
        // Serialize teardown-time accesses on the runtime lock instead of
        // the (no longer running) scheduler.
        let _guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
        return op();
    }
    yield_point(Pending::Op);
    op()
}

/// Acquires the modeled mutex keyed by `addr` (blocking schedule-wise until
/// it is free).
pub(crate) fn mutex_lock(addr: usize) {
    if abort_bypass() {
        // Teardown: every managed thread is unwinding, so the lock is
        // uncontended in any execution that matters; grant it vacuously.
        return;
    }
    yield_point(Pending::Lock(addr));
}

/// Releases the modeled mutex keyed by `addr`. Not a scheduling point: the
/// releasing thread keeps the baton; the scheduler re-evaluates enabledness
/// at its next yield.
pub(crate) fn mutex_unlock(addr: usize) {
    // Runs from guard destructors, possibly during abort unwinding or
    // after the iteration state was torn down — must never panic.
    let Some(me) = current_tid() else { return };
    let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
    let Some(st) = guard.as_mut() else { return };
    if let Some(owner) = st.mutexes.get_mut(&addr) {
        if *owner == Some(me) {
            *owner = None;
        }
    }
}

/// Atomically releases `mutex` and blocks on `cv` until notified, then
/// reacquires `mutex` before returning (the condvar-wait protocol).
pub(crate) fn cond_wait(cv: usize, mutex: usize) {
    if abort_bypass() {
        return;
    }
    let me = expect_managed();
    let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
    {
        let st = guard.as_mut().expect("model state missing");
        if st.abort {
            drop(guard);
            raise_abort();
        }
        let owner = st.mutexes.entry(mutex).or_insert(None);
        debug_assert_eq!(*owner, Some(me), "cond_wait without holding the mutex");
        *owner = None;
        st.cond_waiters.entry(cv).or_default().push((me, mutex));
        st.threads[me] = Status::CondWait;
        st.active = None;
    }
    RT.cv.notify_all();
    loop {
        let st = guard.as_mut().expect("model state missing");
        if st.abort {
            drop(guard);
            raise_abort();
        }
        if st.active == Some(me) {
            // A notify converted us to Parked(Lock(mutex)) and the
            // scheduler granted the reacquisition.
            st.threads[me] = Status::Running;
            let owner = st.mutexes.entry(mutex).or_insert(None);
            debug_assert!(owner.is_none(), "granted a held mutex on cond wake");
            *owner = Some(me);
            return;
        }
        guard = RT.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
    }
}

/// Wakes every thread blocked on the condvar keyed by `cv`; each woken
/// thread becomes schedulable once it can reacquire its mutex.
pub(crate) fn cond_notify_all(cv: usize) {
    if abort_bypass() {
        // Teardown: waiters are woken by the abort flag, not notifies.
        return;
    }
    yield_point(Pending::Op);
    let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
    let st = guard.as_mut().expect("model state missing");
    if let Some(waiters) = st.cond_waiters.remove(&cv) {
        for (tid, mutex) in waiters {
            st.threads[tid] = Status::Parked(Pending::Lock(mutex));
        }
    }
}

/// Wakes one thread (FIFO) blocked on the condvar keyed by `cv`.
pub(crate) fn cond_notify_one(cv: usize) {
    if abort_bypass() {
        return;
    }
    yield_point(Pending::Op);
    let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
    let st = guard.as_mut().expect("model state missing");
    if let Some(waiters) = st.cond_waiters.get_mut(&cv) {
        if !waiters.is_empty() {
            let (tid, mutex) = waiters.remove(0);
            st.threads[tid] = Status::Parked(Pending::Lock(mutex));
        }
    }
}

/// Registers and starts a new managed thread running `f`; returns its
/// thread id for [`join`].
pub(crate) fn spawn(f: Box<dyn FnOnce() + Send>) -> usize {
    if abort_bypass() {
        // Pathological (spawn from a destructor during teardown): run the
        // closure inline; its scheduling points all bypass too.
        f();
        return usize::MAX;
    }
    yield_point(Pending::Op);
    let tid = {
        let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
        let st = guard.as_mut().expect("model state missing");
        let tid = st.threads.len();
        st.threads.push(Status::Parked(Pending::Op));
        tid
    };
    let handle = std::thread::Builder::new()
        .name(format!("saga-loom-{tid}"))
        .spawn(move || run_managed(tid, f))
        .expect("failed to spawn model thread");
    let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
    let st = guard.as_mut().expect("model state missing");
    st.os_handles.push(handle);
    tid
}

/// Blocks (schedule-wise) until thread `tid` has finished.
pub(crate) fn join(tid: usize) {
    if abort_bypass() || tid == usize::MAX {
        return;
    }
    yield_point(Pending::Join(tid));
}

/// Body of every managed OS thread: wait for the first grant, run the user
/// closure, report completion (or failure) to the scheduler.
fn run_managed(tid: usize, f: Box<dyn FnOnce() + Send>) {
    TID.with(|t| t.set(Some(tid)));
    // The spawn registered us as Parked(Op): wait for the starting grant.
    let result = catch_unwind(AssertUnwindSafe(|| {
        wait_for_start(tid);
        f();
    }));
    let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(st) = guard.as_mut() {
        st.threads[tid] = Status::Finished;
        if st.active == Some(tid) {
            st.active = None;
        }
        if let Err(payload) = result {
            if !payload.is::<AbortToken>() && !st.abort {
                st.abort = true;
                st.panic_msg = Some(payload_to_string(&payload));
            }
        }
    }
    drop(guard);
    RT.cv.notify_all();
}

fn wait_for_start(me: usize) {
    let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let st = guard.as_mut().expect("model state missing");
        if st.abort {
            drop(guard);
            raise_abort();
        }
        if st.active == Some(me) {
            st.threads[me] = Status::Running;
            return;
        }
        guard = RT.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
    }
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Whether a parked thread's pending op can be granted right now.
fn is_enabled(st: &ModelState, tid: usize) -> bool {
    match st.threads[tid] {
        Status::Parked(Pending::Op) => true,
        Status::Parked(Pending::Lock(m)) => {
            st.mutexes.get(&m).copied().flatten().is_none()
        }
        Status::Parked(Pending::Join(t)) => matches!(st.threads[t], Status::Finished),
        Status::Running | Status::CondWait | Status::Finished => false,
    }
}

/// The DFS driver: runs iterations until the schedule space (within the
/// preemption bound) is exhausted or a failure is found.
pub(crate) fn explore(f: Arc<dyn Fn() + Send + Sync>, bound: usize, max_iters: usize) {
    assert!(
        !is_managed(),
        "saga_loom::model may not be nested inside a model"
    );
    let mut path: Vec<Decision> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iters,
            "saga-loom: exceeded {max_iters} schedules without exhausting the model; \
             shrink the model or raise SAGA_LOOM_MAX_ITERS"
        );
        let outcome = run_iteration(&f, std::mem::take(&mut path));
        path = match outcome {
            Ok(p) => p,
            Err((msg, p)) => {
                panic!(
                    "saga-loom: model failed on schedule #{iterations} {}: {msg}",
                    format_schedule(&p)
                );
            }
        };
        if !next_schedule(&mut path, bound) {
            return;
        }
    }
}

fn format_schedule(path: &[Decision]) -> String {
    let order: Vec<String> = path
        .iter()
        .map(|d| d.enabled[d.index.min(d.enabled.len().saturating_sub(1))].to_string())
        .collect();
    format!("[{}]", order.join(" "))
}

/// Executes one schedule. Returns the (possibly extended) path, or the
/// failure message plus the path executed so far.
fn run_iteration(
    f: &Arc<dyn Fn() + Send + Sync>,
    path: Vec<Decision>,
) -> Result<Vec<Decision>, (String, Vec<Decision>)> {
    {
        let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
        assert!(guard.is_none(), "concurrent saga_loom::model runs");
        *guard = Some(ModelState {
            threads: vec![Status::Parked(Pending::Op)],
            active: None,
            prev_active: None,
            mutexes: HashMap::new(),
            cond_waiters: HashMap::new(),
            os_handles: Vec::new(),
            abort: false,
            panic_msg: None,
            path,
            cursor: 0,
            preempts: 0,
        });
    }
    // Thread 0 is the root: it runs the model closure itself.
    let f0 = Arc::clone(f);
    let root = std::thread::Builder::new()
        .name("saga-loom-0".into())
        .spawn(move || run_managed(0, Box::new(move || f0())))
        .expect("failed to spawn model root thread");

    // Scheduler loop.
    let mut guard = RT.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        {
            let st = guard.as_mut().expect("model state missing");
            if st.abort {
                break;
            }
            if st.active.is_none() {
                if st
                    .threads
                    .iter()
                    .all(|t| matches!(t, Status::Finished))
                {
                    break;
                }
                let enabled: Vec<usize> = (0..st.threads.len())
                    .filter(|&t| is_enabled(st, t))
                    .collect();
                let any_parked_or_waiting = st.threads.iter().any(|t| {
                    matches!(t, Status::Parked(_) | Status::CondWait)
                });
                if enabled.is_empty() {
                    if any_parked_or_waiting {
                        st.abort = true;
                        st.panic_msg = Some(
                            "deadlock: threads blocked with no enabled successor \
                             (lost wakeup or lock cycle)"
                                .to_string(),
                        );
                        break;
                    }
                    // Threads exist that are neither parked nor finished:
                    // an OS thread is still on its way to its first or next
                    // yield. Wait for it below.
                } else {
                    let cursor = st.cursor;
                    let index = if cursor < st.path.len() {
                        if st.path[cursor].enabled != enabled {
                            st.abort = true;
                            st.panic_msg = Some(format!(
                                "non-deterministic model: replayed schedule diverged at \
                                 decision {cursor} (expected enabled {:?}, got {enabled:?})",
                                st.path[cursor].enabled
                            ));
                            break;
                        }
                        st.path[cursor].index
                    } else {
                        // Fresh extension: prefer continuing the previous
                        // thread (no preemption), else the lowest tid.
                        let idx = st
                            .prev_active
                            .and_then(|p| enabled.iter().position(|&t| t == p))
                            .unwrap_or(0);
                        st.path.push(Decision {
                            enabled: enabled.clone(),
                            index: idx,
                            prev_active: st.prev_active,
                            preempts_before: st.preempts,
                        });
                        idx
                    };
                    let chosen = enabled[index];
                    if let Some(p) = st.prev_active {
                        if p != chosen && enabled.contains(&p) {
                            st.preempts += 1;
                        }
                    }
                    st.cursor += 1;
                    st.prev_active = Some(chosen);
                    st.active = Some(chosen);
                    RT.cv.notify_all();
                }
            }
        }
        guard = RT.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
    }

    // Tear down: release any still-blocked threads and join the OS threads.
    let (handles, panic_msg, path) = {
        let st = guard.as_mut().expect("model state missing");
        st.abort = st.abort || st.panic_msg.is_some();
        let handles = std::mem::take(&mut st.os_handles);
        let panic_msg = st.panic_msg.take();
        let path = std::mem::take(&mut st.path);
        if panic_msg.is_some() {
            st.abort = true;
        }
        (handles, panic_msg, path)
    };
    RT.cv.notify_all();
    drop(guard);
    for h in handles {
        let _ = h.join();
    }
    let _ = root.join();
    *RT.state.lock().unwrap_or_else(|e| e.into_inner()) = None;
    match panic_msg {
        Some(msg) => Err((msg, path)),
        None => Ok(path),
    }
}

/// Advances `path` to the next unexplored schedule within the preemption
/// bound (standard DFS backtracking). Returns `false` when the space is
/// exhausted.
fn next_schedule(path: &mut Vec<Decision>, bound: usize) -> bool {
    for k in (0..path.len()).rev() {
        let d = &path[k];
        for idx in d.index + 1..d.enabled.len() {
            let preemptive = match d.prev_active {
                Some(p) => p != d.enabled[idx] && d.enabled.contains(&p),
                None => false,
            };
            let delta = usize::from(preemptive);
            if d.preempts_before + delta <= bound {
                path.truncate(k + 1);
                path[k].index = idx;
                return true;
            }
        }
    }
    false
}
