//! Modeled synchronization primitives: `parking_lot`-shaped [`Mutex`] and
//! [`Condvar`], plus [`atomic`] integer types.
//!
//! All of these are plain data guarded by the scheduler baton: at most one
//! managed thread executes between scheduling points, so the interior
//! `UnsafeCell`s are never accessed concurrently. Each access *is* a
//! scheduling point, which is what lets the explorer interleave them.

use crate::rt;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

pub use std::sync::Arc;

/// Modeled atomics with the `std::sync::atomic` surface the suite uses.
///
/// `Ordering` arguments are accepted for API compatibility and ignored:
/// exploration is sequentially consistent (see the crate docs for why that
/// is an intentional trade-off).
pub mod atomic {
    use super::rt;
    use std::cell::UnsafeCell;

    pub use std::sync::atomic::Ordering;

    macro_rules! int_atomic {
        ($name:ident, $ty:ty) => {
            /// Modeled counterpart of the std atomic of the same name;
            /// every operation is one scheduling point.
            #[derive(Debug, Default)]
            pub struct $name {
                value: UnsafeCell<$ty>,
            }

            // SAFETY: the model scheduler guarantees at most one managed
            // thread runs between scheduling points, and every access to
            // `value` happens inside `rt::shared_op`, i.e. while holding
            // the baton — so there is never a concurrent access.
            unsafe impl Sync for $name {}
            // SAFETY: `$ty` is a plain integer; moving the cell between
            // threads is trivially sound.
            unsafe impl Send for $name {}

            impl $name {
                /// Creates a new modeled atomic with the given value.
                pub const fn new(value: $ty) -> Self {
                    Self {
                        value: UnsafeCell::new(value),
                    }
                }

                fn with<R>(&self, f: impl FnOnce(&mut $ty) -> R) -> R {
                    rt::shared_op(|| {
                        // SAFETY: executed under the scheduler baton
                        // (`shared_op`), so this is the only live access.
                        f(unsafe { &mut *self.value.get() })
                    })
                }

                /// Loads the value (one scheduling point).
                pub fn load(&self, _order: Ordering) -> $ty {
                    self.with(|v| *v)
                }

                /// Stores `value` (one scheduling point).
                pub fn store(&self, value: $ty, _order: Ordering) {
                    self.with(|v| *v = value);
                }

                /// Swaps in `value`, returning the previous value.
                pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                    self.with(|v| std::mem::replace(v, value))
                }

                /// Compare-and-exchange; the whole CAS is one scheduling
                /// point, matching hardware atomicity.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.with(|v| {
                        if *v == current {
                            *v = new;
                            Ok(current)
                        } else {
                            Err(*v)
                        }
                    })
                }

                /// Like [`compare_exchange`](Self::compare_exchange);
                /// spurious failures are not modeled.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, rhs: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let prev = *v;
                        *v = prev.wrapping_add(rhs);
                        prev
                    })
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, rhs: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let prev = *v;
                        *v = prev.wrapping_sub(rhs);
                        prev
                    })
                }

                /// Atomic bitwise OR, returning the previous value.
                pub fn fetch_or(&self, rhs: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let prev = *v;
                        *v = prev | rhs;
                        prev
                    })
                }

                /// Atomic bitwise AND, returning the previous value.
                pub fn fetch_and(&self, rhs: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let prev = *v;
                        *v = prev & rhs;
                        prev
                    })
                }

                /// Atomic bitwise XOR, returning the previous value.
                pub fn fetch_xor(&self, rhs: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let prev = *v;
                        *v = prev ^ rhs;
                        prev
                    })
                }

                /// Atomic maximum, returning the previous value.
                pub fn fetch_max(&self, rhs: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let prev = *v;
                        *v = prev.max(rhs);
                        prev
                    })
                }

                /// Atomic minimum, returning the previous value.
                pub fn fetch_min(&self, rhs: $ty, _order: Ordering) -> $ty {
                    self.with(|v| {
                        let prev = *v;
                        *v = prev.min(rhs);
                        prev
                    })
                }

                /// Non-atomic read through exclusive access (no scheduling
                /// point; `&mut self` proves no sharing).
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.value.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.value.into_inner()
                }
            }
        };
    }

    int_atomic!(AtomicUsize, usize);
    int_atomic!(AtomicU64, u64);
    int_atomic!(AtomicU32, u32);
    int_atomic!(AtomicU8, u8);
    int_atomic!(AtomicI64, i64);

    /// Modeled `AtomicBool`; every operation is one scheduling point.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        value: UnsafeCell<bool>,
    }

    // SAFETY: same argument as the integer atomics — all accesses happen
    // under the scheduler baton inside `rt::shared_op`.
    unsafe impl Sync for AtomicBool {}
    // SAFETY: `bool` is plain data; sending the cell is sound.
    unsafe impl Send for AtomicBool {}

    impl AtomicBool {
        /// Creates a new modeled atomic bool.
        pub const fn new(value: bool) -> Self {
            Self {
                value: UnsafeCell::new(value),
            }
        }

        fn with<R>(&self, f: impl FnOnce(&mut bool) -> R) -> R {
            rt::shared_op(|| {
                // SAFETY: executed under the scheduler baton, so this is
                // the only live access.
                f(unsafe { &mut *self.value.get() })
            })
        }

        /// Loads the value (one scheduling point).
        pub fn load(&self, _order: Ordering) -> bool {
            self.with(|v| *v)
        }

        /// Stores `value` (one scheduling point).
        pub fn store(&self, value: bool, _order: Ordering) {
            self.with(|v| *v = value);
        }

        /// Swaps in `value`, returning the previous value.
        pub fn swap(&self, value: bool, _order: Ordering) -> bool {
            self.with(|v| std::mem::replace(v, value))
        }

        /// Compare-and-exchange as one scheduling point.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            self.with(|v| {
                if *v == current {
                    *v = new;
                    Ok(current)
                } else {
                    Err(*v)
                }
            })
        }

        /// Atomic OR, returning the previous value.
        pub fn fetch_or(&self, rhs: bool, _order: Ordering) -> bool {
            self.with(|v| {
                let prev = *v;
                *v = prev | rhs;
                prev
            })
        }

        /// Atomic AND, returning the previous value.
        pub fn fetch_and(&self, rhs: bool, _order: Ordering) -> bool {
            self.with(|v| {
                let prev = *v;
                *v = prev & rhs;
                prev
            })
        }
    }
}

/// A modeled mutex with the `parking_lot` API shape (no lock poisoning,
/// guard-based [`Condvar::wait`]).
///
/// Identity in the model is the object's address, so a `Mutex` created
/// inside the model closure is tracked per iteration automatically.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: UnsafeCell<T>,
    /// Never read: keeps the type non-zero-sized even for `Mutex<()>` so
    /// address-based identity cannot alias (see [`Condvar::_addr`]).
    _addr: u8,
}

// SAFETY: lock acquisition goes through the model scheduler, which grants
// the mutex to at most one thread at a time; `data` is only reachable
// through a held guard.
unsafe impl<T: Send> Sync for Mutex<T> {}
// SAFETY: ownership transfer of the cell is sound whenever `T: Send`.
unsafe impl<T: Send> Send for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new modeled mutex.
    pub const fn new(data: T) -> Self {
        Self {
            data: UnsafeCell::new(data),
            _addr: 0,
        }
    }

    fn key(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquires the mutex, blocking (schedule-wise) until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        rt::mutex_lock(self.key());
        MutexGuard { mutex: self }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Exclusive access without locking (`&mut self` proves no sharing).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Guard returned by [`Mutex::lock`]; releases the model lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the scheduler granted this thread the mutex and will not
        // grant it to another thread until the guard drops, so access to
        // the cell is exclusive.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`: the model lock is held for the guard's
        // lifetime, so the access is exclusive.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rt::mutex_unlock(self.mutex.key());
    }
}

/// A modeled condition variable with the `parking_lot` API shape
/// ([`wait`](Self::wait) takes the guard by `&mut`).
///
/// Spurious wakeups are not modeled; lost-wakeup bugs still surface as
/// deadlocks because a waiter with no pending notify has no enabled
/// successor.
#[derive(Debug, Default)]
pub struct Condvar {
    /// Never read: pads the type to a non-zero size so that adjacent
    /// condvars in one struct get distinct addresses (identity in the
    /// model is the object address — two ZST fields would alias).
    _addr: u8,
}

impl Condvar {
    /// Creates a new modeled condvar.
    pub const fn new() -> Self {
        Self { _addr: 0 }
    }

    fn key(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Releases the guard's mutex, blocks until notified, and reacquires
    /// the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        rt::cond_wait(self.key(), guard.mutex.key());
    }

    /// Wakes every thread blocked in [`wait`](Self::wait) on this condvar.
    pub fn notify_all(&self) {
        rt::cond_notify_all(self.key());
    }

    /// Wakes one thread (FIFO) blocked in [`wait`](Self::wait).
    pub fn notify_one(&self) {
        rt::cond_notify_one(self.key());
    }
}

/// A modeled reader-writer lock with the `parking_lot` API shape.
///
/// The model is deliberately conservative: readers serialize with each
/// other exactly like writers (both map onto the model's exclusive lock).
/// That forfeits exploration of reader-reader concurrency — which is
/// data-race-free by construction — but preserves every lock-ordering and
/// hold-across-callback interleaving, which is what the model checker is
/// for. See DESIGN.md §7.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    data: UnsafeCell<T>,
    /// Never read: keeps the type non-zero-sized so address-based
    /// identity cannot alias (see [`Mutex::_addr`]).
    _addr: u8,
}

// SAFETY: both guard flavors go through the model scheduler's exclusive
// lock, so `data` is only ever reached by the single thread holding it.
unsafe impl<T: Send> Sync for RwLock<T> {}
// SAFETY: ownership transfer of the cell is sound whenever `T: Send`.
unsafe impl<T: Send> Send for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates a new modeled reader-writer lock.
    pub const fn new(data: T) -> Self {
        Self {
            data: UnsafeCell::new(data),
            _addr: 0,
        }
    }

    fn key(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquires a read guard (exclusive under the model).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        rt::mutex_lock(self.key());
        RwLockReadGuard { lock: self }
    }

    /// Acquires a write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        rt::mutex_lock(self.key());
        RwLockWriteGuard { lock: self }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Exclusive access without locking (`&mut self` proves no sharing).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Guard returned by [`RwLock::read`]; releases the model lock on drop.
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the scheduler granted this thread the lock and will not
        // grant it again until the guard drops.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        rt::mutex_unlock(self.lock.key());
    }
}

/// Guard returned by [`RwLock::write`]; releases the model lock on drop.
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: as in the read guard — the model lock is held for the
        // guard's lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: write guards hold the model's exclusive lock, so the
        // access cannot race.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        rt::mutex_unlock(self.lock.key());
    }
}
