//! The sharded BSP superstep engine.
//!
//! A run executes supersteps until quiescence (fold programs) or
//! convergence (sum programs). Each superstep is three barrier crossings:
//!
//! 1. **Scatter** — every worker walks its shards' active vertices and
//!    posts push-form messages ([`MessageProgram::message`]) into the
//!    per-(src, dst) mailbox cells.
//! 2. *barrier* — flips the phase; every cell now has its writer done.
//! 3. **Gather** — every worker drains its shards' inbound cells in
//!    ascending source-shard order and folds (or sums) the messages into
//!    the shard-local property array, building the next active frontier.
//! 4. *barrier* — the leader (last arriver) runs the sequential epilogue:
//!    termination check, superstep advance, and checkpoint publication.
//! 5. *barrier* — publishes the leader's decision to everyone.
//!
//! Checkpoints are taken only at the gather-end boundary, where all
//! mailboxes are empty by construction, so a snapshot is just per-shard
//! values + active lists. Because each mailbox cell has a single writer
//! and a single reader per superstep, the drain order is fixed, and the
//! sum mode accumulates in that fixed order, replaying from a checkpoint
//! with the same thread count is **bitwise identical** to an
//! uninterrupted run — the property `saga-check`'s kill-and-recover
//! harness asserts.

use crate::checkpoint::{Checkpoint, CheckpointConfig, CheckpointStore, ValueCodec};
use crate::layout::ShardLayout;
use crate::mailbox::Mailboxes;
use saga_algorithms::message::{GatherMode, MessageProgram};
use saga_algorithms::program::EdgeScope;
use saga_graph::properties::ShardValues;
use saga_graph::{GraphTopology, Node, Weight};
use saga_trace::metrics;
use saga_utils::barrier::Barrier;
use saga_utils::bitvec::GenerationMarks;
use saga_utils::parallel::ThreadPool;
use saga_utils::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use saga_utils::sync::Mutex;
use std::io;

/// Which half of a superstep a simulated kill lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPhase {
    /// Die after sending roughly half the shard's outbound messages.
    Scatter,
    /// Die after draining roughly half the shard's inbound cells.
    Gather,
}

/// A one-shot fault injection: the worker owning `shard` abandons its
/// work mid-`phase` of `superstep`. The spec is consumed when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Superstep index the kill fires in.
    pub superstep: usize,
    /// Victim shard.
    pub shard: usize,
    /// Scatter- or gather-side kill.
    pub phase: KillPhase,
}

/// Error returned by [`BspEngine::run`] when an armed [`KillSpec`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Killed {
    /// The superstep the worker died in.
    pub superstep: usize,
}

/// Summary of a completed (un-killed) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BspOutcome {
    /// Supersteps executed, counting any replayed after a recovery.
    pub supersteps: usize,
    /// Messages sent across all supersteps of this `run` call.
    pub messages: u64,
}

/// One shard's owner-private state. Guarded by a `Mutex` for safe
/// hand-off across runs, but never contended: the owning worker is the
/// only locker during a phase.
struct ShardState<V> {
    values: ShardValues<V>,
    active: Vec<Node>,
    next_active: Vec<Node>,
    /// Dedup marks for `next_active`, one slot per local vertex.
    marks: GenerationMarks,
    /// Sum-mode accumulator scratch, one slot per local vertex.
    acc: Vec<V>,
}

/// Per-run shared coordination state.
struct Control {
    barrier: Barrier,
    /// Messages sent, whole run.
    messages: AtomicU64,
    /// Messages sent this superstep (leader swaps to zero).
    step_messages: AtomicU64,
    /// Fold mode: total next-frontier size this superstep.
    active_total: AtomicUsize,
    /// Sum mode: Σ delta_magnitude in 1e-12 fixed point this superstep.
    delta_fixed: AtomicU64,
    done: AtomicBool,
    killed: AtomicBool,
    killed_step: AtomicUsize,
}

/// The sharded BSP executor for one [`MessageProgram`].
pub struct BspEngine<P: MessageProgram>
where
    P::Value: ValueCodec,
{
    program: P,
    layout: ShardLayout,
    shards: Vec<Mutex<ShardState<P::Value>>>,
    mail: Mailboxes<P::Value>,
    store: Mutex<CheckpointStore<P::Value>>,
    /// Snapshot period, copied out of the config to keep the store lock
    /// out of the leader's hot path.
    period: usize,
    superstep: AtomicUsize,
    kill: Mutex<Option<KillSpec>>,
}

impl<P: MessageProgram> BspEngine<P>
where
    P::Value: ValueCodec,
{
    /// A new engine over `capacity` vertices in `shards` shards. Initial
    /// values come from [`saga_algorithms::program::VertexProgram::initial`];
    /// no vertex starts active — call [`reset_all_active`](Self::reset_all_active)
    /// or [`set_active`](Self::set_active) before [`begin`](Self::begin).
    pub fn new(program: P, capacity: usize, shards: usize, config: CheckpointConfig) -> Self {
        let layout = ShardLayout::new(capacity, shards);
        let shard_states = (0..shards)
            .map(|s| {
                let range = layout.range(s);
                let data: Vec<P::Value> = range
                    .clone()
                    .map(|v| program.initial(v as Node, capacity))
                    .collect();
                Mutex::new(ShardState {
                    values: ShardValues::from_vec(range.start, data),
                    active: Vec::new(),
                    next_active: Vec::new(),
                    marks: GenerationMarks::new(range.len()),
                    acc: Vec::new(),
                })
            })
            .collect();
        let period = config.period();
        Self {
            program,
            layout,
            shards: shard_states,
            mail: Mailboxes::new(shards),
            store: Mutex::new(CheckpointStore::new(config)),
            period,
            superstep: AtomicUsize::new(0),
            kill: Mutex::new(None),
        }
    }

    /// The vertex → shard mapping.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// The program being executed.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Number of checkpoints published so far.
    pub fn checkpoints_published(&self) -> usize {
        self.store.lock().published()
    }

    /// Arms a one-shot fault injection for the next run.
    pub fn arm_kill(&mut self, spec: KillSpec) {
        *self.kill.lock() = Some(spec);
    }

    /// Resets every vertex to its initial value and marks all vertices
    /// active — the from-scratch / full-recompute starting state.
    pub fn reset_all_active(&mut self) {
        let capacity = self.layout.capacity();
        for (s, shard) in self.shards.iter().enumerate() {
            let range = self.layout.range(s);
            let mut st = shard.lock();
            for v in range.clone() {
                st.values.set(v, self.program.initial(v as Node, capacity));
            }
            st.active.clear();
            st.active.extend(range.map(|v| v as Node));
            st.next_active.clear();
        }
    }

    /// Replaces shard `s`'s active list with `seeds` (global ids, each
    /// owned by `s`). Values are left as-is — incremental runs resume
    /// from the previous batch's converged state.
    pub fn set_active(&mut self, s: usize, seeds: impl IntoIterator<Item = Node>) {
        let range = self.layout.range(s);
        let mut st = self.shards[s].lock();
        st.active.clear();
        st.active.extend(seeds);
        debug_assert!(st
            .active
            .iter()
            .all(|&v| range.contains(&(v as usize))));
        st.next_active.clear();
    }

    /// Rewinds the superstep counter, discards stale messages, and
    /// publishes the superstep-0 baseline checkpoint. Call after seeding
    /// activity and before [`run`](Self::run).
    pub fn begin(&mut self) {
        self.mail.clear();
        self.superstep.store(0, Ordering::Relaxed);
        self.publish_checkpoint(0);
    }

    /// Runs supersteps to completion on `pool`. Returns `Err(Killed)` if
    /// an armed [`KillSpec`] fired; the caller then restores the last
    /// barrier snapshot with [`recover`](Self::recover) (or
    /// [`recover_from_disk`](Self::recover_from_disk)) and re-runs.
    pub fn run(&self, graph: &dyn GraphTopology, pool: &ThreadPool) -> Result<BspOutcome, Killed> {
        let threads = pool.threads();
        let nshards = self.layout.shards();
        let mode = self.program.gather_mode();
        let ctl = Control {
            barrier: Barrier::new(threads),
            messages: AtomicU64::new(0),
            step_messages: AtomicU64::new(0),
            active_total: AtomicUsize::new(0),
            delta_fixed: AtomicU64::new(0),
            done: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            killed_step: AtomicUsize::new(0),
        };
        // Capture the caller's ambient trace context before fanning out:
        // pool workers are long-lived threads with no context of their
        // own, so each re-installs the request's context for the scope of
        // this run and the per-shard spans join the request's trace tree.
        let trace_ctx = saga_trace::ctx::current();
        pool.run_on_all(|w| {
            let _trace_scope = saga_trace::ctx::scope(trace_ctx);
            let mut bufs: Vec<Vec<(Node, P::Value)>> = (0..nshards).map(|_| Vec::new()).collect();
            let mut neighbors: Vec<(Node, Weight)> = Vec::new();
            loop {
                let step = self.superstep.load(Ordering::Relaxed);
                let _step_span =
                    (w == 0).then(|| saga_trace::span!("bsp-superstep", step = step));
                {
                    let _span = saga_trace::span!("bsp-scatter", worker = w);
                    let mut sent = 0u64;
                    for s in (w..nshards).step_by(threads) {
                        let limit = self.take_kill(step, s, KillPhase::Scatter).map(|_| {
                            ctl.killed.store(true, Ordering::SeqCst);
                            // Half the frontier's messages escape before
                            // the worker "dies".
                            self.shards[s].lock().active.len() / 2
                        });
                        sent += self.scatter_shard(graph, s, limit, &mut bufs, &mut neighbors);
                    }
                    ctl.step_messages.fetch_add(sent, Ordering::Relaxed);
                }
                ctl.barrier.wait();
                {
                    let _span = saga_trace::span!("bsp-gather", worker = w);
                    for s in (w..nshards).step_by(threads) {
                        let limit = self.take_kill(step, s, KillPhase::Gather).map(|_| {
                            ctl.killed.store(true, Ordering::SeqCst);
                            nshards / 2
                        });
                        match mode {
                            GatherMode::Fold => {
                                let (processed, activated) = self.gather_shard_fold(s, limit);
                                metrics::indexed_counter("bsp.shard_messages", s).add(processed);
                                ctl.active_total.fetch_add(activated, Ordering::Relaxed);
                            }
                            GatherMode::Sum => {
                                let (processed, delta) = self.gather_shard_sum(s, limit);
                                metrics::indexed_counter("bsp.shard_messages", s).add(processed);
                                ctl.delta_fixed.fetch_add(delta, Ordering::Relaxed);
                            }
                        }
                    }
                }
                if ctl.barrier.wait() {
                    self.superstep_epilogue(step, &ctl, mode);
                }
                ctl.barrier.wait();
                if ctl.done.load(Ordering::SeqCst) {
                    break;
                }
            }
        });
        if ctl.killed.load(Ordering::SeqCst) {
            return Err(Killed {
                superstep: ctl.killed_step.load(Ordering::SeqCst),
            });
        }
        Ok(BspOutcome {
            supersteps: self.superstep.load(Ordering::Relaxed),
            messages: ctl.messages.load(Ordering::Relaxed),
        })
    }

    /// Restores the latest in-memory checkpoint: all shard values and
    /// active lists, with every in-flight message discarded. Returns the
    /// superstep the next [`run`](Self::run) resumes from.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint was ever published ([`begin`](Self::begin)
    /// always publishes the superstep-0 baseline).
    pub fn recover(&mut self) -> usize {
        let cp = self
            .store
            .lock()
            .latest()
            .cloned()
            .expect("no checkpoint to recover from");
        self.restore(&cp)
    }

    /// Like [`recover`](Self::recover), but reads the newest checkpoint
    /// file from the configured directory — the path a fully restarted
    /// process takes.
    pub fn recover_from_disk(&mut self) -> io::Result<usize> {
        let dir = self
            .store
            .lock()
            .config()
            .dir
            .clone()
            .expect("disk checkpointing not configured");
        let cp = CheckpointStore::<P::Value>::load_latest_from_disk(&dir)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "no checkpoint files on disk")
        })?;
        Ok(self.restore(&cp))
    }

    /// All vertex values in global-id order (shard ranges tile the
    /// universe, so plain concatenation is the identity permutation).
    pub fn values_vec(&self) -> Vec<P::Value> {
        let mut out = Vec::with_capacity(self.layout.capacity());
        for shard in &self.shards {
            out.extend_from_slice(shard.lock().values.as_slice());
        }
        out
    }

    fn restore(&mut self, cp: &Checkpoint<P::Value>) -> usize {
        assert_eq!(
            cp.values.len(),
            self.shards.len(),
            "checkpoint shard count mismatch"
        );
        for (s, shard) in self.shards.iter().enumerate() {
            let mut st = shard.lock();
            st.values.restore(&cp.values[s]);
            st.active.clear();
            st.active.extend_from_slice(&cp.active[s]);
            st.next_active.clear();
        }
        self.mail.clear();
        self.superstep.store(cp.superstep, Ordering::Relaxed);
        cp.superstep
    }

    /// Consumes the armed kill spec iff it names this (step, shard, phase).
    fn take_kill(&self, step: usize, shard: usize, phase: KillPhase) -> Option<KillSpec> {
        let mut kill = self.kill.lock();
        match *kill {
            Some(k) if k.superstep == step && k.shard == shard && k.phase == phase => kill.take(),
            _ => None,
        }
    }

    /// Scatter phase for shard `s`: consume the active list, posting
    /// messages along out-edges (plus in-edges for symmetric-scope
    /// programs on directed graphs). `limit` caps the number of active
    /// vertices processed — the kill simulation's "died mid-phase".
    fn scatter_shard(
        &self,
        graph: &dyn GraphTopology,
        s: usize,
        limit: Option<usize>,
        bufs: &mut [Vec<(Node, P::Value)>],
        neighbors: &mut Vec<(Node, Weight)>,
    ) -> u64 {
        let scope_both = self.program.scope() == EdgeScope::Symmetric && graph.is_directed();
        let need_degree = self.program.gather_mode() == GatherMode::Sum;
        let mut st = self.shards[s].lock();
        let st = &mut *st;
        let take = limit.unwrap_or(st.active.len()).min(st.active.len());
        let mut sent = 0u64;
        for idx in 0..take {
            let v = st.active[idx];
            let value = st.values.get(v as usize);
            // Collect-then-query: buffer the adjacency before touching the
            // graph again (degree query) or the mailboxes — graph callbacks
            // must not re-enter the structure.
            neighbors.clear();
            graph.for_each_out_neighbor(v, &mut |nb, w| neighbors.push((nb, w)));
            if scope_both {
                graph.for_each_in_neighbor(v, &mut |nb, w| neighbors.push((nb, w)));
            }
            if neighbors.is_empty() {
                continue;
            }
            let out_degree = if need_degree { graph.out_degree(v) } else { 0 };
            for &(nb, w) in neighbors.iter() {
                if let Some(msg) = self.program.message(value, w, out_degree) {
                    bufs[self.layout.shard_of(nb as usize)].push((nb, msg));
                    sent += 1;
                }
            }
        }
        st.active.clear();
        for (dst, buf) in bufs.iter_mut().enumerate() {
            self.mail.post(s, dst, buf);
        }
        sent
    }

    /// Fold-mode gather for shard `s`: drain inbound cells in ascending
    /// source-shard order, fold each message with `combine`, and build the
    /// next frontier from significant changes. `limit` caps how many
    /// source cells are drained (kill simulation). Returns
    /// `(messages processed, next frontier size)`.
    fn gather_shard_fold(&self, s: usize, limit: Option<usize>) -> (u64, usize) {
        let nshards = self.layout.shards();
        let base = self.layout.range(s).start;
        let drain = limit.unwrap_or(nshards).min(nshards);
        let mut st = self.shards[s].lock();
        let st = &mut *st;
        st.marks.next_generation();
        st.next_active.clear();
        let mut processed = 0u64;
        for src in 0..drain {
            for (v, msg) in self.mail.take(src, s) {
                processed += 1;
                let old = st.values.get(v as usize);
                let new = self.program.combine(old, msg);
                if self.program.significant_change(old, new) {
                    st.values.set(v as usize, new);
                    if st.marks.try_mark(v as usize - base) {
                        st.next_active.push(v);
                    }
                }
            }
        }
        std::mem::swap(&mut st.active, &mut st.next_active);
        (processed, st.active.len())
    }

    /// Sum-mode gather for shard `s`: accumulate all inbound messages into
    /// the per-vertex accumulator (fixed source-shard order — float sums
    /// stay deterministic), then apply `finish` to every local vertex.
    /// Every vertex stays active. Returns `(messages processed, Σ
    /// delta_magnitude in 1e-12 fixed point)`. A `limit` kill abandons the
    /// shard before the finish sweep, leaving values untouched.
    fn gather_shard_sum(&self, s: usize, limit: Option<usize>) -> (u64, u64) {
        let nshards = self.layout.shards();
        let range = self.layout.range(s);
        let base = range.start;
        let mut st = self.shards[s].lock();
        let st = &mut *st;
        st.acc.clear();
        st.acc.resize(range.len(), self.program.zero());
        let mut processed = 0u64;
        let drain = limit.unwrap_or(nshards).min(nshards);
        for src in 0..drain {
            for (v, msg) in self.mail.take(src, s) {
                let i = v as usize - base;
                st.acc[i] = self.program.add(st.acc[i], msg);
                processed += 1;
            }
        }
        if limit.is_some() {
            return (processed, 0);
        }
        let mut delta = 0u64;
        for i in 0..range.len() {
            let v = base + i;
            let old = st.values.get(v);
            let new = self.program.finish(st.acc[i]);
            if new != old {
                st.values.set(v, new);
                delta += (self.program.delta_magnitude(old, new) * 1e12).round() as u64;
            }
        }
        st.active.clear();
        st.active.extend(range.map(|v| v as Node));
        (processed, delta)
    }

    /// Leader-only work between the gather barrier and the release
    /// barrier: metrics, termination, superstep advance, checkpointing.
    fn superstep_epilogue(&self, step: usize, ctl: &Control, mode: GatherMode) {
        let sent = ctl.step_messages.swap(0, Ordering::Relaxed);
        ctl.messages.fetch_add(sent, Ordering::Relaxed);
        metrics::histogram("bsp.superstep_messages").record(sent);
        metrics::counter("bsp.supersteps").incr();
        let active = ctl.active_total.swap(0, Ordering::Relaxed);
        let delta = ctl.delta_fixed.swap(0, Ordering::Relaxed);
        if ctl.killed.load(Ordering::SeqCst) {
            // The superstep's state is poisoned: don't advance, don't
            // checkpoint — the caller recovers from the last barrier.
            ctl.killed_step.store(step, Ordering::SeqCst);
            ctl.done.store(true, Ordering::SeqCst);
            return;
        }
        let next = step + 1;
        self.superstep.store(next, Ordering::Relaxed);
        let done = match mode {
            GatherMode::Fold => active == 0,
            GatherMode::Sum => {
                (delta as f64 / 1e12) < self.program.sum_tolerance()
                    || next >= self.program.max_supersteps()
            }
        };
        if done {
            ctl.done.store(true, Ordering::SeqCst);
        } else if next.is_multiple_of(self.period) {
            self.publish_checkpoint(next);
        }
    }

    /// Snapshots every shard (sequential walk — callers hold no shard
    /// locks here) and publishes to the store.
    fn publish_checkpoint(&self, step: usize) {
        let mut values = Vec::with_capacity(self.shards.len());
        let mut active = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let st = shard.lock();
            values.push(st.values.as_slice().to_vec());
            active.push(st.active.clone());
        }
        let cp = Checkpoint {
            superstep: step,
            values,
            active,
        };
        if let Err(e) = self.store.lock().publish(cp) {
            saga_trace::progress!("bsp: checkpoint {step} not mirrored to disk: {e}");
        }
    }
}
