//! Superstep-boundary checkpoints.
//!
//! A checkpoint is taken only at the gather-end barrier, where the
//! invariant "all mailboxes empty, all shard states consistent" holds by
//! construction — so a checkpoint is just the per-shard property arrays
//! plus the per-shard active lists, and recovery is a restore + replay
//! with no message-replay machinery. The store always keeps the latest
//! checkpoint in memory; configuring a directory additionally persists
//! each checkpoint to its own file so a restarted *process* can recover
//! too (see `recover_from_disk` on the engine and the EXPERIMENTS.md
//! kill-and-recover recipe).
//!
//! The on-disk format is deliberately dumb: little-endian `u64` words
//! (counts, vertex ids, and values via [`ValueCodec`] bit-casts). It is a
//! crash artifact, not an interchange format.

use saga_graph::Node;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Bit-level serialization of a property value into a `u64` word.
pub trait ValueCodec: Copy {
    /// The value's bits, widened to 64.
    fn to_word(self) -> u64;
    /// Inverse of [`to_word`](Self::to_word).
    fn from_word(word: u64) -> Self;
}

impl ValueCodec for u32 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word as u32
    }
}

impl ValueCodec for f32 {
    fn to_word(self) -> u64 {
        self.to_bits() as u64
    }
    fn from_word(word: u64) -> Self {
        f32::from_bits(word as u32)
    }
}

impl ValueCodec for f64 {
    fn to_word(self) -> u64 {
        self.to_bits()
    }
    fn from_word(word: u64) -> Self {
        f64::from_bits(word)
    }
}

/// Checkpointing policy.
#[derive(Debug, Clone, Default)]
pub struct CheckpointConfig {
    /// Snapshot every `interval` supersteps (0 and 1 both mean "every
    /// superstep"); the superstep-0 baseline is always taken.
    pub interval: usize,
    /// When set, every checkpoint is also written to
    /// `dir/ckpt-<superstep>.bin`.
    pub dir: Option<PathBuf>,
}

impl CheckpointConfig {
    /// The effective snapshot period (≥ 1).
    pub fn period(&self) -> usize {
        self.interval.max(1)
    }
}

/// One superstep-boundary snapshot: the state a run can restart from.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<V> {
    /// The superstep about to execute when this snapshot was taken.
    pub superstep: usize,
    /// Per-shard property values, shard-local order.
    pub values: Vec<Vec<V>>,
    /// Per-shard active vertex lists (global ids).
    pub active: Vec<Vec<Node>>,
}

/// Holder of the latest checkpoint, with optional on-disk mirroring.
#[derive(Debug)]
pub struct CheckpointStore<V> {
    config: CheckpointConfig,
    latest: Option<Checkpoint<V>>,
    /// Checkpoints published over the store's lifetime (diagnostics).
    published: usize,
}

impl<V: ValueCodec> CheckpointStore<V> {
    /// An empty store with the given policy.
    pub fn new(config: CheckpointConfig) -> Self {
        Self {
            config,
            latest: None,
            published: 0,
        }
    }

    /// The checkpointing policy.
    pub fn config(&self) -> &CheckpointConfig {
        &self.config
    }

    /// Number of checkpoints published so far.
    pub fn published(&self) -> usize {
        self.published
    }

    /// The most recent checkpoint, if any.
    pub fn latest(&self) -> Option<&Checkpoint<V>> {
        self.latest.as_ref()
    }

    /// Installs `checkpoint` as the latest and mirrors it to disk when a
    /// directory is configured. Disk failure is reported but does not
    /// invalidate the in-memory copy.
    pub fn publish(&mut self, checkpoint: Checkpoint<V>) -> io::Result<()> {
        let result = match &self.config.dir {
            Some(dir) => write_checkpoint(dir, &checkpoint),
            None => Ok(()),
        };
        self.latest = Some(checkpoint);
        self.published += 1;
        result
    }

    /// Loads the newest *valid* checkpoint file from `dir` (a process
    /// that died and restarted has no in-memory copy). Returns `None`
    /// when the directory holds no usable checkpoint files.
    ///
    /// Candidates are tried newest-first. A corrupt or truncated file —
    /// e.g. the newest checkpoint caught mid-write by the crash the
    /// recovery is for — is **deleted** and recovery falls back to the
    /// next-newest, instead of failing the whole restart on a file that
    /// can never become readable. Deleting matters: a later restart must
    /// not rediscover the same husk, and a subsequent checkpoint at the
    /// same superstep must not rename onto a poisoned path's stale
    /// content expectations. Genuine I/O errors (permissions, device)
    /// still propagate — those are environmental, not artifacts of the
    /// crash.
    pub fn load_latest_from_disk(dir: &Path) -> io::Result<Option<Checkpoint<V>>> {
        let mut candidates: Vec<(usize, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if let Some(step) = parse_checkpoint_name(&path) {
                candidates.push((step, path));
            }
        }
        candidates.sort_by_key(|&(step, _)| std::cmp::Reverse(step));
        for (_, path) in candidates {
            match read_checkpoint(&path) {
                Ok(cp) => return Ok(Some(cp)),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                    ) =>
                {
                    let _ = std::fs::remove_file(&path);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }
}

fn parse_checkpoint_name(path: &Path) -> Option<usize> {
    let name = path.file_name()?.to_str()?;
    let step = name.strip_prefix("ckpt-")?.strip_suffix(".bin")?;
    step.parse().ok()
}

fn write_checkpoint<V: ValueCodec>(dir: &Path, cp: &Checkpoint<V>) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut words: Vec<u64> = Vec::new();
    words.push(cp.superstep as u64);
    words.push(cp.values.len() as u64);
    for (values, active) in cp.values.iter().zip(&cp.active) {
        words.push(values.len() as u64);
        words.extend(values.iter().map(|v| v.to_word()));
        words.push(active.len() as u64);
        words.extend(active.iter().map(|&v| v as u64));
    }
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    // Write to a temp name then rename, so a crash mid-write never leaves
    // a truncated file that parses as the newest checkpoint.
    let final_path = dir.join(format!("ckpt-{}.bin", cp.superstep));
    let tmp_path = dir.join(format!(".ckpt-{}.tmp", cp.superstep));
    let mut f = std::fs::File::create(&tmp_path)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp_path, &final_path)
}

/// Little-endian `u64` cursor over a checkpoint file's bytes, with the
/// bookkeeping corruption-hardening needs: how many whole words remain.
struct WordReader<'a> {
    bytes: &'a [u8],
    cursor: usize,
}

impl WordReader<'_> {
    fn next(&mut self) -> io::Result<u64> {
        let end = self.cursor + 8;
        let chunk = self.bytes.get(self.cursor..end).ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "truncated checkpoint")
        })?;
        self.cursor = end;
        Ok(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
    }

    /// Whole words left — the upper bound any claimed count must respect.
    fn remaining_words(&self) -> usize {
        self.bytes.len().saturating_sub(self.cursor) / 8
    }

    /// Validates a length prefix against the bytes actually present, so a
    /// corrupt count (bit-flipped to, say, 2⁶⁰) errors instead of driving
    /// a `Vec::with_capacity` allocation of that size.
    fn claimed_len(&self, raw: u64, what: &str) -> io::Result<usize> {
        let n = usize::try_from(raw).unwrap_or(usize::MAX);
        if n > self.remaining_words() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("implausible {what} count {raw} with {} words left", self.remaining_words()),
            ));
        }
        Ok(n)
    }
}

fn read_checkpoint<V: ValueCodec>(path: &Path) -> io::Result<Checkpoint<V>> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let mut r = WordReader { bytes: &bytes, cursor: 0 };
    let superstep = r.next()? as usize;
    let raw_shards = r.next()?;
    let shards = r.claimed_len(raw_shards, "shard")?;
    let mut values = Vec::with_capacity(shards);
    let mut active = Vec::with_capacity(shards);
    for _ in 0..shards {
        let raw_n = r.next()?;
        let n = r.claimed_len(raw_n, "value")?;
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(V::from_word(r.next()?));
        }
        values.push(vals);
        let raw_a = r.next()?;
        let a = r.claimed_len(raw_a, "active-list")?;
        let mut act = Vec::with_capacity(a);
        for _ in 0..a {
            act.push(r.next()? as Node);
        }
        active.push(act);
    }
    if r.cursor != bytes.len() {
        // Trailing bytes mean the length prefixes and the payload
        // disagree — the file is corrupt even though every read landed.
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} trailing bytes after checkpoint payload", bytes.len() - r.cursor),
        ));
    }
    Ok(Checkpoint {
        superstep,
        values,
        active,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint<f32> {
        Checkpoint {
            superstep: 3,
            values: vec![vec![0.5, f32::INFINITY], vec![-1.25]],
            active: vec![vec![1], vec![2]],
        }
    }

    #[test]
    fn value_codec_roundtrips_bitwise() {
        for v in [0u32, 7, u32::MAX] {
            assert_eq!(u32::from_word(v.to_word()), v);
        }
        for v in [0.0f32, -0.0, 1.5, f32::INFINITY, f32::NEG_INFINITY] {
            assert_eq!(f32::from_word(v.to_word()).to_bits(), v.to_bits());
        }
        for v in [0.0f64, 1e-300, -5.5, f64::INFINITY] {
            assert_eq!(f64::from_word(v.to_word()).to_bits(), v.to_bits());
        }
        // NaN payloads survive too — "bitwise identical" means bitwise.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        assert_eq!(f64::from_word(nan.to_word()).to_bits(), nan.to_bits());
    }

    #[test]
    fn in_memory_store_keeps_the_latest() {
        let mut store: CheckpointStore<f32> = CheckpointStore::new(CheckpointConfig::default());
        assert!(store.latest().is_none());
        assert_eq!(store.config().period(), 1, "interval 0 means every superstep");
        store.publish(sample()).unwrap();
        let mut second = sample();
        second.superstep = 5;
        store.publish(second.clone()).unwrap();
        assert_eq!(store.latest(), Some(&second));
        assert_eq!(store.published(), 2);
    }

    // Disk round-trip coverage lives in `tests/bsp.rs`
    // (`CARGO_TARGET_TMPDIR` is only provided to integration targets).
}
