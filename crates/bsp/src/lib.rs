//! Sharded bulk-synchronous-parallel (BSP) execution for SAGA-Bench.
//!
//! The serial compute path (`saga-algorithms`) runs each vertex program as
//! a pull-based sweep over one shared property array. This crate runs the
//! *same* programs owner-computes style: the vertex universe is cut into
//! contiguous shards ([`layout::ShardLayout`]), each shard keeps its
//! property values in a private dense array
//! ([`saga_graph::properties::ShardValues`]), and supersteps alternate a
//! scatter phase (push-form messages into per-shard-pair mailboxes,
//! [`mailbox::Mailboxes`]) with a gather phase (fold or sum the inbox into
//! shard state) separated by a leader-electing barrier
//! ([`saga_utils::barrier::Barrier`]).
//!
//! At every gather-end barrier the mailboxes are empty by construction,
//! so the engine snapshots shard state there
//! ([`checkpoint::CheckpointStore`], optionally mirrored to disk). A
//! worker killed mid-superstep ([`engine::KillSpec`]) is restarted from
//! the last barrier and — because every mailbox cell has one writer and
//! one reader per superstep, drained in fixed order — finishes with
//! **bitwise-identical** results. `saga-check` asserts both properties:
//! sharded-vs-serial agreement and kill-and-recover equality.
//!
//! [`ShardedState`] is the driver-facing wrapper mirroring
//! [`saga_algorithms::AlgorithmState`]: it picks the engine for an
//! [`AlgorithmKind`], routes per-batch seed sets to their shards with the
//! radix [`Partitioner`], and maps BSP outcomes back onto
//! [`ComputeOutcome`].

pub mod checkpoint;
pub mod engine;
pub mod layout;
pub mod mailbox;

pub use checkpoint::CheckpointConfig;
pub use engine::{BspOutcome, KillPhase, KillSpec, Killed};

use crate::checkpoint::ValueCodec;
use crate::engine::BspEngine;
use crate::layout::ShardLayout;
use saga_algorithms::message::MessageProgram;
use saga_algorithms::{
    bfs::BfsProgram, cc::CcProgram, mc::McProgram, pr::PrProgram, sssp::SsspProgram,
    sswp::SswpProgram,
};
use saga_algorithms::{AlgorithmKind, AlgorithmParams, ComputeModelKind, ComputeOutcome, VertexValues};
use saga_graph::{GraphTopology, Node};
use saga_utils::parallel::ThreadPool;
use saga_utils::partition::Partitioner;

enum Inner {
    Bfs(BspEngine<BfsProgram>),
    Cc(BspEngine<CcProgram>),
    Mc(BspEngine<McProgram>),
    Pr(BspEngine<PrProgram>),
    Sssp(BspEngine<SsspProgram>),
    Sswp(BspEngine<SswpProgram>),
}

macro_rules! with_engine {
    ($inner:expr, $e:ident => $body:expr) => {
        match $inner {
            Inner::Bfs($e) => $body,
            Inner::Cc($e) => $body,
            Inner::Mc($e) => $body,
            Inner::Pr($e) => $body,
            Inner::Sssp($e) => $body,
            Inner::Sswp($e) => $body,
        }
    };
}

/// Sharded counterpart of [`saga_algorithms::AlgorithmState`]: the same
/// algorithm kinds and parameters, executed by the BSP engine.
pub struct ShardedState {
    kind: AlgorithmKind,
    model: ComputeModelKind,
    capacity: usize,
    shards: usize,
    /// Radix router for per-batch seed sets (reused across batches, so
    /// its internal index buffers amortize like the ingest partitioner's).
    partitioner: Partitioner,
    recoveries: usize,
    inner: Inner,
}

impl std::fmt::Debug for ShardedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedState")
            .field("kind", &self.kind)
            .field("model", &self.model)
            .field("capacity", &self.capacity)
            .field("shards", &self.shards)
            .finish()
    }
}

impl ShardedState {
    /// Creates a sharded state over a fixed `capacity`-vertex universe cut
    /// into `shards` shards, with the same program construction as
    /// [`saga_algorithms::AlgorithmState::new`].
    pub fn new(
        kind: AlgorithmKind,
        model: ComputeModelKind,
        capacity: usize,
        shards: usize,
        params: AlgorithmParams,
        checkpoints: CheckpointConfig,
    ) -> Self {
        let inner = match kind {
            AlgorithmKind::Bfs => Inner::Bfs(BspEngine::new(
                BfsProgram::new(params.root),
                capacity,
                shards,
                checkpoints,
            )),
            AlgorithmKind::Cc => Inner::Cc(BspEngine::new(
                CcProgram::new(),
                capacity,
                shards,
                checkpoints,
            )),
            AlgorithmKind::Mc => Inner::Mc(BspEngine::new(
                McProgram::new(),
                capacity,
                shards,
                checkpoints,
            )),
            AlgorithmKind::PageRank => Inner::Pr(BspEngine::new(
                PrProgram::new(capacity)
                    .with_epsilon(params.pr_epsilon)
                    .with_fs_tolerance(params.pr_fs_tolerance),
                capacity,
                shards,
                checkpoints,
            )),
            AlgorithmKind::Sssp => Inner::Sssp(BspEngine::new(
                SsspProgram::new(params.root).with_delta(params.sssp_delta),
                capacity,
                shards,
                checkpoints,
            )),
            AlgorithmKind::Sswp => Inner::Sswp(BspEngine::new(
                SswpProgram::new(params.root),
                capacity,
                shards,
                checkpoints,
            )),
        };
        Self {
            kind,
            model,
            capacity,
            shards,
            partitioner: Partitioner::new(),
            recoveries: 0,
            inner,
        }
    }

    /// Which algorithm this state runs.
    pub fn kind(&self) -> AlgorithmKind {
        self.kind
    }

    /// Which compute model this state uses.
    pub fn model(&self) -> ComputeModelKind {
        self.model
    }

    /// Number of vertices in the universe.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// How many kill-and-recover cycles have happened so far.
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// Whether batch sources' existing out-neighbors must be seeded as
    /// affected (mirrors [`saga_algorithms::AlgorithmState`]'s tracker
    /// wiring; the answer comes from the same program trait).
    pub fn affects_source_neighborhood(&self) -> bool {
        use saga_algorithms::program::VertexProgram;
        with_engine!(&self.inner, e => e.program().affects_source_neighborhood())
    }

    /// Whether the program reduces over both edge directions
    /// ([`saga_algorithms::program::EdgeScope::Symmetric`], i.e. CC).
    pub fn symmetric_scope(&self) -> bool {
        use saga_algorithms::program::{EdgeScope, VertexProgram};
        with_engine!(&self.inner, e => e.program().scope() == EdgeScope::Symmetric)
    }

    /// Checkpoints published across all batches so far.
    pub fn checkpoints_published(&self) -> usize {
        with_engine!(&self.inner, e => e.checkpoints_published())
    }

    /// Arms a one-shot simulated worker kill for the next batch's run.
    pub fn inject_kill(&mut self, spec: KillSpec) {
        with_engine!(&mut self.inner, e => e.arm_kill(spec));
    }

    /// Runs the compute phase for one update batch — the sharded
    /// counterpart of [`saga_algorithms::AlgorithmState::perform_alg`].
    ///
    /// Incremental fold-mode batches without deletions seed the frontier
    /// from `affected` (the tracker marks both endpoints of every insert,
    /// so push-form propagation from the seeds covers every new edge).
    /// From-scratch batches, PageRank (whole-graph power iteration), and
    /// any batch with deletions (monotone fold state cannot be repaired
    /// by pushing) recompute from initial values with all vertices
    /// active; the latter case reports `fs_fallback`.
    ///
    /// A run interrupted by an armed [`KillSpec`] is recovered from the
    /// latest superstep checkpoint and re-run to completion — the outcome
    /// then counts the replayed supersteps too.
    pub fn perform_batch(
        &mut self,
        graph: &dyn GraphTopology,
        affected: &[Node],
        had_deletes: bool,
        pool: &ThreadPool,
    ) -> ComputeOutcome {
        let full = self.model == ComputeModelKind::FromScratch
            || self.kind == AlgorithmKind::PageRank
            || had_deletes;
        if !full {
            let layout = ShardLayout::new(self.capacity, self.shards);
            self.partitioner
                .partition(pool, affected.len(), self.shards, |i| {
                    layout.shard_of(affected[i] as usize)
                });
        }
        let partitioner = &self.partitioner;
        let recoveries = &mut self.recoveries;
        let outcome = with_engine!(
            &mut self.inner,
            e => run_engine(e, graph, pool, full, affected, partitioner, recoveries)
        );
        ComputeOutcome {
            iterations: outcome.supersteps,
            recomputed: outcome.messages as usize,
            triggered: 0,
            repaired: 0,
            fs_fallback: had_deletes
                && self.model == ComputeModelKind::Incremental
                && self.kind != AlgorithmKind::PageRank,
        }
    }

    /// Current vertex values in global-id order.
    pub fn values(&self) -> VertexValues {
        match &self.inner {
            Inner::Bfs(e) => VertexValues::U32(e.values_vec()),
            Inner::Cc(e) => VertexValues::U32(e.values_vec()),
            Inner::Mc(e) => VertexValues::U32(e.values_vec()),
            Inner::Pr(e) => VertexValues::F64(e.values_vec()),
            Inner::Sssp(e) => VertexValues::F32(e.values_vec()),
            Inner::Sswp(e) => VertexValues::F32(e.values_vec()),
        }
    }
}

/// Seeds, runs, and (if a kill fires) recovers one engine to completion.
fn run_engine<P: MessageProgram>(
    engine: &mut BspEngine<P>,
    graph: &dyn GraphTopology,
    pool: &ThreadPool,
    full: bool,
    seeds: &[Node],
    partitioner: &Partitioner,
    recoveries: &mut usize,
) -> BspOutcome
where
    P::Value: ValueCodec,
{
    if full {
        engine.reset_all_active();
    } else {
        let shards = engine.layout().shards();
        for s in 0..shards {
            engine.set_active(s, partitioner.bucket(s).iter().map(|&i| seeds[i as usize]));
        }
    }
    engine.begin();
    match engine.run(graph, pool) {
        Ok(outcome) => outcome,
        Err(_killed) => {
            *recoveries += 1;
            engine.recover();
            engine
                .run(graph, pool)
                .expect("kill specs are one-shot: the recovered run cannot be killed again")
        }
    }
}
