//! Shard layout: the static mapping between global vertex ids and shards.
//!
//! The vertex universe `0..capacity` is cut into `shards` contiguous
//! ranges using the same floor-division split the thread pool's static
//! schedule uses, so shard boundaries line up with the chunk boundaries
//! the rest of the suite already reasons about. Contiguity is what makes a
//! shard's property storage a plain dense slice
//! ([`saga_graph::properties::ShardValues`]) instead of a hash map.

use std::ops::Range;

/// The owner-computes partition of the vertex space.
///
/// # Examples
///
/// ```
/// use saga_bsp::layout::ShardLayout;
///
/// let l = ShardLayout::new(10, 3);
/// assert_eq!(l.range(0), 0..3);
/// assert_eq!(l.range(1), 3..6);
/// assert_eq!(l.range(2), 6..10);
/// assert_eq!(l.shard_of(5), 1);
/// assert_eq!(l.shard_of(9), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayout {
    capacity: usize,
    shards: usize,
}

impl ShardLayout {
    /// A layout of `capacity` vertices over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(shards > 0, "layout needs at least one shard");
        Self { capacity, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of vertices.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The contiguous global-id range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        debug_assert!(s < self.shards);
        (self.capacity * s / self.shards)..(self.capacity * (s + 1) / self.shards)
    }

    /// The shard owning global vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is out of range.
    #[inline]
    pub fn shard_of(&self, v: usize) -> usize {
        debug_assert!(v < self.capacity, "vertex {v} outside universe {}", self.capacity);
        // The multiplicative guess is exact up to integer-floor rounding of
        // the range bounds; the fixup walks at most one shard.
        let mut s = (v * self.shards / self.capacity).min(self.shards - 1);
        while v < self.range(s).start {
            s -= 1;
        }
        while v >= self.range(s).end {
            s += 1;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_universe_exactly() {
        for capacity in [0usize, 1, 2, 5, 64, 1000, 1021] {
            for shards in [1usize, 2, 3, 7, 16] {
                let l = ShardLayout::new(capacity, shards);
                let mut next = 0;
                for s in 0..shards {
                    let r = l.range(s);
                    assert_eq!(r.start, next, "cap={capacity} shards={shards} s={s}");
                    next = r.end;
                }
                assert_eq!(next, capacity);
            }
        }
    }

    #[test]
    fn shard_of_agrees_with_the_ranges() {
        for capacity in [1usize, 2, 5, 64, 1000, 1021] {
            for shards in [1usize, 2, 3, 7, 16] {
                let l = ShardLayout::new(capacity, shards);
                for v in 0..capacity {
                    let s = l.shard_of(v);
                    assert!(
                        l.range(s).contains(&v),
                        "cap={capacity} shards={shards} v={v} -> {s}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardLayout::new(4, 0);
    }
}
