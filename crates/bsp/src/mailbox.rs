//! Inter-shard message batches.
//!
//! One mailbox cell per (source shard, destination shard) pair. During the
//! scatter phase, cell `(s, d)` is appended to **only** by the worker that
//! owns shard `s`; during the gather phase it is drained **only** by the
//! worker that owns shard `d`, in ascending source-shard order. The
//! superstep barrier separates the two phases, so every cell has exactly
//! one writer and one reader per superstep and the drain order is a pure
//! function of the layout — the determinism the checkpoint/recovery
//! guarantee rests on (see DESIGN.md §12).
//!
//! The cells still sit behind the sync facade's `Mutex` (cheap,
//! uncontended in the phase discipline above) so the type stays safe
//! without `unsafe` aliasing arguments.

use saga_graph::Node;
use saga_utils::sync::Mutex;

/// The `shards × shards` grid of message batches.
#[derive(Debug)]
pub struct Mailboxes<V> {
    shards: usize,
    cells: Vec<Mutex<Vec<(Node, V)>>>,
}

impl<V: Copy + Send> Mailboxes<V> {
    /// An empty grid for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            cells: (0..shards * shards).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    #[inline]
    fn index(&self, src_shard: usize, dst_shard: usize) -> usize {
        debug_assert!(src_shard < self.shards && dst_shard < self.shards);
        src_shard * self.shards + dst_shard
    }

    /// Appends `batch` to cell `(src_shard, dst_shard)` and clears the
    /// buffer for reuse. Caller must own `src_shard` (scatter phase).
    pub fn post(&self, src_shard: usize, dst_shard: usize, batch: &mut Vec<(Node, V)>) {
        if batch.is_empty() {
            return;
        }
        self.cells[self.index(src_shard, dst_shard)]
            .lock()
            .append(batch);
    }

    /// Takes the whole content of cell `(src_shard, dst_shard)`, leaving it
    /// empty. Caller must own `dst_shard` (gather phase).
    pub fn take(&self, src_shard: usize, dst_shard: usize) -> Vec<(Node, V)> {
        std::mem::take(&mut *self.cells[self.index(src_shard, dst_shard)].lock())
    }

    /// Empties every cell — recovery discards all in-flight messages (the
    /// checkpoint boundary is message-free by construction).
    pub fn clear(&self) {
        for cell in &self.cells {
            cell.lock().clear();
        }
    }

    /// Total queued messages (test/diagnostic helper).
    pub fn queued(&self) -> usize {
        self.cells.iter().map(|c| c.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_take_roundtrip_preserves_order() {
        let m: Mailboxes<u32> = Mailboxes::new(2);
        let mut buf = vec![(4u32, 1u32), (5, 2)];
        m.post(0, 1, &mut buf);
        assert!(buf.is_empty(), "post recycles the buffer");
        buf.push((6, 3));
        m.post(0, 1, &mut buf);
        assert_eq!(m.queued(), 3);
        assert_eq!(m.take(0, 1), vec![(4, 1), (5, 2), (6, 3)]);
        assert_eq!(m.take(0, 1), vec![], "take drains");
        assert_eq!(m.queued(), 0);
    }

    #[test]
    fn cells_are_independent_and_clear_empties_all() {
        let m: Mailboxes<f32> = Mailboxes::new(3);
        m.post(0, 2, &mut vec![(1, 0.5)]);
        m.post(2, 0, &mut vec![(2, 1.5)]);
        assert_eq!(m.take(0, 0), vec![]);
        assert_eq!(m.queued(), 2);
        m.clear();
        assert_eq!(m.queued(), 0);
        assert_eq!(m.take(0, 2), vec![]);
    }
}
