//! End-to-end checks for the sharded BSP layer: serial-oracle agreement,
//! kill-and-recover determinism, and the on-disk checkpoint path.

use saga_algorithms::bfs::BfsProgram;
use saga_bsp::checkpoint::{Checkpoint, CheckpointConfig, CheckpointStore};
use saga_bsp::engine::BspEngine;
use saga_bsp::{KillPhase, KillSpec, ShardedState};
use saga_algorithms::{
    AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind, VertexValues,
};
use saga_graph::{build_graph, DataStructureKind, DynamicGraph, Edge};
use saga_utils::parallel::ThreadPool;
use std::path::PathBuf;

/// A deterministic pseudo-random directed edge list with weights in
/// (0, 1]; dense enough that BFS/CC reach most vertices from the root.
fn sample_edges(n: usize, edges: usize, seed: u64) -> Vec<Edge> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64* — good enough for test-graph shapes.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    (0..edges)
        .map(|_| {
            let src = (next() % n as u64) as u32;
            let dst = (next() % n as u64) as u32;
            let weight = ((next() % 1000) + 1) as f32 / 1000.0;
            Edge::new(src, dst, weight)
        })
        .collect()
}

fn build_loaded(n: usize, edges: &[Edge], pool: &ThreadPool) -> Box<dyn DynamicGraph> {
    let graph = build_graph(DataStructureKind::AdjacencyShared, n, true, 1);
    graph.update_batch(edges, pool);
    graph
}

fn params() -> AlgorithmParams {
    // Tight PR tolerances: the serial in-place sweep and the BSP Jacobi
    // iteration only agree at convergence, not per-iteration.
    AlgorithmParams {
        pr_fs_tolerance: 1e-10,
        pr_epsilon: 1e-12,
        ..AlgorithmParams::default()
    }
}

fn assert_values_close(kind: AlgorithmKind, sharded: &VertexValues, serial: &VertexValues) {
    match (sharded, serial) {
        (VertexValues::U32(a), VertexValues::U32(b)) => assert_eq!(a, b, "{kind:?}"),
        (VertexValues::F32(a), VertexValues::F32(b)) => {
            assert_eq!(a.len(), b.len(), "{kind:?}");
            for (v, (x, y)) in a.iter().zip(b).enumerate() {
                assert!(
                    x == y || (x - y).abs() <= 1e-5,
                    "{kind:?} vertex {v}: sharded {x} vs serial {y}"
                );
            }
        }
        (VertexValues::F64(a), VertexValues::F64(b)) => {
            assert_eq!(a.len(), b.len(), "{kind:?}");
            for (v, (x, y)) in a.iter().zip(b).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-8,
                    "{kind:?} vertex {v}: sharded {x} vs serial {y}"
                );
            }
        }
        _ => panic!("{kind:?}: value type mismatch"),
    }
}

#[test]
fn sharded_fs_matches_serial_oracle_on_all_algorithms() {
    let pool = ThreadPool::new(4);
    let n = 120;
    let edges = sample_edges(n, 700, 0xBEEF);
    let graph = build_loaded(n, &edges, &pool);
    for kind in AlgorithmKind::ALL {
        let mut serial =
            AlgorithmState::new(kind, ComputeModelKind::FromScratch, n, params());
        serial.perform_alg(graph.as_ref(), &[], &[], &pool);
        let mut sharded = ShardedState::new(
            kind,
            ComputeModelKind::FromScratch,
            n,
            5,
            params(),
            CheckpointConfig::default(),
        );
        sharded.perform_batch(graph.as_ref(), &[], false, &pool);
        assert_values_close(kind, &sharded.values(), &serial.values());
    }
}

#[test]
fn sharded_incremental_tracks_serial_across_batches() {
    let pool = ThreadPool::new(3);
    let n = 100;
    let all = sample_edges(n, 600, 0xFEED);
    for kind in AlgorithmKind::ALL {
        let graph = build_graph(DataStructureKind::AdjacencyShared, n, true, 1);
        let mut tracker = saga_algorithms::AffectedTracker::new(n);
        let mut serial =
            AlgorithmState::new(kind, ComputeModelKind::Incremental, n, params());
        let mut sharded = ShardedState::new(
            kind,
            ComputeModelKind::Incremental,
            n,
            4,
            params(),
            CheckpointConfig::default(),
        );
        for batch in all.chunks(150) {
            graph.update_batch(batch, &pool);
            let impact = tracker.process_mixed_batch(
                graph.as_ref(),
                batch,
                &[],
                serial.affects_source_neighborhood(),
                false,
                &pool,
            );
            serial.perform_alg(graph.as_ref(), &impact.affected, &impact.new_vertices, &pool);
            sharded.perform_batch(graph.as_ref(), &impact.affected, false, &pool);
            assert_values_close(kind, &sharded.values(), &serial.values());
        }
    }
}

#[test]
fn kill_and_recover_is_bitwise_identical() {
    let pool = ThreadPool::new(4);
    let n = 150;
    let edges = sample_edges(n, 900, 0xC0FFEE);
    let graph = build_loaded(n, &edges, &pool);
    for kind in AlgorithmKind::ALL {
        for phase in [KillPhase::Scatter, KillPhase::Gather] {
            let make = || {
                ShardedState::new(
                    kind,
                    ComputeModelKind::FromScratch,
                    n,
                    5,
                    params(),
                    CheckpointConfig::default(),
                )
            };
            let mut baseline = make();
            baseline.perform_batch(graph.as_ref(), &[], false, &pool);
            let mut victim = make();
            victim.inject_kill(KillSpec {
                superstep: 1,
                shard: 2,
                phase,
            });
            victim.perform_batch(graph.as_ref(), &[], false, &pool);
            assert_eq!(victim.recoveries(), 1, "{kind:?}/{phase:?}: kill must fire");
            // Bitwise: recovery restores the last barrier snapshot and
            // replays, so even float values must match exactly.
            assert_eq!(
                victim.values(),
                baseline.values(),
                "{kind:?}/{phase:?}: recovered run diverged"
            );
        }
    }
}

#[test]
fn disk_checkpoints_roundtrip_and_pick_the_newest() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bsp-ckpt-roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        std::fs::create_dir_all(&dir).is_ok()
            && CheckpointStore::<f64>::load_latest_from_disk(&dir)
                .unwrap()
                .is_none(),
        "empty dir loads None"
    );
    let mut store: CheckpointStore<f64> = CheckpointStore::new(CheckpointConfig {
        interval: 1,
        dir: Some(dir.clone()),
    });
    let older = Checkpoint {
        superstep: 3,
        values: vec![vec![0.25, f64::NEG_INFINITY], vec![1e-300]],
        active: vec![vec![0, 1], vec![]],
    };
    let newer = Checkpoint {
        superstep: 12,
        values: vec![vec![-0.5, 2.0], vec![f64::INFINITY]],
        active: vec![vec![], vec![2]],
    };
    // Publish out of order: newest-by-superstep must win, not last-written.
    store.publish(newer.clone()).unwrap();
    store.publish(older).unwrap();
    let loaded = CheckpointStore::<f64>::load_latest_from_disk(&dir)
        .unwrap()
        .expect("two files on disk");
    assert_eq!(loaded, newer);
}

#[test]
fn recovery_skips_and_deletes_corrupt_checkpoints() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bsp-ckpt-corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store: CheckpointStore<f64> = CheckpointStore::new(CheckpointConfig {
        interval: 1,
        dir: Some(dir.clone()),
    });
    let valid = Checkpoint {
        superstep: 3,
        values: vec![vec![0.25, -7.5], vec![1e-300]],
        active: vec![vec![0, 1], vec![]],
    };
    let newest = Checkpoint {
        superstep: 12,
        values: vec![vec![-0.5, 2.0], vec![f64::INFINITY]],
        active: vec![vec![], vec![2]],
    };
    store.publish(valid.clone()).unwrap();
    store.publish(newest).unwrap();

    // Truncate the newest file "mid-write" — cut it to an unaligned byte
    // length, like a crash between write and fsync would.
    let newest_path = dir.join("ckpt-12.bin");
    let bytes = std::fs::read(&newest_path).unwrap();
    std::fs::write(&newest_path, &bytes[..bytes.len() / 2 + 3]).unwrap();

    // A corrupt *length prefix* claiming 2^60 shards must also be skipped
    // (and must error before it becomes an allocation of that size).
    std::fs::write(
        dir.join("ckpt-20.bin"),
        [20u64, 1 << 60].map(u64::to_le_bytes).concat(),
    )
    .unwrap();

    // And a structurally complete file with trailing garbage.
    let mut padded = std::fs::read(dir.join("ckpt-3.bin")).unwrap();
    padded.extend_from_slice(b"junk");
    std::fs::write(dir.join("ckpt-15.bin"), &padded).unwrap();

    // Recovery falls back to the newest VALID checkpoint...
    let loaded = CheckpointStore::<f64>::load_latest_from_disk(&dir)
        .unwrap()
        .expect("the superstep-3 checkpoint is still valid");
    assert_eq!(loaded, valid);
    // ...and the husks are gone, so the next restart goes straight there.
    assert!(!newest_path.exists(), "truncated checkpoint must be deleted");
    assert!(!dir.join("ckpt-20.bin").exists(), "implausible-count file must be deleted");
    assert!(!dir.join("ckpt-15.bin").exists(), "trailing-garbage file must be deleted");
    assert!(dir.join("ckpt-3.bin").exists(), "the valid checkpoint must survive");

    // With every file corrupt, recovery reports "nothing on disk" rather
    // than an error the caller can do nothing about.
    std::fs::write(dir.join("ckpt-3.bin"), &bytes[..5]).unwrap();
    assert!(CheckpointStore::<f64>::load_latest_from_disk(&dir)
        .unwrap()
        .is_none());
    assert!(!dir.join("ckpt-3.bin").exists());
}

#[test]
fn recover_from_disk_survives_a_process_restart() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bsp-ckpt-restart");
    let _ = std::fs::remove_dir_all(&dir);
    let pool = ThreadPool::new(3);
    let n = 90;
    let edges = sample_edges(n, 500, 0xDADA);
    let graph = build_loaded(n, &edges, &pool);
    let config = || CheckpointConfig {
        interval: 1,
        dir: Some(dir.clone()),
    };
    let mut baseline = BspEngine::new(BfsProgram::new(0), n, 4, CheckpointConfig::default());
    baseline.reset_all_active();
    baseline.begin();
    baseline.run(graph.as_ref(), &pool).unwrap();

    let mut victim = BspEngine::new(BfsProgram::new(0), n, 4, config());
    victim.arm_kill(KillSpec {
        superstep: 1,
        shard: 1,
        phase: KillPhase::Gather,
    });
    victim.reset_all_active();
    victim.begin();
    let err = victim.run(graph.as_ref(), &pool).unwrap_err();
    assert_eq!(err.superstep, 1);

    // "Restart the process": a brand-new engine with no in-memory state,
    // pointed at the same checkpoint directory.
    let mut restarted = BspEngine::new(BfsProgram::new(0), n, 4, config());
    let resumed_at = restarted.recover_from_disk().unwrap();
    assert!(resumed_at <= 1, "kill at superstep 1 leaves a checkpoint at or before it");
    restarted.run(graph.as_ref(), &pool).unwrap();
    assert_eq!(restarted.values_vec(), baseline.values_vec());
}
