//! Pipelined execution: update and compute in parallel (footnote 1).
//!
//! SAGA-Bench v1 interleaves the update and compute phases (Fig. 2b). The
//! paper notes that recent systems (Aspen, GraphOne) use data structures
//! "capable of parallelizing update and compute" and lists that model for
//! a future version — this module provides it on top of the
//! [`GraphTopology`]/[`DynamicGraph`] trait split:
//!
//! 1. after ingesting batch *i*, an immutable [`Csr`] snapshot is taken;
//! 2. the compute phase for batch *i* runs on that snapshot, **while**
//!    the update phase for batch *i+1* runs on the live structure.
//!
//! The suite's naive snapshot (a full CSR copy) charges the snapshot cost
//! to the update pipeline stage, so the measured speedup over interleaved
//! execution is honest about the price of this model; systems like Aspen
//! make snapshots O(1) with functional trees.
//!
//! [`Csr`]: saga_graph::csr::Csr
//! [`GraphTopology`]: saga_graph::GraphTopology
//! [`DynamicGraph`]: saga_graph::DynamicGraph

use saga_algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind,
};
use saga_graph::csr::Csr;
use saga_graph::{
    build_deletable_graph, DataStructureKind, DeletableGraph, DeleteStats, Edge, UpdateStats,
};
use std::borrow::Cow;
use saga_stream::EdgeStream;
use saga_utils::parallel::ThreadPool;
use saga_utils::timer::Stopwatch;

/// Per-batch measurements of a pipelined run.
#[derive(Debug, Clone, Copy)]
pub struct PipelinedBatchRecord {
    /// Batch index.
    pub index: usize,
    /// Seconds spent updating the live structure with the *next* batch
    /// (plus snapshotting it), overlapped with this batch's compute.
    pub update_seconds: f64,
    /// Seconds spent computing on this batch's snapshot.
    pub compute_seconds: f64,
    /// Wall-clock seconds of the overlapped stage: ideally
    /// `max(update, compute)` rather than their sum.
    pub wall_seconds: f64,
    /// Edges newly inserted by this batch.
    pub inserted: usize,
    /// Duplicate edges skipped by this batch.
    pub duplicates: usize,
    /// Edges found and removed by this batch's deletions.
    pub removed: usize,
    /// Deletion targets that were not present.
    pub missing: usize,
}

/// Outcome of a pipelined run.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// Per-batch records.
    pub batches: Vec<PipelinedBatchRecord>,
    /// Final vertex values.
    pub final_values: saga_algorithms::VertexValues,
}

impl PipelineOutcome {
    /// Total overlapped wall time.
    pub fn pipelined_seconds(&self) -> f64 {
        self.batches.iter().map(|b| b.wall_seconds).sum()
    }

    /// What the same phases would cost end-to-end without overlap.
    pub fn serial_estimate_seconds(&self) -> f64 {
        self.batches
            .iter()
            .map(|b| b.update_seconds + b.compute_seconds)
            .sum()
    }

    /// Speedup of pipelining over interleaved execution (> 1 when the
    /// overlap pays for the snapshot cost).
    pub fn overlap_speedup(&self) -> f64 {
        let wall = self.pipelined_seconds();
        if wall == 0.0 {
            1.0
        } else {
            self.serial_estimate_seconds() / wall
        }
    }
}

/// Runs a stream with update ∥ compute pipelining.
///
/// `update_threads` + `compute_threads` workers are used in total: the
/// update stage owns one pool, the compute stage the other, mirroring a
/// deployment that partitions cores between ingest and analytics.
///
/// # Examples
///
/// ```
/// use saga_core::pipelined::run_pipelined;
/// use saga_graph::DataStructureKind;
/// use saga_algorithms::AlgorithmKind;
/// use saga_stream::profiles::DatasetProfile;
///
/// let stream = DatasetProfile::livejournal().scaled(300, 2_000).generate(3);
/// let outcome = run_pipelined(
///     &stream,
///     DataStructureKind::AdjacencyShared,
///     AlgorithmKind::Cc,
///     1_000,
///     2,
///     2,
/// );
/// assert_eq!(outcome.batches.len(), 2);
/// ```
pub fn run_pipelined(
    stream: &EdgeStream,
    ds: DataStructureKind,
    algorithm: AlgorithmKind,
    batch_size: usize,
    update_threads: usize,
    compute_threads: usize,
) -> PipelineOutcome {
    run_pipelined_full(
        stream,
        ds,
        algorithm,
        batch_size,
        update_threads,
        compute_threads,
        AlgorithmParams::default(),
    )
    .0
}

/// [`run_pipelined`] with explicit algorithm tunables, additionally
/// returning the final live structure so callers (the `saga-check`
/// differential harness) can compare its topology against a model after
/// the run. `params.root` is overridden by the stream's first edge source,
/// matching [`run_pipelined`]'s root policy.
#[allow(clippy::too_many_arguments)]
pub fn run_pipelined_full(
    stream: &EdgeStream,
    ds: DataStructureKind,
    algorithm: AlgorithmKind,
    batch_size: usize,
    update_threads: usize,
    compute_threads: usize,
    params: AlgorithmParams,
) -> (PipelineOutcome, Box<dyn DeletableGraph>) {
    let update_pool = ThreadPool::new(update_threads);
    let compute_pool = ThreadPool::new(compute_threads);
    let capacity = stream.num_nodes;
    let graph = build_deletable_graph(ds, capacity, stream.directed, update_pool.threads());
    let root = stream.edges.first().map(|e| e.src).unwrap_or(0);
    let mut state = AlgorithmState::new(
        algorithm,
        ComputeModelKind::Incremental,
        capacity,
        AlgorithmParams { root, ..params },
    );
    let mut tracker = AffectedTracker::new(capacity);
    // Pre-split every batch into its insert/delete classes (borrows for
    // insert-only batches; allocates only when a batch mixes ops).
    type SplitBatch<'a> = (Cow<'a, [Edge]>, Cow<'a, [Edge]>);
    let batches: Vec<SplitBatch<'_>> =
        stream.op_batches(batch_size).map(|b| b.split()).collect();
    let mut records = Vec::with_capacity(batches.len());
    let seed_delete_neighborhoods = state.symmetric_scope();

    // Prologue: apply batch 0 and snapshot it (not overlapped with
    // anything; recorded as batch 0's update cost).
    let apply = |i: usize| -> (UpdateStats, DeleteStats) {
        let (inserts, deletes) = &batches[i];
        let ins = graph.update_batch(inserts, &update_pool);
        let del = if deletes.is_empty() {
            DeleteStats::default()
        } else {
            graph.delete_batch(deletes, &update_pool)
        };
        (ins, del)
    };
    // The per-batch updater below runs on a fresh scope thread each batch;
    // its work is reported from this thread as a Complete event on one
    // virtual track (a scope thread emitting directly would allocate — and
    // leak — a pool-lifetime ring per batch, see `saga_trace::mute_thread`).
    static UPDATE_STAGE: saga_trace::Site = saga_trace::Site::new("update+snapshot", "batch");
    const UPDATE_TRACK: &str = "update-stage";
    let m_update = saga_trace::metrics::histogram("pipeline.update_ns");
    let m_compute = saga_trace::metrics::histogram("pipeline.compute_ns");
    let m_wall = saga_trace::metrics::histogram("pipeline.wall_ns");

    let t0 = saga_trace::now_ns();
    let sw = Stopwatch::start();
    let mut pending_stats = apply(0);
    let mut snapshot = Csr::from_graph(graph.as_ref());
    let mut pending_update_seconds = sw.elapsed_secs();
    saga_trace::emit_complete(
        &UPDATE_STAGE,
        UPDATE_TRACK,
        t0,
        (pending_update_seconds * 1e9) as u64,
        Some(0),
    );
    m_update.record_secs(pending_update_seconds);

    for i in 0..batches.len() {
        let _batch_span = saga_trace::span!("batch", index = i as u64);
        // The affected set for batch i, resolved against its snapshot
        // (taken after the batch was applied, so deletions are reflected).
        let (inserts, deletes) = &batches[i];
        let impact = tracker.process_mixed_batch(
            &snapshot,
            inserts,
            deletes,
            state.affects_source_neighborhood(),
            seed_delete_neighborhoods,
            &compute_pool,
        );
        let wall = Stopwatch::start();
        let mut compute_seconds = 0.0;
        let mut next: Option<(Csr, f64, (UpdateStats, DeleteStats))> = None;
        let mut update_span_ns = 0u64;
        std::thread::scope(|scope| {
            // Stage A (worker thread): apply batch i+1 and snapshot.
            let updater = (i + 1 < batches.len()).then(|| {
                let graph = &graph;
                let apply = &apply;
                scope.spawn(move || {
                    saga_trace::mute_thread();
                    let t0 = saga_trace::now_ns();
                    let sw = Stopwatch::start();
                    let stats = apply(i + 1);
                    let csr = Csr::from_graph(graph.as_ref());
                    (csr, sw.elapsed_secs(), stats, t0)
                })
            });
            // Stage B (this thread): compute batch i on its snapshot.
            let compute_span =
                saga_trace::span!("compute", affected = impact.affected.len() as u64);
            let sw = Stopwatch::start();
            state.perform_alg_with_deletions(
                &snapshot,
                &impact.affected,
                &impact.new_vertices,
                deletes,
                &compute_pool,
            );
            compute_seconds = sw.elapsed_secs();
            drop(compute_span);
            next = updater.map(|h| {
                let (csr, secs, stats, t0) = h.join().expect("updater thread panicked");
                update_span_ns = (secs * 1e9) as u64;
                saga_trace::emit_complete(
                    &UPDATE_STAGE,
                    UPDATE_TRACK,
                    t0,
                    update_span_ns,
                    Some(i as u64 + 1),
                );
                (csr, secs, stats)
            });
        });
        let wall_seconds = wall.elapsed();
        if update_span_ns > 0 {
            m_update.record(update_span_ns);
        }
        m_compute.record_secs(compute_seconds);
        m_wall.record_secs(wall_seconds.as_secs_f64());
        records.push(PipelinedBatchRecord {
            index: i,
            update_seconds: pending_update_seconds,
            compute_seconds,
            wall_seconds: wall_seconds.as_secs_f64()
                + if i == 0 { pending_update_seconds } else { 0.0 },
            inserted: pending_stats.0.inserted,
            duplicates: pending_stats.0.duplicates,
            removed: pending_stats.1.removed,
            missing: pending_stats.1.missing,
        });
        if let Some((csr, update_secs, stats)) = next {
            snapshot = csr;
            pending_update_seconds = update_secs;
            pending_stats = stats;
        }
    }

    (
        PipelineOutcome {
            batches: records,
            final_values: state.values(),
        },
        graph,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::StreamDriver;
    use saga_stream::profiles::DatasetProfile;

    #[test]
    fn pipelined_matches_interleaved_results() {
        let stream = DatasetProfile::wiki().scaled(400, 4_000).generate(9);
        let pipelined = run_pipelined(
            &stream,
            DataStructureKind::Stinger,
            AlgorithmKind::Bfs,
            1_000,
            2,
            2,
        );
        let mut interleaved = StreamDriver::builder(DataStructureKind::Stinger, stream.num_nodes)
            .algorithm(AlgorithmKind::Bfs)
            .compute_model(ComputeModelKind::Incremental)
            .batch_size(1_000)
            .threads(4)
            .build();
        let expected = interleaved.run(&stream);
        assert_eq!(pipelined.final_values, expected.final_values);
        assert_eq!(pipelined.batches.len(), 4);
    }

    #[test]
    fn pipelined_consumes_deletion_batches() {
        let stream = DatasetProfile::wiki()
            .scaled(300, 2_400)
            .with_churn(0.2)
            .generate(17);
        assert!(stream.has_deletions());
        let pipelined = run_pipelined(
            &stream,
            DataStructureKind::AdjacencyShared,
            AlgorithmKind::Bfs,
            800,
            2,
            2,
        );
        // The interleaved driver on the same churn stream is the oracle
        // (itself FS-checked in driver.rs).
        let mut interleaved =
            StreamDriver::builder(DataStructureKind::AdjacencyShared, stream.num_nodes)
                .algorithm(AlgorithmKind::Bfs)
                .compute_model(ComputeModelKind::Incremental)
                .batch_size(800)
                .threads(4)
                .build();
        let expected = interleaved.run(&stream);
        assert_eq!(pipelined.final_values, expected.final_values);
    }

    #[test]
    fn timing_bookkeeping_is_sane() {
        let stream = DatasetProfile::talk().scaled(300, 3_000).generate(4);
        let outcome = run_pipelined(
            &stream,
            DataStructureKind::Dah,
            AlgorithmKind::Cc,
            1_000,
            2,
            2,
        );
        assert!(outcome.pipelined_seconds() > 0.0);
        assert!(outcome.serial_estimate_seconds() > 0.0);
        assert!(outcome.overlap_speedup() > 0.0);
        for b in &outcome.batches {
            assert!(b.compute_seconds > 0.0);
            assert!(b.wall_seconds > 0.0);
        }
    }
}
