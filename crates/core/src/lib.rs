//! The SAGA-Bench streaming-analytics core: driver, staging, experiments.
//!
//! This crate assembles the substrates into the paper's benchmark:
//!
//! - [`driver`] — interleaves update and compute phases over an edge
//!   stream, measuring the batch processing latency of Eq. 1 (and, when
//!   enabled, per-phase architecture reports from the `saga-perf`
//!   simulator).
//! - [`stages`] — P1/P2/P3 over-time aggregation with pooled 95%
//!   confidence intervals (§IV-B).
//! - [`experiment`] — the Table III sweep machinery: all
//!   4 data structures × 2 compute models per algorithm/dataset, with
//!   best/competitive selection by confidence-interval overlap.
//! - [`report`] — plain-text table rendering and `results/` persistence
//!   for the experiment binaries.

#![warn(missing_docs)]

pub mod driver;
pub mod pipelined;
pub mod experiment;
pub mod report;
pub mod stages;

pub use driver::{StreamDriver, StreamOutcome};
pub use experiment::{ExperimentConfig, Metric};
pub use stages::{Stage, StageSummary};
