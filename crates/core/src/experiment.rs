//! Experiment sweeps over (data structure × compute model) configurations.
//!
//! Table III of the paper evaluates, per algorithm and dataset, all
//! 4 data structures × 2 compute models = 8 combinations, with three
//! repeated runs and 95% confidence intervals, reporting per stage the
//! best combination (and combinations whose intervals overlap it as
//! *competitive*). These helpers run exactly that sweep; the per-figure
//! binaries in `saga-bench` consume the results.

use crate::driver::{BatchRecord, StreamDriver};
use crate::stages::{Stage, StageSummary};
use saga_algorithms::{AlgorithmKind, ComputeModelKind};
use saga_graph::DataStructureKind;
use saga_stream::profiles::DatasetProfile;
use saga_utils::stats::Summary;

/// Shared sweep settings.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Stream generation seed.
    pub seed: u64,
    /// Repeated runs per configuration (the paper uses 3).
    pub repeats: usize,
    /// Worker threads.
    pub threads: usize,
    /// Batch size override (default: the profile's suggestion).
    pub batch_size: Option<usize>,
    /// Dataset scale multiplier (1.0 = the profile's default size).
    pub scale: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            repeats: 3,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            batch_size: None,
            scale: 1.0,
        }
    }
}

/// Which latency a figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Batch processing latency (Eq. 1) — Fig. 6a, Table III.
    Batch,
    /// Update latency — Fig. 6b.
    Update,
    /// Compute latency — Fig. 6c, Fig. 7.
    Compute,
}

/// Result of one (data structure × compute model) cell.
#[derive(Debug, Clone)]
pub struct ComboResult {
    /// Data structure.
    pub ds: DataStructureKind,
    /// Compute model.
    pub cm: ComputeModelKind,
    /// P1/P2/P3 summaries.
    pub stages: [StageSummary; 3],
}

impl ComboResult {
    /// The summary of `metric` at `stage`.
    pub fn summary(&self, stage: Stage, metric: Metric) -> Summary {
        let s = &self.stages[stage.index()];
        match metric {
            Metric::Batch => s.batch,
            Metric::Update => s.update,
            Metric::Compute => s.compute,
        }
    }
}

/// Runs one configuration `cfg.repeats` times on the same stream and
/// aggregates stages (§IV-B methodology).
pub fn run_combination(
    profile: &DatasetProfile,
    algorithm: AlgorithmKind,
    ds: DataStructureKind,
    cm: ComputeModelKind,
    cfg: &ExperimentConfig,
) -> ComboResult {
    let profile = profile.clone().scaled_by(cfg.scale);
    let stream = profile.generate(cfg.seed);
    let mut runs: Vec<Vec<BatchRecord>> = Vec::with_capacity(cfg.repeats);
    for _ in 0..cfg.repeats.max(1) {
        let mut builder = StreamDriver::builder(ds, stream.num_nodes)
            .algorithm(algorithm)
            .compute_model(cm)
            .threads(cfg.threads);
        if let Some(b) = cfg.batch_size {
            builder = builder.batch_size(b);
        }
        let mut driver = builder.build();
        runs.push(driver.run(&stream).batches);
    }
    let views: Vec<&[BatchRecord]> = runs.iter().map(|r| r.as_slice()).collect();
    ComboResult {
        ds,
        cm,
        stages: crate::stages::summarize_stages(&views),
    }
}

/// Runs all 8 combinations for one algorithm and dataset.
pub fn sweep_combinations(
    profile: &DatasetProfile,
    algorithm: AlgorithmKind,
    cfg: &ExperimentConfig,
) -> Vec<ComboResult> {
    let mut out = Vec::with_capacity(8);
    for ds in DataStructureKind::ALL {
        for cm in ComputeModelKind::ALL {
            out.push(run_combination(profile, algorithm, ds, cm, cfg));
        }
    }
    out
}

/// The best combination at a stage, plus every combination whose 95%
/// confidence interval overlaps the best ("competitive", Table III).
#[derive(Debug, Clone)]
pub struct BestEntry {
    /// The outright best (lowest mean) combination.
    pub best: (DataStructureKind, ComputeModelKind),
    /// Mean latency of the best combination, seconds.
    pub best_mean: f64,
    /// Combinations competitive with the best (includes the best itself).
    pub competitive: Vec<(DataStructureKind, ComputeModelKind)>,
}

impl BestEntry {
    /// Table III cell notation: `INC+AS` or `INC/FS+AS` style (best first,
    /// competitive combinations appended).
    pub fn notation(&self) -> String {
        let mut parts: Vec<String> = vec![format!("{}+{}", self.best.1, self.best.0)];
        for &(ds, cm) in &self.competitive {
            if (ds, cm) != self.best {
                parts.push(format!("{cm}+{ds}"));
            }
        }
        parts.join(" / ")
    }
}

/// Picks the best/competitive set among `results` at `stage` by `metric`.
///
/// # Panics
///
/// Panics if `results` is empty.
pub fn best_at(results: &[ComboResult], stage: Stage, metric: Metric) -> BestEntry {
    assert!(!results.is_empty(), "no combinations to compare");
    let best = results
        .iter()
        .min_by(|a, b| {
            a.summary(stage, metric)
                .mean
                .total_cmp(&b.summary(stage, metric).mean)
        })
        .unwrap();
    let best_summary = best.summary(stage, metric);
    let competitive = results
        .iter()
        .filter(|r| best_summary.competitive_with(&r.summary(stage, metric)))
        .map(|r| (r.ds, r.cm))
        .collect();
    BestEntry {
        best: (best.ds, best.cm),
        best_mean: best_summary.mean,
        competitive,
    }
}

/// Ratio of a combination's latency to a baseline data structure's at a
/// stage (Fig. 6's "normalized to AS").
pub fn normalized_to(
    results: &[ComboResult],
    baseline: DataStructureKind,
    cm: ComputeModelKind,
    stage: Stage,
    metric: Metric,
) -> Vec<(DataStructureKind, f64)> {
    let base = results
        .iter()
        .find(|r| r.ds == baseline && r.cm == cm)
        .map(|r| r.summary(stage, metric).mean)
        .unwrap_or(f64::NAN);
    results
        .iter()
        .filter(|r| r.cm == cm)
        .map(|r| (r.ds, r.summary(stage, metric).mean / base))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            seed: 7,
            repeats: 2,
            threads: 2,
            batch_size: Some(600),
            scale: 1.0,
        }
    }

    #[test]
    fn run_combination_produces_three_stages() {
        let profile = DatasetProfile::talk().scaled(200, 1_800);
        let result = run_combination(
            &profile,
            AlgorithmKind::Bfs,
            DataStructureKind::Dah,
            ComputeModelKind::Incremental,
            &tiny_cfg(),
        );
        assert_eq!(result.stages.len(), 3);
        for s in &result.stages {
            assert_eq!(s.update.n, 2, "1 batch per stage x 2 repeats");
            assert!(s.batch.mean > 0.0);
        }
        assert!(result.summary(Stage::P1, Metric::Batch).mean > 0.0);
    }

    #[test]
    fn best_at_prefers_lower_mean() {
        let profile = DatasetProfile::livejournal().scaled(150, 1_800);
        let cfg = tiny_cfg();
        let results = vec![
            run_combination(
                &profile,
                AlgorithmKind::Cc,
                DataStructureKind::AdjacencyShared,
                ComputeModelKind::Incremental,
                &cfg,
            ),
            run_combination(
                &profile,
                AlgorithmKind::Cc,
                DataStructureKind::AdjacencyShared,
                ComputeModelKind::FromScratch,
                &cfg,
            ),
        ];
        let best = best_at(&results, Stage::P3, Metric::Batch);
        assert!(best.best_mean > 0.0);
        assert!(!best.competitive.is_empty());
        assert!(best.notation().contains("AS"));
    }

    #[test]
    fn normalization_is_one_for_the_baseline() {
        let profile = DatasetProfile::livejournal().scaled(150, 1_800);
        let cfg = tiny_cfg();
        let results = vec![
            run_combination(
                &profile,
                AlgorithmKind::Mc,
                DataStructureKind::AdjacencyShared,
                ComputeModelKind::Incremental,
                &cfg,
            ),
            run_combination(
                &profile,
                AlgorithmKind::Mc,
                DataStructureKind::Stinger,
                ComputeModelKind::Incremental,
                &cfg,
            ),
        ];
        let norm = normalized_to(
            &results,
            DataStructureKind::AdjacencyShared,
            ComputeModelKind::Incremental,
            Stage::P3,
            Metric::Update,
        );
        let as_entry = norm
            .iter()
            .find(|(ds, _)| *ds == DataStructureKind::AdjacencyShared)
            .unwrap();
        assert!((as_entry.1 - 1.0).abs() < 1e-12);
    }
}
