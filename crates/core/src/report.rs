//! Plain-text table rendering and results persistence.
//!
//! Every experiment binary prints the same rows/series as the paper's
//! tables and figures and mirrors them to `results/<name>.txt` so
//! EXPERIMENTS.md can reference stable artifacts.

use std::io::Write;
use std::path::{Path, PathBuf};

/// A fixed-width text table.
///
/// # Examples
///
/// ```
/// use saga_core::report::TextTable;
///
/// let mut t = TextTable::new(["alg", "latency"]);
/// t.add_row(["BFS", "0.17"]);
/// let s = t.render();
/// assert!(s.contains("BFS"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row<I, S>(&mut self, row: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (RFC-4180 quoting for cells containing commas or
    /// quotes), for downstream plotting.
    pub fn to_csv(&self) -> String {
        fn csv_cell(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let row: Vec<String> = cells.iter().map(|c| csv_cell(c)).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Writes `content` to `results/<name>` (creating the directory), echoing
/// the path. Returns the path written.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_results_file(name: &str, content: &str) -> std::io::Result<PathBuf> {
    write_results_file_in(&results_dir(), name, content)
}

/// [`write_results_file`] with an explicit directory instead of the
/// `$SAGA_RESULTS_DIR` lookup. Tests use this to avoid mutating the
/// process environment (`set_var` races against parallel tests reading it).
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_results_file_in(dir: &Path, name: &str, content: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(content.as_bytes())?;
    Ok(path)
}

/// Writes the current metrics-registry snapshot to
/// `results/<stem>.metrics.csv` and returns the path (`None` when the
/// registry is empty). Figure binaries call this after their runs so
/// software timings and simulated hardware counters land in one artifact.
///
/// # Errors
///
/// Returns any I/O error from writing the snapshot file.
pub fn write_metrics_snapshot(stem: &str) -> std::io::Result<Option<PathBuf>> {
    let snap = saga_trace::metrics::snapshot();
    if snap.is_empty() {
        return Ok(None);
    }
    write_results_file(&format!("{stem}.metrics.csv"), &snap.to_csv()).map(Some)
}

/// The results directory: `$SAGA_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("SAGA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").to_path_buf())
}

/// Formats seconds like the paper's tables (4 decimal places).
pub fn fmt_secs(seconds: f64) -> String {
    format!("{seconds:.4}")
}

/// Formats a ratio with two decimals and an `x` suffix (`1.66x`).
pub fn fmt_ratio(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// Formats a fraction as a percentage (`41.3%`).
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_pads_columns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.add_row(["xxxxxx", "y"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.add_row(["only-one"]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new(["a", "b"]);
        t.add_row(["plain", "has,comma"]);
        t.add_row(["has\"quote", "x"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"has,comma\"");
        assert_eq!(lines[2], "\"has\"\"quote\",x");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.17054), "0.1705");
        assert_eq!(fmt_ratio(1.6649), "1.66x");
        assert_eq!(fmt_pct(0.413), "41.3%");
    }

    #[test]
    fn results_file_roundtrip() {
        // Explicit directory override: mutating SAGA_RESULTS_DIR here
        // would race against any parallel test that calls results_dir().
        let dir = std::env::temp_dir().join("saga-test-results");
        let path = write_results_file_in(&dir, "unit.txt", "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        assert!(path.starts_with(&dir));
    }
}
