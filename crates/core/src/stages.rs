//! P1/P2/P3 stage aggregation (§IV-B of the paper).
//!
//! To analyze the over-time effect of the growing graph, the paper divides
//! a stream's batches into three equal stages and reports P1 (early), P2
//! (middle), and P3 (final) averages, each pooled over the corresponding
//! third of every repeated run and reported with a 95% confidence
//! interval.

use crate::driver::BatchRecord;
use saga_utils::stats::Summary;

/// One of the three over-time stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Early third of the stream.
    P1,
    /// Middle third.
    P2,
    /// Final third.
    P3,
}

impl Stage {
    /// All stages in order.
    pub const ALL: [Stage; 3] = [Stage::P1, Stage::P2, Stage::P3];

    /// Index 0/1/2.
    pub fn index(&self) -> usize {
        match self {
            Stage::P1 => 0,
            Stage::P2 => 1,
            Stage::P3 => 2,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::P1 => f.write_str("P1"),
            Stage::P2 => f.write_str("P2"),
            Stage::P3 => f.write_str("P3"),
        }
    }
}

/// Stage a batch belongs to, given the total batch count.
pub fn stage_of(batch_index: usize, total_batches: usize) -> Stage {
    debug_assert!(batch_index < total_batches);
    let third = total_batches.div_ceil(3).max(1);
    match batch_index / third {
        0 => Stage::P1,
        1 => Stage::P2,
        _ => Stage::P3,
    }
}

/// Pooled latency statistics for one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSummary {
    /// The stage.
    pub stage: Stage,
    /// Update-phase latency (seconds).
    pub update: Summary,
    /// Compute-phase latency (seconds).
    pub compute: Summary,
    /// Batch processing latency (Eq. 1, seconds).
    pub batch: Summary,
}

impl StageSummary {
    /// Mean fraction of batch latency spent updating (Fig. 8).
    pub fn update_fraction(&self) -> f64 {
        if self.batch.mean == 0.0 {
            0.0
        } else {
            self.update.mean / self.batch.mean
        }
    }
}

/// Summarizes repeated runs into the three stages, pooling sample values
/// exactly as §IV-B prescribes (each stage average uses one third of
/// batchCount values from each of the repeated runs).
///
/// # Panics
///
/// Panics if runs have different batch counts.
pub fn summarize_stages(runs: &[&[BatchRecord]]) -> [StageSummary; 3] {
    let mut update: [Vec<f64>; 3] = Default::default();
    let mut compute: [Vec<f64>; 3] = Default::default();
    let mut batch: [Vec<f64>; 3] = Default::default();
    for run in runs {
        if let Some(first) = runs.first() {
            assert_eq!(
                run.len(),
                first.len(),
                "repeated runs must have equal batch counts"
            );
        }
        let total = run.len();
        for record in run.iter() {
            let s = stage_of(record.index, total).index();
            update[s].push(record.update_seconds);
            compute[s].push(record.compute_seconds);
            batch[s].push(record.batch_seconds());
        }
    }
    Stage::ALL.map(|stage| {
        let s = stage.index();
        StageSummary {
            stage,
            update: Summary::from_samples(&update[s]),
            compute: Summary::from_samples(&compute[s]),
            batch: Summary::from_samples(&batch[s]),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_algorithms::ComputeOutcome;

    fn record(index: usize, update: f64, compute: f64) -> BatchRecord {
        BatchRecord {
            index,
            batch_len: 100,
            update_seconds: update,
            compute_seconds: compute,
            inserted: 0,
            duplicates: 0,
            removed: 0,
            missing: 0,
            compute: ComputeOutcome::default(),
            arch: None,
        }
    }

    #[test]
    fn stage_partition_covers_all_batches() {
        for total in [3usize, 9, 10, 11, 100] {
            let mut counts = [0usize; 3];
            for i in 0..total {
                counts[stage_of(i, total).index()] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), total);
            // Stages are balanced within one batch of each other for
            // divisible counts.
            if total % 3 == 0 {
                assert!(counts.iter().all(|&c| c == total / 3), "{total}: {counts:?}");
            }
        }
    }

    #[test]
    fn early_batches_are_p1_late_are_p3() {
        assert_eq!(stage_of(0, 9), Stage::P1);
        assert_eq!(stage_of(4, 9), Stage::P2);
        assert_eq!(stage_of(8, 9), Stage::P3);
    }

    #[test]
    fn summaries_pool_across_runs() {
        let run1: Vec<BatchRecord> = (0..6).map(|i| record(i, 1.0, 2.0)).collect();
        let run2: Vec<BatchRecord> = (0..6).map(|i| record(i, 3.0, 4.0)).collect();
        let stages = summarize_stages(&[&run1, &run2]);
        for s in &stages {
            assert_eq!(s.update.n, 4, "2 batches/stage x 2 runs");
            assert!((s.update.mean - 2.0).abs() < 1e-12);
            assert!((s.compute.mean - 3.0).abs() < 1e-12);
            assert!((s.batch.mean - 5.0).abs() < 1e-12);
            assert!((s.update_fraction() - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "equal batch counts")]
    fn mismatched_runs_panic() {
        let run1: Vec<BatchRecord> = (0..6).map(|i| record(i, 1.0, 1.0)).collect();
        let run2: Vec<BatchRecord> = (0..5).map(|i| record(i, 1.0, 1.0)).collect();
        let _ = summarize_stages(&[&run1, &run2]);
    }
}
