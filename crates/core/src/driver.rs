//! The streaming driver: interleaved update and compute phases.
//!
//! This is the paper's execution model (Fig. 1, Fig. 2b): the input edge
//! stream is consumed in batches; for each batch the driver first ingests
//! the edges into the data structure (*update phase*), then runs the
//! algorithm on the freshly updated structure (*compute phase*), recording
//! both latencies — their sum is the batch processing latency of Eq. 1,
//! the performance metric used throughout.
//!
//! With [`ArchSimConfig`] attached, both phases additionally run under the
//! memory probe and are replayed — in stream order, on one persistent
//! hierarchy, so the compute phase really can reuse lines the update phase
//! brought in (§VI-C) — producing the per-phase cache and bandwidth
//! reports behind Figs. 9(b–c) and 10.

use saga_algorithms::{
    AffectedTracker, AlgorithmKind, AlgorithmParams, AlgorithmState, ComputeModelKind,
    ComputeOutcome, VertexValues,
};
use saga_bsp::{CheckpointConfig, ShardedState};
use saga_graph::{build_deletable_graph_with, DataStructureKind, Edge, Node};
use saga_perf::bandwidth::{estimate, BandwidthEstimate, TimeModel};
use saga_perf::cache::{CacheReport, HierarchyConfig, MemoryHierarchy};
use saga_perf::trace_phase;
use saga_stream::EdgeStream;
use saga_utils::parallel::ThreadPool;
use saga_utils::timer::Stopwatch;

/// Architecture-simulation settings for a driver run.
#[derive(Debug, Clone, Copy)]
pub struct ArchSimConfig {
    /// Cache-capacity scale factor (power of two; 1 = the paper machine).
    /// Scaled datasets pair naturally with scaled caches — see DESIGN.md.
    pub cache_scale: usize,
    /// Time model for bandwidth estimation.
    pub time_model: TimeModel,
}

impl Default for ArchSimConfig {
    fn default() -> Self {
        Self {
            cache_scale: 16,
            time_model: TimeModel::default(),
        }
    }
}

/// Per-phase architecture reports for one batch.
#[derive(Debug, Clone)]
pub struct ArchRecord {
    /// Cache report of the update phase.
    pub update: CacheReport,
    /// Cache report of the compute phase.
    pub compute: CacheReport,
    /// Bandwidth estimate of the update phase.
    pub update_bw: BandwidthEstimate,
    /// Bandwidth estimate of the compute phase.
    pub compute_bw: BandwidthEstimate,
}

/// Measurements for one batch (Eq. 1 decomposition).
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Batch index within the stream.
    pub index: usize,
    /// Edges in the batch.
    pub batch_len: usize,
    /// Update-phase latency in seconds.
    pub update_seconds: f64,
    /// Compute-phase latency in seconds.
    pub compute_seconds: f64,
    /// Edges newly inserted.
    pub inserted: usize,
    /// Duplicate edges skipped.
    pub duplicates: usize,
    /// Edges found and removed by this batch's deletions.
    pub removed: usize,
    /// Deletion targets that were not present.
    pub missing: usize,
    /// Compute-phase counters.
    pub compute: ComputeOutcome,
    /// Architecture simulation (when enabled).
    pub arch: Option<ArchRecord>,
}

impl BatchRecord {
    /// Batch processing latency (Eq. 1): update + compute.
    pub fn batch_seconds(&self) -> f64 {
        self.update_seconds + self.compute_seconds
    }

    /// Fraction of the batch latency spent in the update phase (Fig. 8).
    pub fn update_fraction(&self) -> f64 {
        let total = self.batch_seconds();
        if total == 0.0 {
            0.0
        } else {
            self.update_seconds / total
        }
    }
}

/// Result of streaming one dataset through the driver.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Per-batch measurements, in stream order.
    pub batches: Vec<BatchRecord>,
    /// Final vertex property values.
    pub final_values: VertexValues,
    /// Total unique edges ingested.
    pub total_edges: usize,
}

impl StreamOutcome {
    /// Sum of batch processing latencies.
    pub fn total_seconds(&self) -> f64 {
        self.batches.iter().map(BatchRecord::batch_seconds).sum()
    }
}

/// The compute state behind a run: the serial pull-based path or the
/// sharded BSP engine. Observers receive a borrow of whichever is live.
#[derive(Debug)]
enum ComputeState {
    Serial(AlgorithmState),
    Sharded(Box<ShardedState>),
}

/// Borrow of the driver's live compute state, handed to
/// [`StreamDriver::run_observed`] observers after every batch.
#[derive(Debug, Clone, Copy)]
pub enum ComputeStateRef<'a> {
    /// The serial pull-based path ([`AlgorithmState`]).
    Serial(&'a AlgorithmState),
    /// The sharded BSP path ([`ShardedState`]).
    Sharded(&'a ShardedState),
}

impl ComputeStateRef<'_> {
    /// Current vertex property values.
    pub fn values(&self) -> VertexValues {
        match self {
            ComputeStateRef::Serial(s) => s.values(),
            ComputeStateRef::Sharded(s) => s.values(),
        }
    }

    /// The serial state, when this run uses the serial path.
    pub fn as_serial(&self) -> Option<&AlgorithmState> {
        match self {
            ComputeStateRef::Serial(s) => Some(s),
            ComputeStateRef::Sharded(_) => None,
        }
    }

    /// The sharded state, when this run uses the BSP path.
    pub fn as_sharded(&self) -> Option<&ShardedState> {
        match self {
            ComputeStateRef::Serial(_) => None,
            ComputeStateRef::Sharded(s) => Some(s),
        }
    }
}

/// Builder for [`StreamDriver`].
#[derive(Debug, Clone)]
pub struct StreamDriverBuilder {
    data_structure: DataStructureKind,
    capacity: usize,
    algorithm: AlgorithmKind,
    compute_model: ComputeModelKind,
    batch_size: Option<usize>,
    threads: usize,
    root: Option<Node>,
    params: AlgorithmParams,
    arch_sim: Option<ArchSimConfig>,
    partitioned_ingest: bool,
    sharded: Option<usize>,
}

impl StreamDriverBuilder {
    /// Selects the algorithm (default: PageRank).
    pub fn algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the compute model (default: incremental).
    pub fn compute_model(mut self, model: ComputeModelKind) -> Self {
        self.compute_model = model;
        self
    }

    /// Overrides the batch size (default: the stream's suggestion).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size);
        self
    }

    /// Number of worker threads (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the search root for BFS/SSSP/SSWP (default: the source of
    /// the stream's first edge, which is guaranteed to exist).
    pub fn root(mut self, root: Node) -> Self {
        self.root = Some(root);
        self
    }

    /// Overrides algorithm tunables.
    pub fn params(mut self, params: AlgorithmParams) -> Self {
        self.params = params;
        self
    }

    /// Enables the architecture simulator for both phases.
    pub fn arch_sim(mut self, config: ArchSimConfig) -> Self {
        self.arch_sim = Some(config);
        self
    }

    /// Routes AS/Stinger batches through the radix partitioner instead of
    /// per-edge shared-memory ingestion (default: off, the paper's design).
    /// AC and DAH always partition, so the flag is a no-op there.
    pub fn partitioned_ingest(mut self, enabled: bool) -> Self {
        self.partitioned_ingest = enabled;
        self
    }

    /// Runs the compute phase on the sharded BSP engine (`saga-bsp`) with
    /// `shards` shards instead of the serial pull-based path (default:
    /// serial). The BSP path checkpoints shard state at every superstep
    /// barrier, so a simulated worker kill
    /// ([`saga_bsp::ShardedState::inject_kill`]) recovers to bitwise-
    /// identical results — `saga-check`'s recovery harness exercises this.
    pub fn sharded(mut self, shards: usize) -> Self {
        self.sharded = Some(shards.max(1));
        self
    }

    /// Builds the driver (spawns its thread pool).
    pub fn build(self) -> StreamDriver {
        let pool = ThreadPool::new(self.threads);
        StreamDriver {
            builder: self,
            pool,
        }
    }
}

/// Drives one (data structure × algorithm × compute model) configuration
/// over edge streams.
///
/// # Examples
///
/// ```
/// use saga_core::driver::StreamDriver;
/// use saga_graph::DataStructureKind;
/// use saga_stream::profiles::DatasetProfile;
/// use saga_algorithms::{AlgorithmKind, ComputeModelKind};
///
/// let profile = DatasetProfile::talk().scaled(500, 3_000);
/// let stream = profile.generate(7);
/// let mut driver = StreamDriver::builder(DataStructureKind::Dah, 500)
///     .algorithm(AlgorithmKind::Cc)
///     .compute_model(ComputeModelKind::Incremental)
///     .batch_size(1_000)
///     .threads(2)
///     .build();
/// let outcome = driver.run(&stream);
/// assert_eq!(outcome.batches.len(), 3);
/// assert!(outcome.total_seconds() > 0.0);
/// ```
#[derive(Debug)]
pub struct StreamDriver {
    builder: StreamDriverBuilder,
    pool: ThreadPool,
}

impl StreamDriver {
    /// Starts configuring a driver for the given data structure and vertex
    /// universe.
    pub fn builder(data_structure: DataStructureKind, capacity: usize) -> StreamDriverBuilder {
        StreamDriverBuilder {
            data_structure,
            capacity,
            algorithm: AlgorithmKind::PageRank,
            compute_model: ComputeModelKind::Incremental,
            batch_size: None,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            root: None,
            params: AlgorithmParams::default(),
            arch_sim: None,
            partitioned_ingest: false,
            sharded: None,
        }
    }

    /// The worker pool (exposed for phase-level experiments).
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Streams `stream` through a fresh graph and algorithm state,
    /// interleaving update and compute per batch.
    pub fn run(&mut self, stream: &EdgeStream) -> StreamOutcome {
        self.run_observed(stream, |_, _, _| {})
    }

    /// Like [`StreamDriver::run`], but invokes `observer` after every batch
    /// with the batch's record, the live graph, and the compute state
    /// (serial or sharded, depending on the builder).
    /// The differential checker in `saga-check` uses this to compare
    /// intermediate topology and property values against its model after
    /// each batch instead of only at the end of the stream.
    pub fn run_observed<F>(&mut self, stream: &EdgeStream, mut observer: F) -> StreamOutcome
    where
        F: FnMut(&BatchRecord, &dyn saga_graph::DynamicGraph, ComputeStateRef<'_>),
    {
        let root = self
            .builder
            .root
            .unwrap_or_else(|| stream.edges.first().map(|e| e.src).unwrap_or(0));
        let batch_size = self
            .builder
            .batch_size
            .unwrap_or(stream.suggested_batch_size);
        let mut session = self.session(stream.num_nodes, stream.directed, root);
        let mut batches = Vec::new();
        for batch in stream.op_batches(batch_size) {
            let (inserts, deletes) = batch.split();
            batches.push(session.step(&inserts, &deletes));
            observer(
                batches.last().unwrap(),
                session.graph(),
                session.state_ref(),
            );
        }
        StreamOutcome {
            final_values: session.values(),
            total_edges: session.graph().num_edges(),
            batches,
        }
    }

    /// Opens a long-lived per-batch stepping session: the graph, compute
    /// state, and affected tracker are created up front, then the caller
    /// feeds batches one at a time through [`DriverSession::step`].
    ///
    /// [`StreamDriver::run`] is a thin loop over this API; `saga-server`
    /// drives one session per tenant from its admission queue, where the
    /// stream has no known end. `num_nodes` joins the builder's capacity
    /// (whichever is larger wins); `root` seeds BFS/SSSP/SSWP and must be
    /// chosen by the caller because a session never sees the whole stream
    /// (the driver uses the first edge's source, matching the oracle).
    pub fn session(&self, num_nodes: usize, directed: bool, root: Node) -> DriverSession<'_> {
        let cfg = &self.builder;
        let capacity = cfg.capacity.max(num_nodes);
        let graph = build_deletable_graph_with(
            cfg.data_structure,
            capacity,
            directed,
            self.pool.threads(),
            cfg.partitioned_ingest,
        );
        let mut params = cfg.params;
        params.root = root;
        let state = match cfg.sharded {
            Some(shards) => ComputeState::Sharded(Box::new(ShardedState::new(
                cfg.algorithm,
                cfg.compute_model,
                capacity,
                shards,
                params,
                CheckpointConfig::default(),
            ))),
            None => ComputeState::Serial(AlgorithmState::new(
                cfg.algorithm,
                cfg.compute_model,
                capacity,
                params,
            )),
        };
        let hierarchy = cfg.arch_sim.map(|a| {
            let config = if a.cache_scale <= 1 {
                HierarchyConfig::paper()
            } else {
                HierarchyConfig::paper_scaled(a.cache_scale)
            };
            MemoryHierarchy::new(config, self.pool.threads())
        });
        let (needs_seed_neighborhood, seed_delete_neighborhoods) = match &state {
            ComputeState::Serial(s) => (s.affects_source_neighborhood(), s.symmetric_scope()),
            ComputeState::Sharded(s) => (s.affects_source_neighborhood(), s.symmetric_scope()),
        };
        DriverSession {
            arch_sim: cfg.arch_sim,
            incremental: cfg.compute_model == ComputeModelKind::Incremental,
            needs_seed_neighborhood,
            seed_delete_neighborhoods,
            tracker: AffectedTracker::new(capacity),
            // The bandwidth model always prices against the paper's
            // machine, regardless of any cache_scale override of the
            // hierarchy itself.
            topo: HierarchyConfig::paper().topology,
            metrics: DriverMetrics::resolve(),
            pool: &self.pool,
            next_index: 0,
            graph,
            state,
            hierarchy,
        }
    }
}

/// Registry handles resolved once per session, outside the batch loop (the
/// registry lock is only for lookup; recording is lock-free). These are
/// the Eq. 1 latencies and batch counters every figure binary re-derives
/// today; a `metrics::snapshot()` after the run sees them regardless of
/// whether span tracing is enabled.
struct DriverMetrics {
    update: std::sync::Arc<saga_trace::metrics::Histogram>,
    compute: std::sync::Arc<saga_trace::metrics::Histogram>,
    batch: std::sync::Arc<saga_trace::metrics::Histogram>,
    inserted: std::sync::Arc<saga_trace::metrics::Counter>,
    duplicates: std::sync::Arc<saga_trace::metrics::Counter>,
    removed: std::sync::Arc<saga_trace::metrics::Counter>,
    missing: std::sync::Arc<saga_trace::metrics::Counter>,
    affected: std::sync::Arc<saga_trace::metrics::Counter>,
    /// Process allocation high-water mark (bytes); stays 0 unless the
    /// counting allocator is installed (`alloc-track` in saga-server).
    mem_high: std::sync::Arc<saga_trace::metrics::Gauge>,
}

impl DriverMetrics {
    fn resolve() -> Self {
        Self {
            update: saga_trace::metrics::histogram("driver.update_ns"),
            compute: saga_trace::metrics::histogram("driver.compute_ns"),
            batch: saga_trace::metrics::histogram("driver.batch_ns"),
            inserted: saga_trace::metrics::counter("driver.inserted"),
            duplicates: saga_trace::metrics::counter("driver.duplicates"),
            removed: saga_trace::metrics::counter("driver.removed"),
            missing: saga_trace::metrics::counter("driver.missing"),
            affected: saga_trace::metrics::counter("driver.affected"),
            mem_high: saga_trace::metrics::gauge("mem.high_water"),
        }
    }
}

/// A long-lived per-batch execution session over one graph + compute
/// state, created by [`StreamDriver::session`].
///
/// Each [`step`](DriverSession::step) runs one update phase (ingest +
/// delete + affected derivation) followed by one compute phase — exactly
/// the body of the [`StreamDriver::run`] batch loop — and returns the
/// batch's [`BatchRecord`]. Unlike `run`, the session does not need the
/// whole stream up front, which is what lets `saga-server` host tenants
/// whose streams arrive over the network and never end.
pub struct DriverSession<'d> {
    pool: &'d ThreadPool,
    graph: Box<dyn saga_graph::DeletableGraph>,
    state: ComputeState,
    tracker: AffectedTracker,
    hierarchy: Option<MemoryHierarchy>,
    arch_sim: Option<ArchSimConfig>,
    topo: saga_perf::numa::Topology,
    metrics: DriverMetrics,
    incremental: bool,
    needs_seed_neighborhood: bool,
    seed_delete_neighborhoods: bool,
    next_index: usize,
}

impl std::fmt::Debug for DriverSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriverSession")
            .field("structure", &self.graph.kind())
            .field("batches_stepped", &self.next_index)
            .field("num_edges", &self.graph.num_edges())
            .finish()
    }
}

impl DriverSession<'_> {
    /// Processes one batch (insertions then deletions, the window
    /// semantics every churn transform assumes) and returns its record.
    /// Batch indices count up from 0 in step order.
    pub fn step(&mut self, inserts: &[Edge], deletes: &[Edge]) -> BatchRecord {
        let index = self.next_index;
        self.next_index += 1;
        let batch_len = inserts.len() + deletes.len();
        let _batch_span = saga_trace::span!("batch", index = index as u64);

        // --- Update phase ---
        let update_span = saga_trace::span!("update", edges = batch_len as u64);
        let mut update_trace = None;
        let sw = Stopwatch::start();
        let graph = &self.graph;
        let pool = self.pool;
        let apply = || {
            let stats = {
                let _s = saga_trace::span!("ingest", edges = inserts.len() as u64);
                graph.update_batch(inserts, pool)
            };
            let del_stats = if deletes.is_empty() {
                Default::default()
            } else {
                let _s = saga_trace::span!("delete", edges = deletes.len() as u64);
                graph.delete_batch(deletes, pool)
            };
            (stats, del_stats)
        };
        let (stats, del_stats) = if self.hierarchy.is_some() {
            let mut out = None;
            let trace = trace_phase(pool, || out = Some(apply()));
            update_trace = Some(trace);
            out.unwrap()
        } else {
            apply()
        };
        // Deriving the affected array is part of the update phase's
        // bookkeeping (Algorithm 1 receives it from the update).
        let impact = if self.incremental {
            self.tracker.process_mixed_batch(
                self.graph.as_ref(),
                inserts,
                deletes,
                self.needs_seed_neighborhood,
                self.seed_delete_neighborhoods,
                pool,
            )
        } else {
            Default::default()
        };
        let update_seconds = sw.elapsed_secs();
        drop(update_span);
        saga_trace::instant!("removed", count = del_stats.removed as u64);
        saga_trace::instant!("missing", count = del_stats.missing as u64);

        // --- Compute phase ---
        let compute_span = saga_trace::span!("compute", affected = impact.affected.len() as u64);
        let mut compute_trace = None;
        let sw = Stopwatch::start();
        let graph = &self.graph;
        let run_compute = |state: &mut ComputeState| match state {
            ComputeState::Serial(s) => s.perform_alg_with_deletions(
                graph.as_ref(),
                &impact.affected,
                &impact.new_vertices,
                deletes,
                pool,
            ),
            ComputeState::Sharded(s) => {
                s.perform_batch(graph.as_ref(), &impact.affected, !deletes.is_empty(), pool)
            }
        };
        let compute = if self.hierarchy.is_some() {
            let mut out = None;
            let state = &mut self.state;
            let trace = trace_phase(pool, || {
                out = Some(run_compute(state));
            });
            compute_trace = Some(trace);
            out.unwrap()
        } else {
            run_compute(&mut self.state)
        };
        let compute_seconds = sw.elapsed_secs();
        drop(compute_span);

        self.metrics.update.record_secs(update_seconds);
        self.metrics.compute.record_secs(compute_seconds);
        self.metrics.batch.record_secs(update_seconds + compute_seconds);
        self.metrics.inserted.add(stats.inserted as u64);
        self.metrics.duplicates.add(stats.duplicates as u64);
        self.metrics.removed.add(del_stats.removed as u64);
        self.metrics.missing.add(del_stats.missing as u64);
        self.metrics.affected.add(impact.affected.len() as u64);
        if saga_trace::alloc::tracking_active() {
            self.metrics.mem_high.set(saga_trace::alloc::high_water_bytes() as f64);
        }

        let arch = self.hierarchy.as_mut().map(|h| {
            let a = self.arch_sim.as_ref().unwrap();
            let update = h.replay(update_trace.as_ref().unwrap());
            let compute = h.replay(compute_trace.as_ref().unwrap());
            let update_bw = estimate(&update, &a.time_model, &self.topo);
            let compute_bw = estimate(&compute, &a.time_model, &self.topo);
            saga_trace::metrics::gauge("perf.update.dram_gbps").set(update_bw.dram_gbps);
            saga_trace::metrics::gauge("perf.compute.dram_gbps").set(compute_bw.dram_gbps);
            saga_trace::metrics::gauge("perf.compute.qpi_utilization")
                .set(compute_bw.qpi_utilization);
            ArchRecord {
                update_bw,
                compute_bw,
                update,
                compute,
            }
        });

        BatchRecord {
            index,
            batch_len,
            update_seconds,
            compute_seconds,
            inserted: stats.inserted,
            duplicates: stats.duplicates,
            removed: del_stats.removed,
            missing: del_stats.missing,
            compute,
            arch,
        }
    }

    /// The live graph.
    pub fn graph(&self) -> &dyn saga_graph::DynamicGraph {
        self.graph.as_ref()
    }

    /// Borrow of the live compute state (serial or sharded).
    pub fn state_ref(&self) -> ComputeStateRef<'_> {
        match &self.state {
            ComputeState::Serial(s) => ComputeStateRef::Serial(s),
            ComputeState::Sharded(s) => ComputeStateRef::Sharded(s),
        }
    }

    /// Current vertex property values.
    pub fn values(&self) -> VertexValues {
        match &self.state {
            ComputeState::Serial(s) => s.values(),
            ComputeState::Sharded(s) => s.values(),
        }
    }

    /// Number of batches stepped so far.
    pub fn batches_stepped(&self) -> usize {
        self.next_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_stream::profiles::DatasetProfile;

    fn tiny_stream() -> saga_stream::EdgeStream {
        DatasetProfile::livejournal().scaled(300, 2_400).generate(3)
    }

    #[test]
    fn driver_runs_all_batches_and_counts_edges() {
        let stream = tiny_stream();
        let mut driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, 300)
            .algorithm(AlgorithmKind::Bfs)
            .compute_model(ComputeModelKind::Incremental)
            .batch_size(800)
            .threads(2)
            .build();
        let outcome = driver.run(&stream);
        assert_eq!(outcome.batches.len(), 3);
        let inserted: usize = outcome.batches.iter().map(|b| b.inserted).sum();
        assert_eq!(inserted, outcome.total_edges);
        let processed: usize = outcome.batches.iter().map(|b| b.batch_len).sum();
        assert_eq!(processed, 2_400);
        for b in &outcome.batches {
            assert!(b.update_seconds > 0.0);
            assert!(b.compute_seconds > 0.0);
            assert!(b.update_fraction() > 0.0 && b.update_fraction() < 1.0);
            assert!(b.arch.is_none());
        }
    }

    #[test]
    fn fs_and_inc_drivers_agree_on_final_values() {
        let stream = tiny_stream();
        let run = |model| {
            let mut driver = StreamDriver::builder(DataStructureKind::Stinger, 300)
                .algorithm(AlgorithmKind::Cc)
                .compute_model(model)
                .batch_size(600)
                .threads(3)
                .build();
            driver.run(&stream).final_values
        };
        assert_eq!(
            run(ComputeModelKind::FromScratch),
            run(ComputeModelKind::Incremental)
        );
    }

    #[test]
    fn churn_stream_routes_deletions_and_keeps_models_agreeing() {
        let stream = DatasetProfile::livejournal()
            .scaled(300, 2_400)
            .with_churn(0.2)
            .generate(11);
        assert!(stream.has_deletions());
        let run = |model| {
            let mut driver = StreamDriver::builder(DataStructureKind::AdjacencyShared, 300)
                .algorithm(AlgorithmKind::Bfs)
                .compute_model(model)
                .batch_size(800)
                .threads(2)
                .build();
            driver.run(&stream)
        };
        let inc = run(ComputeModelKind::Incremental);
        let removed: usize = inc.batches.iter().map(|b| b.removed).sum();
        assert!(removed > 0, "churn stream must exercise delete_batch");
        let inserted: usize = inc.batches.iter().map(|b| b.inserted).sum();
        assert_eq!(inserted - removed, inc.total_edges);
        let fs = run(ComputeModelKind::FromScratch);
        assert_eq!(inc.final_values, fs.final_values);
    }

    #[test]
    fn sharded_driver_matches_serial_final_values() {
        let stream = tiny_stream();
        for algorithm in [AlgorithmKind::Bfs, AlgorithmKind::Sswp] {
            for model in ComputeModelKind::ALL {
                let run = |shards: Option<usize>| {
                    let mut b = StreamDriver::builder(DataStructureKind::AdjacencyShared, 300)
                        .algorithm(algorithm)
                        .compute_model(model)
                        .batch_size(800)
                        .threads(2);
                    if let Some(s) = shards {
                        b = b.sharded(s);
                    }
                    b.build().run(&stream).final_values
                };
                assert_eq!(
                    run(Some(3)),
                    run(None),
                    "{algorithm:?}/{model:?}: sharded BSP diverged from serial"
                );
            }
        }
    }

    #[test]
    fn sharded_driver_observer_sees_sharded_state() {
        let stream = tiny_stream();
        let mut driver = StreamDriver::builder(DataStructureKind::Dah, 300)
            .algorithm(AlgorithmKind::Cc)
            .batch_size(800)
            .threads(2)
            .sharded(4)
            .build();
        let mut observed = 0;
        driver.run_observed(&stream, |_, _, state| {
            let sharded = state.as_sharded().expect("sharded builder → sharded state");
            assert_eq!(sharded.shards(), 4);
            assert!(state.as_serial().is_none());
            observed += 1;
        });
        assert_eq!(observed, 3);
    }

    #[test]
    fn arch_sim_produces_phase_reports() {
        let stream = DatasetProfile::wiki().scaled(200, 1_000).generate(9);
        let mut driver = StreamDriver::builder(DataStructureKind::Dah, 200)
            .algorithm(AlgorithmKind::PageRank)
            .batch_size(500)
            .threads(2)
            .arch_sim(ArchSimConfig::default())
            .build();
        let outcome = driver.run(&stream);
        assert_eq!(outcome.batches.len(), 2);
        for b in &outcome.batches {
            let arch = b.arch.as_ref().expect("arch sim enabled");
            assert!(arch.update.accesses > 0, "update phase must touch memory");
            assert!(arch.compute.accesses > 0, "compute phase must touch memory");
            assert!(arch.update_bw.seconds > 0.0);
            assert!(arch.compute_bw.seconds > 0.0);
        }
    }
}
