//! Software prefetch hints for the suite's hot neighbor-scan loops.
//!
//! The streaming-graph compute phase is dominated by reads whose addresses
//! are known several iterations ahead of their use — the next entries of a
//! CSR edge slice, the property slots of the vertices queued behind the
//! current frontier cursor. Issuing a prefetch hint for those addresses
//! overlaps their cache-miss latency with useful work, which is exactly the
//! access-pattern remedy the memory-characterization literature prescribes
//! for graph workloads (and what the paper's PCM counters would observe as
//! a lower miss rate).
//!
//! This module is the **only** place in the workspace allowed to touch the
//! raw prefetch intrinsics (`cargo xtask lint` enforces that): every call
//! site elsewhere goes through the safe wrappers below, which compile to
//! `_mm_prefetch` on x86-64 and to nothing on other targets.
//!
//! # Examples
//!
//! ```
//! use saga_utils::prefetch;
//!
//! let edges: Vec<u64> = (0..64).collect();
//! let mut sum = 0u64;
//! for i in 0..edges.len() {
//!     prefetch::prefetch_index(&edges, i + prefetch::PREFETCH_DISTANCE);
//!     sum += edges[i];
//! }
//! assert_eq!(sum, 64 * 63 / 2);
//! ```

/// How far ahead of the consuming iteration the scan loops hint. Eight
/// entries is far enough to cover an L2 miss at the suite's scan speeds
/// while staying inside one-or-two cache lines of lead for small elements.
pub const PREFETCH_DISTANCE: usize = 8;

/// Hints that the cache line containing `*ptr` will be read soon
/// (temporal, all cache levels — `_MM_HINT_T0`).
///
/// Accepts any pointer value: prefetch is a hint, not an access, so a
/// dangling or out-of-bounds address is harmless (the hint is dropped).
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` never dereferences its operand; it is a pure
    // scheduling hint with no architectural effect, so it is sound for any
    // address value, including null and dangling pointers. The intrinsic
    // is baseline SSE, available on every x86_64 target.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Prefetches `slice[i]` if `i` is in bounds; quietly does nothing
/// otherwise, so scan loops can hint `i + PREFETCH_DISTANCE` without
/// guarding the tail.
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], i: usize) {
    if let Some(elem) = slice.get(i) {
        prefetch_read(elem as *const T);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_transparent_to_the_scan() {
        let data: Vec<u32> = (0..100).collect();
        let mut with_hints = 0u64;
        for i in 0..data.len() {
            prefetch_index(&data, i + PREFETCH_DISTANCE);
            with_hints += data[i] as u64;
        }
        let plain: u64 = data.iter().map(|&x| x as u64).sum();
        assert_eq!(with_hints, plain);
    }

    #[test]
    fn out_of_bounds_hints_are_dropped() {
        let data = [1u8, 2, 3];
        prefetch_index(&data, 3);
        prefetch_index(&data, usize::MAX);
        let empty: [u64; 0] = [];
        prefetch_index(&empty, 0);
    }

    #[test]
    fn raw_pointer_hint_accepts_any_address() {
        prefetch_read(std::ptr::null::<u64>());
        let x = 42u64;
        prefetch_read(&x as *const u64);
        assert_eq!(x, 42);
    }
}
