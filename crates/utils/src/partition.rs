//! Two-pass parallel counting-sort (radix) partitioner for batch ingestion.
//!
//! The update phase of the chunked data structures must route every edge of
//! a batch to the chunk that owns its key vertex. Rescanning the whole
//! batch once per chunk costs O(batch × chunks) key evaluations; this
//! module brings that down to O(batch) with a classic two-pass counting
//! sort:
//!
//! 1. **Histogram** — the batch is split into one contiguous range per
//!    worker; each worker evaluates the bucket key of its items once,
//!    caches it, and counts items per bucket in a private histogram row.
//! 2. **Prefix sum** — a (cheap, sequential) exclusive prefix over the
//!    `workers × buckets` histogram assigns every (worker, bucket) pair a
//!    disjoint output window, bucket-major so each bucket's items end up
//!    contiguous, worker-major within a bucket so the overall order is the
//!    original batch order (the sort is stable).
//! 3. **Scatter** — each worker replays its range (using the cached keys,
//!    so keys are evaluated exactly once per item) and writes item indices
//!    into its windows.
//!
//! All scratch (cached keys, histogram, output index) lives in the
//! [`Partitioner`] and is reused across batches, so steady-state
//! partitioning allocates nothing.
//!
//! # Examples
//!
//! ```
//! use saga_utils::parallel::ThreadPool;
//! use saga_utils::partition::Partitioner;
//!
//! let pool = ThreadPool::new(2);
//! let items = [5u32, 8, 13, 2, 7];
//! let mut p = Partitioner::new();
//! p.partition(&pool, items.len(), 4, |i| items[i] as usize % 4);
//! assert_eq!(p.bucket(0), &[1]);       // 8
//! assert_eq!(p.bucket(1), &[0, 2]);    // 5, 13 — stable (batch order)
//! assert_eq!(p.bucket(2), &[3]);       // 2
//! assert_eq!(p.bucket(3), &[4]);       // 7
//! ```

use crate::parallel::{per_worker_share, static_chunk, ThreadPool};
use crate::probe;
use std::marker::PhantomData;

/// Below this many items per worker the two parallel passes are not worth
/// two fork-joins; the partitioner runs both passes inline on the caller.
#[cfg(not(loom))]
const SEQUENTIAL_CUTOFF: usize = 64;

/// Under the loom model the cutoff drops to 1 so that tiny model-checked
/// batches still exercise the parallel histogram/scatter path.
#[cfg(loom)]
const SEQUENTIAL_CUTOFF: usize = 1;

/// A writable slice view that can be shared across pool workers.
///
/// Workers write **disjoint** positions (their own item range, their own
/// histogram row, their own scatter windows), and the pool's fork-join
/// barrier orders every write before the dispatcher reads the results, so
/// the aliasing is sound. See the `SAFETY` notes at each use.
struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: workers only touch disjoint positions (enforced by each caller's
// `SAFETY` note) and the fork-join barrier sequences their writes before
// the dispatcher's reads, so sharing the raw view is sound for `T: Send`.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// # Safety
    ///
    /// `i < len`, and no other worker may read or write position `i`
    /// between the enclosing fork and join.
    #[inline]
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        // SAFETY: forwarded contract — `i < len` and exclusivity of
        // position `i` are the caller's obligations (see `# Safety`).
        unsafe { self.ptr.add(i).write(value) };
    }

    /// # Safety
    ///
    /// Same disjointness contract as [`write`](Self::write).
    #[inline]
    unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        // SAFETY: forwarded contract — same disjointness obligation as
        // `write` (see `# Safety`).
        unsafe { self.ptr.add(i).read() }
    }
}

/// Reusable two-pass counting-sort partitioner.
///
/// One `Partitioner` holds the scratch for partitioning one item sequence
/// by one key; callers that partition the same batch by several keys (e.g.
/// a graph's out- and in-chunk of each edge) keep one `Partitioner` per
/// key. See the module docs for the algorithm.
pub struct Partitioner {
    /// Cached bucket key per item (pass 1 output, pass 2 input).
    keys: Vec<u32>,
    /// Item indices grouped by bucket (the partition itself).
    index: Vec<u32>,
    /// `workers × buckets` histogram, worker-major; after the prefix sum it
    /// holds each (worker, bucket) scatter cursor.
    cursors: Vec<usize>,
    /// `buckets + 1` exclusive prefix bounds into `index`.
    bounds: Vec<usize>,
    /// Items covered by the last `partition` call.
    len: usize,
}

impl std::fmt::Debug for Partitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partitioner")
            .field("len", &self.len)
            .field("buckets", &self.buckets())
            .finish()
    }
}

impl Default for Partitioner {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner {
    /// Creates an empty partitioner. Scratch grows on first use and is
    /// reused afterwards.
    pub fn new() -> Self {
        Self {
            keys: Vec::new(),
            index: Vec::new(),
            cursors: Vec::new(),
            bounds: Vec::new(),
            len: 0,
        }
    }

    /// Number of buckets of the last `partition` call.
    pub fn buckets(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Items covered by the last `partition` call.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last `partition` call covered zero items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The item indices of bucket `b`, in original item order (the sort is
    /// stable).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a bucket of the last `partition` call.
    #[inline]
    pub fn bucket(&self, b: usize) -> &[u32] {
        &self.index[self.bounds[b]..self.bounds[b + 1]]
    }

    /// Partitions item indices `0..n_items` into `buckets` groups by
    /// `key(i)`, evaluating `key` exactly once per item.
    ///
    /// Runs the histogram and scatter passes on `pool` when the batch is
    /// large enough to amortize two fork-joins (see
    /// [`per_worker_share`]), inline otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or any `key(i) >= buckets`.
    pub fn partition<K>(&mut self, pool: &ThreadPool, n_items: usize, buckets: usize, key: K)
    where
        K: Fn(usize) -> usize + Sync,
    {
        assert!(buckets > 0, "partition needs at least one bucket");
        assert!(
            n_items <= u32::MAX as usize && buckets <= u32::MAX as usize,
            "partitioner indexes items and buckets with u32"
        );
        let workers = if per_worker_share(n_items, pool.threads()) < SEQUENTIAL_CUTOFF {
            1
        } else {
            pool.threads()
        };
        self.len = n_items;
        self.keys.resize(n_items, 0);
        self.index.resize(n_items, 0);
        self.cursors.clear();
        self.cursors.resize(workers * buckets, 0);
        self.bounds.clear();
        self.bounds.resize(buckets + 1, 0);

        // Pass 1: per-worker histogram over a contiguous item range, caching
        // each item's key.
        {
            let keys = SharedSlice::new(&mut self.keys);
            let cursors = SharedSlice::new(&mut self.cursors);
            let histogram = |w: usize| {
                let (lo, hi) = static_chunk(n_items, workers, w);
                for i in lo..hi {
                    let k = key(i);
                    assert!(k < buckets, "bucket key {k} out of range {buckets}");
                    // SAFETY: item `i` is in worker `w`'s exclusive range;
                    // histogram row `w` is worker `w`'s own.
                    unsafe {
                        keys.write(i, k as u32);
                        let row = w * buckets + k;
                        cursors.write(row, cursors.read(row) + 1);
                    }
                }
                // The cached keys are the pass's working set (one store per
                // item); recorded coarsely for the cache simulator.
                // SAFETY: `lo <= len`, so the offset pointer stays within
                // (one past) the allocation; it is only used as an address.
                probe::write(unsafe { keys.ptr.add(lo) } as *const u32, hi - lo);
            };
            if workers == 1 {
                histogram(0);
            } else {
                pool.run_on_all(histogram);
            }
        }

        // Prefix sum: bucket-major bounds, worker-major cursors within each
        // bucket — this is what makes the scatter stable.
        let mut running = 0;
        for b in 0..buckets {
            self.bounds[b] = running;
            for w in 0..workers {
                let c = self.cursors[w * buckets + b];
                self.cursors[w * buckets + b] = running;
                running += c;
            }
        }
        self.bounds[buckets] = running;
        debug_assert_eq!(running, n_items);

        // Pass 2: scatter item indices into each worker's windows, replaying
        // the cached keys (no second key evaluation).
        {
            let keys = SharedSlice::new(&mut self.keys);
            let index = SharedSlice::new(&mut self.index);
            let cursors = SharedSlice::new(&mut self.cursors);
            let scatter = |w: usize| {
                let (lo, hi) = static_chunk(n_items, workers, w);
                for i in lo..hi {
                    // SAFETY: key `i` was written by this worker in pass 1
                    // (same range split); cursor row `w` is this worker's
                    // own; the prefix sum gave each (worker, bucket) pair a
                    // disjoint window of `index`.
                    unsafe {
                        let row = w * buckets + keys.read(i) as usize;
                        let pos = cursors.read(row);
                        index.write(pos, i as u32);
                        cursors.write(row, pos + 1);
                    }
                }
                // SAFETY: as in pass 1 — `lo <= len` keeps the offset in
                // bounds; the pointer is only recorded as an address.
                probe::read(unsafe { keys.ptr.add(lo) } as *const u32, hi - lo);
                // The scatter writes land across the whole index array;
                // record this worker's share at item granularity.
                probe::write(index.ptr as *const u32, hi - lo);
            };
            if workers == 1 {
                scatter(0);
            } else {
                pool.run_on_all(scatter);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(p: &Partitioner) -> Vec<Vec<u32>> {
        (0..p.buckets()).map(|b| p.bucket(b).to_vec()).collect()
    }

    #[test]
    fn empty_input_yields_empty_buckets() {
        let pool = ThreadPool::new(2);
        let mut p = Partitioner::new();
        p.partition(&pool, 0, 3, |_| unreachable!("no items"));
        assert!(p.is_empty());
        assert_eq!(collect(&p), vec![Vec::<u32>::new(); 3]);
    }

    /// Miri interprets every instruction; shrink batch sizes so the suite
    /// stays Miri-sized while native runs keep full coverage.
    const fn scaled(n: usize) -> usize {
        if cfg!(miri) {
            n / 50
        } else {
            n
        }
    }

    #[test]
    fn single_bucket_keeps_order() {
        let pool = ThreadPool::new(2);
        let mut p = Partitioner::new();
        p.partition(&pool, 5, 1, |_| 0);
        assert_eq!(p.bucket(0), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn partition_is_stable_and_exact() {
        let pool = ThreadPool::new(4);
        let n = scaled(10_000);
        let buckets = 7;
        let key = |i: usize| (i * 31 + i / 13) % buckets;
        let mut p = Partitioner::new();
        p.partition(&pool, n, buckets, key);
        let mut seen = 0;
        for b in 0..buckets {
            let items = p.bucket(b);
            seen += items.len();
            // Every item belongs here, and stability means ascending order.
            assert!(items.windows(2).all(|w| w[0] < w[1]), "bucket {b} not stable");
            assert!(items.iter().all(|&i| key(i as usize) == b));
        }
        assert_eq!(seen, n);
    }

    #[test]
    fn matches_sequential_reference_across_thread_counts() {
        let n = scaled(4_000) + 97;
        let buckets = 5;
        let key = |i: usize| (i * 7919) % buckets;
        let mut expected: Vec<Vec<u32>> = vec![Vec::new(); buckets];
        for i in 0..n {
            expected[key(i)].push(i as u32);
        }
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let mut p = Partitioner::new();
            p.partition(&pool, n, buckets, key);
            assert_eq!(collect(&p), expected, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_is_reused_across_batches() {
        let pool = ThreadPool::new(2);
        let mut p = Partitioner::new();
        p.partition(&pool, scaled(1_000), 4, |i| i % 4);
        let first: Vec<_> = collect(&p);
        // A smaller batch with different geometry must fully overwrite the
        // previous result.
        p.partition(&pool, 10, 2, |i| i % 2);
        assert_eq!(p.len(), 10);
        assert_eq!(p.buckets(), 2);
        assert_eq!(p.bucket(0), &[0, 2, 4, 6, 8]);
        assert_eq!(p.bucket(1), &[1, 3, 5, 7, 9]);
        // And re-running the first geometry reproduces it exactly.
        p.partition(&pool, scaled(1_000), 4, |i| i % 4);
        assert_eq!(collect(&p), first);
    }

    #[test]
    fn key_evaluated_exactly_once_per_item() {
        use crate::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPool::new(4);
        let evals = AtomicUsize::new(0);
        let n = scaled(10_000);
        let mut p = Partitioner::new();
        p.partition(&pool, n, 16, |i| {
            evals.fetch_add(1, Ordering::Relaxed);
            i % 16
        });
        assert_eq!(evals.load(Ordering::Relaxed), n);
    }

    #[test]
    #[should_panic(expected = "bucket key")]
    fn out_of_range_key_panics() {
        let pool = ThreadPool::new(1);
        let mut p = Partitioner::new();
        p.partition(&pool, 4, 2, |_| 2);
    }

    #[test]
    fn heavy_skew_single_bucket_holds_everything() {
        let pool = ThreadPool::new(4);
        let n = scaled(5_000);
        let mut p = Partitioner::new();
        // Hub pattern: every item lands in bucket 3.
        p.partition(&pool, n, 8, |_| 3);
        for b in 0..8 {
            assert_eq!(p.bucket(b).len(), if b == 3 { n } else { 0 });
        }
        assert!(p.bucket(3).windows(2).all(|w| w[0] < w[1]));
    }
}
