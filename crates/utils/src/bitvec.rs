//! Atomic bitvector with compare-and-swap set.
//!
//! Algorithm 1 of the paper guards frontier insertion with
//! `CAS(visited[j], false, true)` (line 14) so that each vertex enters the
//! next frontier queue at most once per iteration. [`AtomicBitVec::try_set`]
//! provides exactly that primitive.

use crate::sync::atomic::{AtomicU64, Ordering};

/// A fixed-length bitvector whose bits can be set concurrently.
///
/// # Examples
///
/// ```
/// use saga_utils::bitvec::AtomicBitVec;
///
/// let visited = AtomicBitVec::new(100);
/// assert!(visited.try_set(42)); // first setter wins
/// assert!(!visited.try_set(42)); // second setter loses
/// assert!(visited.get(42));
/// ```
#[derive(Debug)]
pub struct AtomicBitVec {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitVec {
    /// Creates a bitvector of `len` zero bits.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = self.words[i / 64].load(Ordering::Acquire);
        word & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i` unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64].fetch_or(1u64 << (i % 64), Ordering::AcqRel);
    }

    /// Atomically sets bit `i`, returning `true` iff this call changed it
    /// from 0 to 1 (the `CAS(visited[j], false, true)` of Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn try_set(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_or(mask, Ordering::AcqRel);
        prev & mask == 0
    }

    /// Clears every bit (requires exclusive access; used between frontier
    /// iterations, Algorithm 1 line 20).
    pub fn clear_all(&mut self) {
        for word in &self.words {
            word.store(0, Ordering::Release);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }
}

/// Generation-stamped concurrent marks: an `O(1)`-reset alternative to
/// `vec![false; n]` per batch.
///
/// Each slot stores the generation in which it was last marked. Bumping the
/// generation (one integer increment) unmarks every slot at once, so a
/// tracker that processes thousands of batches never re-allocates or
/// re-zeroes its scratch. [`try_mark`](GenerationMarks::try_mark) is the
/// same first-setter-wins CAS primitive as [`AtomicBitVec::try_set`].
///
/// # Examples
///
/// ```
/// use saga_utils::bitvec::GenerationMarks;
///
/// let mut marks = GenerationMarks::new(100);
/// marks.next_generation();
/// assert!(marks.try_mark(7));
/// assert!(!marks.try_mark(7)); // already marked this generation
/// marks.next_generation(); // O(1) reset
/// assert!(!marks.is_marked(7));
/// assert!(marks.try_mark(7));
/// ```
pub struct GenerationMarks {
    stamps: Vec<AtomicU64>,
    generation: u64,
}

impl std::fmt::Debug for GenerationMarks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerationMarks")
            .field("len", &self.stamps.len())
            .field("generation", &self.generation)
            .finish()
    }
}

impl GenerationMarks {
    /// Creates `len` unmarked slots. Generation 0 is reserved as "never
    /// marked"; call [`next_generation`](Self::next_generation) before the
    /// first marking round.
    pub fn new(len: usize) -> Self {
        Self {
            stamps: (0..len).map(|_| AtomicU64::new(0)).collect(),
            generation: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether there are zero slots.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Starts a new generation, logically unmarking every slot in `O(1)`.
    /// Requires exclusive access: marking and resetting never race.
    pub fn next_generation(&mut self) {
        self.generation += 1;
    }

    /// Grows to at least `len` slots (new slots are unmarked). Existing
    /// marks are preserved.
    pub fn resize(&mut self, len: usize) {
        while self.stamps.len() < len {
            self.stamps.push(AtomicU64::new(0));
        }
    }

    /// Atomically marks slot `i` for the current generation, returning
    /// `true` iff this call is the generation's first mark of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn try_mark(&self, i: usize) -> bool {
        let stamp = &self.stamps[i];
        let mut seen = stamp.load(Ordering::Acquire);
        while seen != self.generation {
            match stamp.compare_exchange_weak(
                seen,
                self.generation,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                // Another thread raced us; if it installed the current
                // generation we lost, otherwise retry from its value.
                Err(now) => seen = now,
            }
        }
        false
    }

    /// Whether slot `i` is marked in the current generation.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamps[i].load(Ordering::Acquire) == self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::AtomicUsize;

    #[test]
    fn new_is_all_zero() {
        let bv = AtomicBitVec::new(130);
        assert_eq!(bv.len(), 130);
        assert!(!bv.is_empty());
        for i in 0..130 {
            assert!(!bv.get(i));
        }
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn set_and_get_across_word_boundaries() {
        let bv = AtomicBitVec::new(200);
        for i in [0usize, 63, 64, 127, 128, 199] {
            bv.set(i);
            assert!(bv.get(i));
        }
        assert_eq!(bv.count_ones(), 6);
    }

    #[test]
    fn try_set_returns_true_exactly_once() {
        let bv = AtomicBitVec::new(64);
        assert!(bv.try_set(10));
        assert!(!bv.try_set(10));
        assert!(bv.get(10));
    }

    #[test]
    fn clear_all_resets() {
        let mut bv = AtomicBitVec::new(100);
        for i in 0..100 {
            bv.set(i);
        }
        bv.clear_all();
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let bv = AtomicBitVec::new(10);
        bv.get(10);
    }

    #[test]
    fn generation_marks_fresh_are_unmarked() {
        let mut marks = GenerationMarks::new(64);
        assert_eq!(marks.len(), 64);
        marks.next_generation();
        for i in 0..64 {
            assert!(!marks.is_marked(i));
        }
    }

    #[test]
    fn generation_bump_is_an_o1_reset() {
        let mut marks = GenerationMarks::new(16);
        marks.next_generation();
        assert!(marks.try_mark(3));
        assert!(!marks.try_mark(3));
        assert!(marks.is_marked(3));
        marks.next_generation();
        assert!(!marks.is_marked(3));
        assert!(marks.try_mark(3));
    }

    #[test]
    fn generation_marks_resize_preserves_marks() {
        let mut marks = GenerationMarks::new(4);
        marks.next_generation();
        assert!(marks.try_mark(1));
        marks.resize(10);
        assert_eq!(marks.len(), 10);
        assert!(marks.is_marked(1));
        assert!(!marks.is_marked(9));
        assert!(marks.try_mark(9));
    }

    /// Miri interprets every instruction; shrink the racing index space
    /// so the suite stays Miri-sized while native runs keep full coverage.
    const SLOTS: usize = if cfg!(miri) { 50 } else { 500 };

    #[test]
    fn concurrent_try_mark_has_single_winner() {
        use crate::parallel::{Schedule, ThreadPool};
        let pool = ThreadPool::new(4);
        let mut marks = GenerationMarks::new(SLOTS);
        for _round in 0..3 {
            marks.next_generation();
            let wins = AtomicUsize::new(0);
            let marks_ref = &marks;
            pool.parallel_for(0..4 * SLOTS, Schedule::Dynamic(11), |i| {
                if marks_ref.try_mark(i % SLOTS) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), SLOTS);
        }
    }

    #[test]
    fn concurrent_try_set_has_single_winner() {
        use crate::parallel::{Schedule, ThreadPool};
        let pool = ThreadPool::new(4);
        let bv = AtomicBitVec::new(2 * SLOTS);
        let wins = AtomicUsize::new(0);
        // Every thread races on every bit; each bit must be won exactly once.
        pool.parallel_for(0..8 * SLOTS, Schedule::Dynamic(13), |i| {
            if bv.try_set(i % (2 * SLOTS)) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 2 * SLOTS);
        assert_eq!(bv.count_ones(), 2 * SLOTS);
    }
}
