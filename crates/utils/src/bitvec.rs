//! Atomic bitvector with compare-and-swap set.
//!
//! Algorithm 1 of the paper guards frontier insertion with
//! `CAS(visited[j], false, true)` (line 14) so that each vertex enters the
//! next frontier queue at most once per iteration. [`AtomicBitVec::try_set`]
//! provides exactly that primitive.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-length bitvector whose bits can be set concurrently.
///
/// # Examples
///
/// ```
/// use saga_utils::bitvec::AtomicBitVec;
///
/// let visited = AtomicBitVec::new(100);
/// assert!(visited.try_set(42)); // first setter wins
/// assert!(!visited.try_set(42)); // second setter loses
/// assert!(visited.get(42));
/// ```
#[derive(Debug)]
pub struct AtomicBitVec {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitVec {
    /// Creates a bitvector of `len` zero bits.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = self.words[i / 64].load(Ordering::Acquire);
        word & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i` unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64].fetch_or(1u64 << (i % 64), Ordering::AcqRel);
    }

    /// Atomically sets bit `i`, returning `true` iff this call changed it
    /// from 0 to 1 (the `CAS(visited[j], false, true)` of Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn try_set(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_or(mask, Ordering::AcqRel);
        prev & mask == 0
    }

    /// Clears every bit (requires exclusive access; used between frontier
    /// iterations, Algorithm 1 line 20).
    pub fn clear_all(&mut self) {
        for word in &self.words {
            word.store(0, Ordering::Release);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn new_is_all_zero() {
        let bv = AtomicBitVec::new(130);
        assert_eq!(bv.len(), 130);
        assert!(!bv.is_empty());
        for i in 0..130 {
            assert!(!bv.get(i));
        }
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn set_and_get_across_word_boundaries() {
        let bv = AtomicBitVec::new(200);
        for i in [0usize, 63, 64, 127, 128, 199] {
            bv.set(i);
            assert!(bv.get(i));
        }
        assert_eq!(bv.count_ones(), 6);
    }

    #[test]
    fn try_set_returns_true_exactly_once() {
        let bv = AtomicBitVec::new(64);
        assert!(bv.try_set(10));
        assert!(!bv.try_set(10));
        assert!(bv.get(10));
    }

    #[test]
    fn clear_all_resets() {
        let mut bv = AtomicBitVec::new(100);
        for i in 0..100 {
            bv.set(i);
        }
        bv.clear_all();
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let bv = AtomicBitVec::new(10);
        bv.get(10);
    }

    #[test]
    fn concurrent_try_set_has_single_winner() {
        use crate::parallel::{Schedule, ThreadPool};
        let pool = ThreadPool::new(4);
        let bv = AtomicBitVec::new(1000);
        let wins = AtomicUsize::new(0);
        // Every thread races on every bit; each bit must be won exactly once.
        pool.parallel_for(0..4000, Schedule::Dynamic(13), |i| {
            if bv.try_set(i % 1000) {
                wins.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1000);
        assert_eq!(bv.count_ones(), 1000);
    }
}
