//! Runtime-toggled memory-access tracing.
//!
//! The paper characterizes the architecture behaviour of streaming graph
//! analytics with Intel Processor Counter Monitor on a dual-socket Xeon.
//! This suite has no PCM, so the graph data structures and compute engines
//! report every significant memory access through the hooks in this module;
//! `saga-perf` then replays the collected trace through a model of the
//! paper's cache hierarchy.
//!
//! Probing is **off by default** and compiles to a single relaxed atomic
//! load on the fast path, so the software-level experiments (Tables III/IV,
//! Figs. 6–8) run untraced at full speed while the architecture-level
//! experiments (Figs. 9b–10) enable it.
//!
//! Accesses are buffered per thread and flushed in blocks tagged with a
//! dense thread index and a global sequence number; `saga-perf` interleaves
//! blocks by sequence to approximate the true cross-thread ordering.
//!
//! # Examples
//!
//! ```
//! use saga_utils::probe;
//!
//! probe::reset();
//! probe::set_enabled(true);
//! let data = vec![1u64, 2, 3, 4];
//! probe::slice_read(&data);
//! probe::set_enabled(false);
//! let trace = probe::take_trace();
//! assert_eq!(trace.total_accesses, 1);
//! ```

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::Mutex;
use std::cell::RefCell;

/// One traced memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Starting byte address of the access.
    pub addr: u64,
    /// Length of the access in bytes.
    pub len: u32,
    /// `true` for stores, `false` for loads.
    pub write: bool,
}

/// A flushed buffer of accesses from one thread.
#[derive(Debug)]
pub struct TraceBlock {
    /// Dense index of the thread that produced the block (stable for the
    /// lifetime of the thread).
    pub thread: usize,
    /// Global flush sequence number; blocks sorted by this approximate the
    /// real cross-thread interleaving.
    pub seq: u64,
    /// The accesses, in program order within the thread.
    pub accesses: Vec<MemAccess>,
}

/// Everything collected between [`reset`] and [`take_trace`].
#[derive(Debug, Default)]
pub struct Trace {
    /// Flushed access blocks (sort by [`TraceBlock::seq`] to interleave).
    pub blocks: Vec<TraceBlock>,
    /// Retired-instruction estimate (one per traced access plus any counts
    /// reported through [`instructions`]).
    pub instructions: u64,
    /// Total accesses *observed*, including ones dropped past the budget.
    pub total_accesses: u64,
    /// Accesses not recorded because the trace budget was exhausted.
    pub dropped: u64,
    /// Cycles spent inside critical sections, keyed by lock id (see
    /// [`critical`]). Work under the same lock cannot overlap, so the
    /// maximum entry lower-bounds the phase's execution time regardless of
    /// thread count — the thread-contention term of Fig. 9a.
    pub lock_cycles: std::collections::HashMap<u64, u64>,
}

impl Trace {
    /// Highest thread index present plus one, i.e. the number of distinct
    /// hardware contexts to model.
    pub fn thread_count(&self) -> usize {
        self.blocks.iter().map(|b| b.thread + 1).max().unwrap_or(0)
    }
}

const FLUSH_THRESHOLD: usize = 1 << 14;
const DEFAULT_BUDGET: u64 = 16_000_000;

static ENABLED: AtomicBool = AtomicBool::new(false);
static INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static BUDGET: AtomicU64 = AtomicU64::new(DEFAULT_BUDGET);
static RECORDED: AtomicU64 = AtomicU64::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD_INDEX: AtomicUsize = AtomicUsize::new(0);

static SINK: Mutex<Vec<TraceBlock>> = Mutex::new(Vec::new());

static LOCK_CYCLES: Mutex<Option<std::collections::HashMap<u64, u64>>> = Mutex::new(None);

thread_local! {
    static THREAD_INDEX: usize = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
    static BUFFER: RefCell<Vec<MemAccess>> = const { RefCell::new(Vec::new()) };
    static LOCAL_LOCKS: RefCell<std::collections::HashMap<u64, u64>> =
        RefCell::new(std::collections::HashMap::new());
}

/// Turns tracing on or off. Cheap enough to toggle around each phase.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// Whether accesses are currently being recorded.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Caps the number of accesses recorded before further ones are counted but
/// dropped. Protects memory on very large runs; the simulator reports
/// ratios, which remain meaningful on the recorded prefix.
pub fn set_budget(max_accesses: u64) {
    BUDGET.store(max_accesses, Ordering::SeqCst);
}

/// Clears every buffer and counter. Call before each traced phase.
pub fn reset() {
    SINK.lock().clear();
    *LOCK_CYCLES.lock() = None;
    INSTRUCTIONS.store(0, Ordering::SeqCst);
    TOTAL.store(0, Ordering::SeqCst);
    DROPPED.store(0, Ordering::SeqCst);
    RECORDED.store(0, Ordering::SeqCst);
    SEQ.store(0, Ordering::SeqCst);
    // Thread-local buffers of other threads are flushed (not cleared) by
    // `flush_thread`; stale contents are prevented by draining in
    // `take_trace` before `reset` in the harness.
}

#[inline]
fn record(addr: u64, len: u32, write: bool) {
    TOTAL.fetch_add(1, Ordering::Relaxed);
    INSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
    if RECORDED.fetch_add(1, Ordering::Relaxed) >= BUDGET.load(Ordering::Relaxed) {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    BUFFER.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.push(MemAccess { addr, len, write });
        if buf.len() >= FLUSH_THRESHOLD {
            flush_locked(&mut buf);
        }
    });
}

fn flush_locked(buf: &mut Vec<MemAccess>) {
    if buf.is_empty() {
        return;
    }
    let block = TraceBlock {
        thread: THREAD_INDEX.with(|t| *t),
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        accesses: std::mem::take(buf),
    };
    SINK.lock().push(block);
}

/// Records a load of `count` elements of `T` starting at `ptr`.
#[inline]
pub fn read<T>(ptr: *const T, count: usize) {
    if is_enabled() {
        record(ptr as u64, (count * std::mem::size_of::<T>()) as u32, false);
    }
}

/// Records a store of `count` elements of `T` starting at `ptr`.
#[inline]
pub fn write<T>(ptr: *const T, count: usize) {
    if is_enabled() {
        record(ptr as u64, (count * std::mem::size_of::<T>()) as u32, true);
    }
}

/// Records a load of an entire slice.
#[inline]
pub fn slice_read<T>(slice: &[T]) {
    if is_enabled() && !slice.is_empty() {
        record(
            slice.as_ptr() as u64,
            std::mem::size_of_val(slice) as u32,
            false,
        );
    }
}

/// Records a load of a single value.
#[inline]
pub fn value_read<T>(value: &T) {
    if is_enabled() {
        record(value as *const T as u64, std::mem::size_of::<T>() as u32, false);
    }
}

/// Records a store to a single value.
#[inline]
pub fn value_write<T>(value: &T) {
    if is_enabled() {
        record(value as *const T as u64, std::mem::size_of::<T>() as u32, true);
    }
}

/// Adds `n` to the retired-instruction estimate (for non-memory work such
/// as hashing or comparisons).
#[inline]
pub fn instructions(n: u64) {
    if is_enabled() {
        INSTRUCTIONS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Reports `cycles` of work performed while holding the lock identified by
/// `lock_id`. Such work serializes across threads, so the per-lock totals
/// bound achievable speedup — the mechanism behind the update phase's poor
/// core scaling on shared-style structures (§VI-B thread contention).
#[inline]
pub fn critical(lock_id: u64, cycles: u64) {
    if is_enabled() {
        LOCAL_LOCKS.with(|m| {
            *m.borrow_mut().entry(lock_id).or_insert(0) += cycles;
        });
    }
}

/// Flushes the calling thread's partial buffer (and per-lock cycle tally)
/// into the global sink.
///
/// The harness runs this on every pool worker (via
/// `ThreadPool::run_on_all`) before calling [`take_trace`].
pub fn flush_thread() {
    BUFFER.with(|buf| flush_locked(&mut buf.borrow_mut()));
    LOCAL_LOCKS.with(|m| {
        let mut local = m.borrow_mut();
        if local.is_empty() {
            return;
        }
        let mut global = LOCK_CYCLES.lock();
        let global = global.get_or_insert_with(std::collections::HashMap::new);
        for (k, v) in local.drain() {
            *global.entry(k).or_insert(0) += v;
        }
    });
}

/// Removes and returns everything collected so far.
pub fn take_trace() -> Trace {
    flush_thread();
    let blocks = std::mem::take(&mut *SINK.lock());
    let lock_cycles = LOCK_CYCLES.lock().take().unwrap_or_default();
    Trace {
        blocks,
        instructions: INSTRUCTIONS.load(Ordering::SeqCst),
        total_accesses: TOTAL.load(Ordering::SeqCst),
        dropped: DROPPED.load(Ordering::SeqCst),
        lock_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Probe state is global; run these serially under one lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_probe_records_nothing() {
        let _guard = TEST_LOCK.lock();
        reset();
        set_enabled(false);
        read(&0u64 as *const u64, 1);
        let trace = take_trace();
        assert_eq!(trace.total_accesses, 0);
        assert!(trace.blocks.is_empty());
    }

    #[test]
    fn enabled_probe_records_reads_and_writes() {
        let _guard = TEST_LOCK.lock();
        reset();
        set_enabled(true);
        let x = 5u32;
        value_read(&x);
        value_write(&x);
        set_enabled(false);
        let trace = take_trace();
        assert_eq!(trace.total_accesses, 2);
        let all: Vec<_> = trace.blocks.iter().flat_map(|b| b.accesses.iter()).collect();
        assert_eq!(all.len(), 2);
        assert!(!all[0].write);
        assert!(all[1].write);
        assert_eq!(all[0].addr, &x as *const u32 as u64);
        assert_eq!(all[0].len, 4);
    }

    #[test]
    fn budget_drops_excess_accesses() {
        let _guard = TEST_LOCK.lock();
        reset();
        set_budget(10);
        set_enabled(true);
        let x = 0u8;
        for _ in 0..25 {
            value_read(&x);
        }
        set_enabled(false);
        let trace = take_trace();
        set_budget(super::DEFAULT_BUDGET);
        assert_eq!(trace.total_accesses, 25);
        assert_eq!(trace.dropped, 15);
        let recorded: usize = trace.blocks.iter().map(|b| b.accesses.len()).sum();
        assert_eq!(recorded, 10);
    }

    #[test]
    fn instructions_counter_accumulates() {
        let _guard = TEST_LOCK.lock();
        reset();
        set_enabled(true);
        instructions(100);
        let x = 1u64;
        value_read(&x); // +1 instruction
        set_enabled(false);
        let trace = take_trace();
        assert_eq!(trace.instructions, 101);
    }

    #[test]
    fn critical_sections_accumulate_per_lock() {
        let _guard = TEST_LOCK.lock();
        reset();
        set_enabled(true);
        critical(7, 10);
        critical(7, 5);
        critical(9, 3);
        set_enabled(false);
        let trace = take_trace();
        assert_eq!(trace.lock_cycles.get(&7), Some(&15));
        assert_eq!(trace.lock_cycles.get(&9), Some(&3));
        // Cleared on take.
        reset();
        set_enabled(true);
        set_enabled(false);
        let trace = take_trace();
        assert!(trace.lock_cycles.is_empty());
    }

    #[test]
    fn critical_disabled_records_nothing() {
        let _guard = TEST_LOCK.lock();
        reset();
        set_enabled(false);
        critical(1, 100);
        let trace = take_trace();
        assert!(trace.lock_cycles.is_empty());
    }

    #[test]
    fn slice_read_len_covers_whole_slice() {
        let _guard = TEST_LOCK.lock();
        reset();
        set_enabled(true);
        let data = [0u64; 8];
        slice_read(&data);
        set_enabled(false);
        let trace = take_trace();
        let all: Vec<_> = trace.blocks.iter().flat_map(|b| b.accesses.iter()).collect();
        assert_eq!(all[0].len, 64);
    }
}
