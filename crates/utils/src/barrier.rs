//! A reusable superstep barrier with leader election.
//!
//! The BSP engine (`saga-bsp`) separates each superstep into a scatter
//! phase, a message exchange, and a gather phase. Phase transitions need
//! two things from a barrier that [`std::sync::Barrier`] bundles awkwardly
//! and `parking_lot` does not provide at all:
//!
//! 1. **Reusability** — the same barrier object is crossed hundreds of
//!    times per run (twice per superstep), so it must reset itself after
//!    every crossing (a *sense-reversing* barrier, implemented here with a
//!    generation counter instead of a boolean sense flag).
//! 2. **Leader election** — exactly one thread per crossing (the last
//!    arriver) returns `true` so it can run sequential between-phase work
//!    (termination check, checkpoint publish, metric flush) while the
//!    others immediately block on the *next* crossing. This is the
//!    double-crossing idiom:
//!
//!    ```text
//!    barrier.wait();                  // end of phase
//!    if leader { sequential work }    // followers already parked below
//!    barrier.wait();                  // release into next phase
//!    ```
//!
//! Built on the [`crate::sync`] facade (Mutex + Condvar), so the whole
//! protocol model-checks under `--cfg loom` (see
//! `crates/utils/tests/loom.rs`).

use crate::sync::{Condvar, Mutex};

/// Shared barrier state behind the mutex.
#[derive(Debug)]
struct State {
    /// Threads that have arrived at the current crossing.
    arrived: usize,
    /// Crossing counter. A waiter records the generation it arrived in and
    /// sleeps until it changes; the last arriver bumps it. This is what
    /// makes the barrier reusable: a thread racing ahead to the next
    /// crossing sees a fresh generation and cannot consume a stale wakeup.
    generation: u64,
}

/// A reusable sense-reversing barrier for a fixed set of participants.
///
/// [`wait`](Barrier::wait) returns `true` for exactly one participant per
/// crossing (the last arriver — the "leader"), `false` for the rest.
///
/// # Examples
///
/// ```
/// use saga_utils::barrier::Barrier;
/// use saga_utils::sync::Arc;
///
/// let barrier = Arc::new(Barrier::new(2));
/// let b = Arc::clone(&barrier);
/// let t = std::thread::spawn(move || b.wait());
/// let leader_here = barrier.wait();
/// let leader_there = t.join().unwrap();
/// assert!(leader_here ^ leader_there); // exactly one leader
/// ```
#[derive(Debug)]
pub struct Barrier {
    participants: usize,
    state: Mutex<State>,
    cvar: Condvar,
}

impl Barrier {
    /// Creates a barrier for `participants` threads.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        Self {
            participants,
            state: Mutex::new(State {
                arrived: 0,
                generation: 0,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Number of threads that must arrive to release a crossing.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Blocks until all participants arrive. Returns `true` for exactly one
    /// caller per crossing — the last arriver — and `false` for the rest.
    ///
    /// The barrier resets itself: the same object can be crossed any number
    /// of times, including immediately by a thread released from the
    /// previous crossing.
    pub fn wait(&self) -> bool {
        let mut state = self.state.lock();
        state.arrived += 1;
        if state.arrived == self.participants {
            state.arrived = 0;
            state.generation = state.generation.wrapping_add(1);
            self.cvar.notify_all();
            true
        } else {
            let generation = state.generation;
            while state.generation == generation {
                self.cvar.wait(&mut state);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::thread::spawn_named;
    use crate::sync::Arc;

    #[test]
    fn single_participant_is_always_leader() {
        let b = Barrier::new(1);
        for _ in 0..5 {
            assert!(b.wait());
        }
    }

    #[test]
    fn elects_exactly_one_leader_per_crossing() {
        const THREADS: usize = 4;
        const CROSSINGS: usize = 50;
        let barrier = Arc::new(Barrier::new(THREADS));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                spawn_named(format!("barrier-test-{i}"), move || {
                    for _ in 0..CROSSINGS {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), CROSSINGS);
    }

    #[test]
    fn double_crossing_publishes_leader_work_to_all() {
        // The BSP idiom: phase work → wait → leader-only sequential step →
        // wait → everyone observes the leader's write.
        const THREADS: usize = 4;
        const ROUNDS: usize = 20;
        let barrier = Arc::new(Barrier::new(THREADS));
        let published = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                let published = Arc::clone(&published);
                spawn_named(format!("barrier-test-{i}"), move || {
                    for round in 0..ROUNDS {
                        if barrier.wait() {
                            published.store(round + 1, Ordering::Relaxed);
                        }
                        barrier.wait();
                        assert_eq!(published.load(Ordering::Relaxed), round + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = Barrier::new(0);
    }
}
