//! Flat structure-of-arrays frontier for level-synchronous traversals.
//!
//! The suite's frontier loops (BFS, delta-stepping SSSP, the incremental
//! model's trigger rounds) used to collect the next level through a
//! Treiber-style segment queue: every push touches a freshly allocated
//! segment and every drain pops one element at a time through a CAS. That
//! is exactly the pointer-chasing, allocation-heavy pattern the
//! memory-characterization literature flags in graph workloads.
//!
//! [`FlatFrontier`] replaces the queue with one flat atomic array and a
//! bump cursor: a push is one `fetch_add` plus one store into contiguous
//! memory, a drain is a single sequential copy, and the backing storage is
//! allocated once and reused across levels. Capacity is the vertex count —
//! sufficient for every CAS-deduplicated frontier (each vertex enters a
//! level at most once); [`FlatFrontier::push`] makes that contract explicit
//! by panicking on overflow instead of silently dropping work.
//!
//! # Examples
//!
//! ```
//! use saga_utils::frontier::FlatFrontier;
//!
//! let mut next = FlatFrontier::new(8);
//! next.push(3);
//! next.push(5);
//! let mut level = Vec::new();
//! next.take_into(&mut level);
//! assert_eq!(level, vec![3, 5]);
//! assert!(next.is_empty());
//! ```

use crate::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// A fixed-capacity concurrent vertex collector: flat storage, atomic bump
/// cursor, bulk drain.
#[derive(Debug)]
pub struct FlatFrontier {
    slots: Vec<AtomicU32>,
    cursor: AtomicUsize,
}

impl FlatFrontier {
    /// Creates a frontier able to hold `capacity` vertices.
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Maximum number of vertices the frontier can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of vertices currently collected. Exact once the pushing
    /// phase has quiesced (the only time the frontier loops read it).
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Whether no vertex has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `v`. Safe to call from any number of threads concurrently.
    ///
    /// # Panics
    ///
    /// Panics if the frontier is full — callers guarantee at most
    /// `capacity` pushes per level (CAS-guarded visited sets make each
    /// vertex push at most once).
    #[inline]
    pub fn push(&self, v: u32) {
        let slot = self.cursor.fetch_add(1, Ordering::AcqRel);
        assert!(
            slot < self.slots.len(),
            "frontier overflow: push #{} into capacity {}",
            slot + 1,
            self.slots.len()
        );
        self.slots[slot].store(v, Ordering::Release);
    }

    /// Drains the collected vertices into `out` (cleared first) and resets
    /// the frontier. Exclusive access guarantees every concurrent push has
    /// completed, so the copy is one sequential sweep.
    pub fn take_into(&mut self, out: &mut Vec<u32>) {
        let len = self.len();
        out.clear();
        out.reserve(len);
        for slot in &self.slots[..len] {
            out.push(slot.load(Ordering::Acquire));
        }
        self.cursor.store(0, Ordering::Release);
    }

    /// Resets the frontier without reading it.
    pub fn clear(&mut self) {
        self.cursor.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_roundtrip() {
        let mut f = FlatFrontier::new(4);
        assert!(f.is_empty());
        assert_eq!(f.capacity(), 4);
        f.push(9);
        f.push(2);
        assert_eq!(f.len(), 2);
        let mut out = vec![99];
        f.take_into(&mut out);
        assert_eq!(out, vec![9, 2]);
        assert!(f.is_empty());
        // Storage is reusable after a drain.
        f.push(7);
        f.take_into(&mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn clear_discards_without_reading() {
        let mut f = FlatFrontier::new(2);
        f.push(1);
        f.clear();
        assert!(f.is_empty());
        f.push(5);
        let mut out = Vec::new();
        f.take_into(&mut out);
        assert_eq!(out, vec![5]);
    }

    #[test]
    #[should_panic(expected = "frontier overflow")]
    fn overflow_panics_instead_of_dropping() {
        let f = FlatFrontier::new(1);
        f.push(0);
        f.push(1);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        use crate::parallel::{Schedule, ThreadPool};
        let n = if cfg!(miri) { 100 } else { 10_000 };
        let pool = ThreadPool::new(4);
        let mut f = FlatFrontier::new(n);
        pool.parallel_for(0..n, Schedule::Dynamic(7), |i| {
            f.push(i as u32);
        });
        let mut out = Vec::new();
        f.take_into(&mut out);
        assert_eq!(out.len(), n);
        out.sort_unstable();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
    }
}
