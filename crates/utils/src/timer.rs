//! Monotonic phase timers.
//!
//! The performance metric of streaming graph analytics is the *batch
//! processing latency* — the sum of the update latency and the compute
//! latency for each batch (Eq. 1 of the paper). The driver wraps each phase
//! in a [`Stopwatch`].

use std::time::{Duration, Instant};

/// A simple monotonic stopwatch.
///
/// # Examples
///
/// ```
/// use saga_utils::timer::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let secs = sw.elapsed_secs();
/// assert!(secs >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as a float, the unit used throughout the paper's
    /// tables.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts the stopwatch and returns the time elapsed up to now.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let elapsed = now - self.start;
        self.start = now;
        elapsed
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn lap_resets_the_clock() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(2));
        // Immediately after a lap the elapsed time is near zero.
        assert!(sw.elapsed() < first);
    }
}
