//! A bounded multi-producer/multi-consumer work queue.
//!
//! This is the admission-control primitive behind `saga-server`: HTTP
//! workers [`try_push`](BoundedQueue::try_push) accepted work and get an
//! immediate `Err` back when the queue is at its bound — which the server
//! surfaces as `429 Too Many Requests` backpressure instead of letting
//! queue depth grow without limit — while a consumer thread blocks in
//! [`pop`](BoundedQueue::pop) until work or shutdown arrives. Control
//! messages that must not be dropped (quiesce barriers, shutdown markers)
//! go through [`push_force`](BoundedQueue::push_force), which ignores the
//! bound but still respects [`close`](BoundedQueue::close).
//!
//! Built purely on the [`crate::sync`] facade (one mutex, one condvar), so
//! the type is loom-modelable like every other protocol in this crate.
//!
//! # Examples
//!
//! ```
//! use saga_utils::queue::BoundedQueue;
//!
//! let q: BoundedQueue<u32> = BoundedQueue::new(2);
//! assert_eq!(q.try_push(1), Ok(1));
//! assert_eq!(q.try_push(2), Ok(2));
//! assert_eq!(q.try_push(3), Err(3), "at bound: producer sees backpressure");
//! assert_eq!(q.pop(), Some(1));
//! q.close();
//! assert_eq!(q.pop(), Some(2), "close drains remaining items");
//! assert_eq!(q.pop(), None, "then reports shutdown");
//! ```

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue with blocking consumers and non-blocking
/// (fail-fast) producers. See the [module docs](self) for the admission-
/// control protocol it implements.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    bound: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("bound", &self.bound)
            .field("depth", &self.depth())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `bound` items (`bound` is clamped
    /// to at least 1).
    pub fn new(bound: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            bound: bound.max(1),
        }
    }

    /// The admission bound this queue was created with.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Current queue depth. (Named `depth` rather than `len` so static
    /// analysis does not conflate it with the lock-free `VecDeque::len`
    /// calls made while the inner guard is held.)
    pub fn depth(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.depth() == 0
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Enqueues `item` unless the queue is full or closed; on success
    /// returns the new depth, on rejection hands the item back so the
    /// producer can report backpressure (or retry later) without cloning.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut inner = self.inner.lock();
        if inner.closed || inner.items.len() >= self.bound {
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Enqueues `item` even past the bound (control messages must not be
    /// dropped). Still fails once the queue is closed.
    pub fn push_force(&self, item: T) -> Result<usize, T> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest item, blocking while the queue is open but
    /// empty. Returns `None` only after [`close`](Self::close) once every
    /// remaining item has been drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            self.not_empty.wait(&mut inner);
        }
    }

    /// Removes and returns the oldest item without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().items.pop_front()
    }

    /// Closes the queue: producers fail from now on, consumers drain the
    /// backlog and then observe shutdown. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Arc;

    #[test]
    fn fifo_order_and_depth_reporting() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            assert_eq!(q.try_push(i), Ok(i + 1));
        }
        assert_eq!(q.depth(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn bound_rejects_and_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push("a").is_ok());
        assert!(q.try_push("b").is_ok());
        assert_eq!(q.try_push("c"), Err("c"));
        assert_eq!(q.pop(), Some("a"));
        assert!(q.try_push("c").is_ok(), "a pop frees one slot");
    }

    #[test]
    fn force_push_ignores_the_bound_but_not_close() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.push_force(2), Ok(2));
        assert_eq!(q.depth(), 2);
        q.close();
        assert_eq!(q.push_force(3), Err(3));
        assert_eq!(q.try_push(4), Err(4));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn bound_zero_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.bound(), 1);
        assert!(q.try_push(7).is_ok());
        assert_eq!(q.try_push(8), Err(8));
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            crate::sync::thread::spawn_named("queue-test-consumer".into(), move || {
                assert_eq!(q.pop(), Some(9));
                assert_eq!(q.pop(), None, "close wakes the blocked pop");
            })
        };
        // Give the consumer a moment to block, then feed and close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(9).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        consumer.join().unwrap();
    }

    #[test]
    fn concurrent_producers_never_exceed_the_bound() {
        let q: Arc<BoundedQueue<usize>> = Arc::new(BoundedQueue::new(3));
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = Arc::clone(&q);
            producers.push(crate::sync::thread::spawn_named(
                format!("queue-test-producer-{p}"),
                move || {
                    for i in 0..50 {
                        loop {
                            match q.try_push(p * 1000 + i) {
                                Ok(depth) => {
                                    assert!(depth <= q.bound(), "depth {depth} over bound");
                                    break;
                                }
                                Err(_) => std::thread::yield_now(),
                            }
                        }
                    }
                },
            ));
        }
        let mut popped = 0;
        while popped < 200 {
            if q.pop().is_some() {
                popped += 1;
            }
        }
        for h in producers {
            h.join().unwrap();
        }
        assert!(q.is_empty());
    }
}
