//! Shared primitives for the SAGA-Bench suite.
//!
//! This crate is the bottom layer of the workspace. It provides:
//!
//! - [`parallel`] — a scoped worker pool with OpenMP-style `parallel for`
//!   semantics (static and dynamic scheduling). The paper's C++ benchmark
//!   parallelizes both the update and the compute phases with
//!   `#pragma omp parallel for`; every multithreaded loop in this suite goes
//!   through [`parallel::ThreadPool`] instead.
//! - [`probe`] — a runtime-toggled memory-access probe. The graph data
//!   structures report the addresses they touch through these hooks, which
//!   feed the `saga-perf` memory-hierarchy simulator (the substitute for the
//!   Intel PCM hardware counters used in the paper).
//! - [`stats`] — mean / standard deviation / 95% confidence intervals, used
//!   for the P1/P2/P3 stage aggregation described in §IV-B of the paper.
//! - [`bitvec`] — an atomic bitvector with a compare-and-swap `set`, used by
//!   the incremental compute model's `visited` vector (Algorithm 1, line 14),
//!   plus generation-stamped marks for `O(1)`-reset batch scratch.
//! - [`partition`] — a reusable two-pass parallel counting-sort partitioner
//!   that groups a batch's edges by destination chunk in `O(batch)` key
//!   evaluations, replacing the per-chunk batch rescan in the update phase.
//! - [`frontier`] — a flat structure-of-arrays frontier (atomic bump cursor
//!   over contiguous storage) replacing the segment-queue next-level
//!   collectors in the BFS/SSSP/INC frontier loops.
//! - [`prefetch`] — safe software-prefetch wrappers; the only module
//!   allowed to touch the raw intrinsics (enforced by `cargo xtask lint`).
//! - [`timer`] — monotonic phase timers for the batch-latency metric (Eq. 1).
//! - [`hash`] — small deterministic hash functions for the degree-aware
//!   hashing data structure.
//! - [`barrier`] — a reusable leader-electing superstep barrier for the
//!   BSP execution layer's phase transitions (scatter → exchange → gather),
//!   model-checked under `--cfg loom`.
//! - [`sync`] — the synchronization facade: `std`/`parking_lot` primitives
//!   normally, the `saga-loom` model checker's instrumented versions under
//!   `--cfg loom`. All other modules (and crates) take their atomics,
//!   locks, and thread spawns from here.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod barrier;
pub mod bitvec;
pub mod frontier;
pub mod hash;
pub mod parallel;
pub mod partition;
pub mod prefetch;
pub mod probe;
pub mod queue;
pub mod stats;
pub mod sync;
pub mod timer;

pub use bitvec::AtomicBitVec;
pub use parallel::ThreadPool;
pub use stats::Summary;
