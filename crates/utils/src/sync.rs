//! The suite's synchronization facade: `std`/`parking_lot` primitives
//! normally, [`saga_loom`]'s model-checked versions under `--cfg loom`.
//!
//! Every crate in the workspace imports its atomics, locks, condvars, and
//! thread-spawning through this module instead of `std::sync` directly
//! (enforced by `cargo xtask lint`). In a normal build the re-exports are
//! zero-cost aliases of the real primitives. Under `RUSTFLAGS="--cfg
//! loom"` they swap to the [`saga_loom`] model checker's instrumented
//! types, so the concurrency protocols built on top of them — the
//! [`crate::parallel::ThreadPool`] dispatch/shutdown protocol, the
//! [`crate::bitvec::AtomicBitVec`] publication CAS, the
//! [`crate::partition::Partitioner`] scatter cursors — can be exhaustively
//! model-checked over thread interleavings (see `crates/utils/tests/loom.rs`
//! and DESIGN.md §7).

/// Atomic integer and bool types plus [`atomic::Ordering`].
///
/// `std::sync::atomic` normally; `saga_loom`'s modeled atomics under
/// `--cfg loom` (every operation becomes a scheduling point).
#[cfg(not(loom))]
pub use std::sync::atomic;

#[cfg(loom)]
pub use saga_loom::sync::atomic;

#[cfg(not(loom))]
pub use parking_lot::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(loom)]
pub use saga_loom::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

pub use std::sync::Arc;

/// Thread creation and introspection behind the facade.
///
/// Only [`crate::parallel`] may spawn threads (enforced by
/// `cargo xtask lint`); everything else receives parallelism through a
/// [`crate::parallel::ThreadPool`].
pub mod thread {
    /// Handle to a facade-spawned thread.
    #[cfg(not(loom))]
    pub type JoinHandle = std::thread::JoinHandle<()>;

    /// Handle to a facade-spawned thread.
    #[cfg(loom)]
    pub type JoinHandle = saga_loom::thread::JoinHandle<()>;

    /// Spawns a named thread. The name shows up in panic messages and
    /// debuggers (and is ignored under the loom model, where threads are
    /// numbered by spawn order).
    #[cfg(not(loom))]
    pub fn spawn_named<F>(name: String, f: F) -> JoinHandle
    where
        F: FnOnce() + Send + 'static,
    {
        std::thread::Builder::new()
            .name(name)
            .spawn(f)
            .expect("failed to spawn worker thread")
    }

    /// Spawns a named thread (modeled; the name is ignored).
    #[cfg(loom)]
    pub fn spawn_named<F>(_name: String, f: F) -> JoinHandle
    where
        F: FnOnce() + Send + 'static,
    {
        saga_loom::thread::spawn(f)
    }

    /// The machine's available parallelism (fixed at 2 under the loom
    /// model, which explores small thread counts exhaustively).
    #[cfg(not(loom))]
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The model's thread count (2): loom checks small configurations
    /// exhaustively rather than large ones at random.
    #[cfg(loom)]
    pub fn available_parallelism() -> usize {
        2
    }
}
