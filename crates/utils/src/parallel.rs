//! OpenMP-style fork-join parallelism on a persistent worker pool.
//!
//! The paper's C++ benchmark multithreads both phases of streaming graph
//! analytics with `#pragma omp parallel for`. This module provides the same
//! model: a [`ThreadPool`] is created once per experiment with a fixed thread
//! count (the paper pins 64 threads; here the count is configurable for the
//! core-scaling study of Fig. 9a), and every parallel loop is dispatched to
//! it with either static or dynamic scheduling.
//!
//! Workers are parked between loops, so per-loop overhead is a mutex
//! round-trip rather than a thread spawn — important because the incremental
//! compute model runs one parallel loop per frontier iteration.
//!
//! # Examples
//!
//! ```
//! use saga_utils::parallel::{Schedule, ThreadPool};
//! use saga_utils::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let sum = AtomicUsize::new(0);
//! pool.parallel_for(0..1000, Schedule::Static, |i| {
//!     sum.fetch_add(i, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
//! ```

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::thread::JoinHandle;
use crate::sync::{thread, Arc, Condvar, Mutex};
use std::ops::Range;

/// Loop-scheduling policy for [`ThreadPool::parallel_for`].
///
/// Mirrors OpenMP's `schedule` clause. The paper's code relies on the OpenMP
/// default (static chunking); dynamic scheduling is provided for the
/// frontier-driven loops of the incremental compute model where iteration
/// costs are highly non-uniform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous equal-size ranges, one per worker (`schedule(static)`).
    Static,
    /// Workers grab `grain`-sized chunks from a shared counter
    /// (`schedule(dynamic, grain)`).
    Dynamic(usize),
}

/// A type-erased pointer to the closure currently being executed, plus the
/// monomorphized shim that calls it.
///
/// Type and lifetime erasure happen by plain thin-pointer casts (`*const F`
/// → `*const ()`), never `transmute`, so pointer provenance is preserved
/// and Miri/TSan can track the access back to the dispatcher's stack frame.
/// The pointer is only dereferenced while the dispatching thread is blocked
/// in [`ThreadPool::run_on_all`], which keeps the underlying closure (and
/// everything it borrows) alive.
#[derive(Clone, Copy)]
struct Job {
    /// Thin pointer to the dispatcher's closure (`*const F`, erased).
    data: *const (),
    /// Monomorphized trampoline that casts `data` back to `*const F` and
    /// calls it with the worker id.
    call: unsafe fn(*const (), usize),
}

// SAFETY: `data` points to a closure that is `Sync` (bound enforced by
// `Job::new`), and the dispatcher guarantees it outlives every worker's
// use of it (see `run_on_all`), so sending the pointer to workers is sound.
unsafe impl Send for Job {}

impl Job {
    /// Erases `f` into a thin pointer + trampoline pair.
    ///
    /// The cast chain `&F → *const F → *const ()` is safe code; the
    /// soundness obligation (the pointee must still be alive at call time)
    /// is carried by [`Self::call_on`]'s contract.
    fn new<F: Fn(usize) + Sync>(f: &F) -> Self {
        /// # Safety
        ///
        /// `data` must be the still-live `F` this trampoline was
        /// monomorphized for (guaranteed by [`Job::call_on`]'s contract).
        unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), worker: usize) {
            // SAFETY: `call_on`'s contract guarantees `data` is the still
            // live `F` this trampoline was monomorphized for.
            let f = unsafe { &*data.cast::<F>() };
            f(worker);
        }
        Self {
            data: (f as *const F).cast::<()>(),
            call: trampoline::<F>,
        }
    }

    /// Calls the erased closure with `worker`.
    ///
    /// # Safety
    ///
    /// The closure passed to [`Job::new`] must still be alive, and must not
    /// be accessed mutably by anyone for the duration of the call.
    unsafe fn call_on(&self, worker: usize) {
        // SAFETY: forwarded contract — the caller guarantees liveness and
        // the `F: Sync` bound in `Job::new` makes shared calls sound.
        unsafe { (self.call)(self.data, worker) };
    }
}

struct PoolState {
    epoch: u64,
    job: Option<Job>,
    remaining: usize,
}

struct Shared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    work_done: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size worker pool with fork-join `parallel for` loops.
///
/// The calling thread always participates as worker `0`, so
/// `ThreadPool::new(1)` spawns no OS threads and runs loops inline —
/// convenient for the single-core point of the scaling study.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool that executes parallel loops on `threads` workers
    /// (including the caller).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread pool needs at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(threads.saturating_sub(1));
        // Pool-unique thread names keep each worker on its own timeline
        // track when several pools coexist (e.g. the pipelined driver's
        // update and compute pools).
        let pool_id = saga_trace::next_instance_id();
        for worker_id in 1..threads {
            let shared = Arc::clone(&shared);
            handles.push(thread::spawn_named(
                format!("saga-p{pool_id}-worker-{worker_id}"),
                move || worker_loop(&shared, worker_id),
            ));
        }
        Self {
            shared,
            handles,
            threads,
        }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::new(thread::available_parallelism())
    }

    /// Number of workers (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(worker_id)` once on every worker, in parallel, and returns
    /// when all invocations have finished.
    ///
    /// This is the fork-join primitive underneath [`parallel_for`]
    /// (`#pragma omp parallel` without the `for`). Chunk-owned data
    /// structures (AC, DAH) use it directly: worker `w` updates exactly the
    /// chunks it owns.
    ///
    /// [`parallel_for`]: Self::parallel_for
    pub fn run_on_all<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            #[cfg(not(loom))]
            let _task = saga_trace::span!("task", worker = 0u64);
            f(0);
            return;
        }
        // INVARIANT: the erased pointer inside `job` is dereferenced only
        // by workers between the `work_ready` notification below and the
        // `remaining == 0` wait that follows, during which this frame (and
        // therefore `f`) is pinned — see the SAFETY comment at the
        // `call_on` in `worker_loop`.
        let job = Job::new(&f);
        {
            let mut state = self.shared.state.lock();
            debug_assert!(state.job.is_none(), "nested parallel regions are not supported");
            state.epoch += 1;
            state.job = Some(job);
            state.remaining = self.threads - 1;
            self.shared.work_ready.notify_all();
        }
        // The caller participates as worker 0.
        {
            #[cfg(not(loom))]
            let _task = saga_trace::span!("task", worker = 0u64);
            f(0);
        }
        let mut state = self.shared.state.lock();
        while state.remaining != 0 {
            self.shared.work_done.wait(&mut state);
        }
        state.job = None;
    }

    /// Parallel loop over `range`, calling `f(i)` for every index exactly
    /// once, with the given scheduling policy.
    pub fn parallel_for<F>(&self, range: Range<usize>, schedule: Schedule, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        let base = range.start;
        match schedule {
            Schedule::Static => {
                let threads = self.threads;
                self.run_on_all(|w| {
                    let (lo, hi) = static_chunk(n, threads, w);
                    for i in lo..hi {
                        f(base + i);
                    }
                });
            }
            Schedule::Dynamic(grain) => {
                let grain = grain.max(1);
                let next = AtomicUsize::new(0);
                self.run_on_all(|_| loop {
                    let start = next.fetch_add(grain, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + grain).min(n);
                    for i in start..end {
                        f(base + i);
                    }
                });
            }
        }
    }

    /// Parallel loop over the items of a slice (static schedule).
    pub fn parallel_for_each<T, F>(&self, items: &[T], schedule: Schedule, f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        self.parallel_for(0..items.len(), schedule, |i| f(&items[i]));
    }

    /// Splits `range` into one contiguous sub-range per worker and calls
    /// `f(worker_id, sub_range)` on each worker in parallel.
    ///
    /// Unlike [`parallel_for`](Self::parallel_for) this exposes the chunk
    /// boundary, which the chunked data structures use for ownership.
    pub fn parallel_ranges<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        let base = range.start;
        let threads = self.threads;
        self.run_on_all(|w| {
            let (lo, hi) = static_chunk(n, threads, w);
            f(w, base + lo..base + hi);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _state = self.shared.state.lock();
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The contiguous `[lo, hi)` sub-range of `0..n` assigned to worker `w` out
/// of `threads` under static scheduling.
///
/// Deterministic in `(n, threads, w)`: multi-pass algorithms (e.g. the
/// histogram and scatter passes of [`crate::partition::Partitioner`]) rely
/// on each worker seeing the identical range in every pass.
pub(crate) fn static_chunk(n: usize, threads: usize, w: usize) -> (usize, usize) {
    let lo = n * w / threads;
    let hi = n * (w + 1) / threads;
    (lo, hi)
}

/// Floor share of `n` items per worker across `threads` workers.
///
/// The one sizing primitive shared by [`adaptive_grain`] and the batch
/// partitioner's sequential cutoff ([`crate::partition::Partitioner`]), so
/// both answer "how much work does one worker see?" identically.
pub fn per_worker_share(n: usize, threads: usize) -> usize {
    n / threads.max(1)
}

/// A dynamic-schedule grain that keeps every worker busy: roughly eight
/// chunks per worker, clamped to `[1, 64]`. Fixed grains starve workers
/// when the iteration space (e.g. an incremental frontier) is smaller than
/// `grain * threads`.
pub fn adaptive_grain(n: usize, threads: usize) -> usize {
    (per_worker_share(n, threads) / 8).clamp(1, 64)
}

fn worker_loop(shared: &Shared, worker_id: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if state.epoch != last_epoch {
                    last_epoch = state.epoch;
                    break state.job.expect("epoch advanced without a job");
                }
                shared.work_ready.wait(&mut state);
            }
        };
        #[cfg(not(loom))]
        let task = saga_trace::span!("task", worker = worker_id as u64);
        // SAFETY: the dispatcher blocks until `remaining == 0`, so the
        // closure behind the job's pointer is alive for the duration of
        // the call, and `run_on_all` only shares it immutably.
        unsafe { job.call_on(worker_id) };
        #[cfg(not(loom))]
        drop(task);
        let mut state = shared.state.lock();
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.work_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicUsize, Ordering};

    /// Miri interprets every instruction; shrink iteration counts so the
    /// suite stays Miri-sized while native runs keep full coverage.
    const fn scaled(n: usize) -> usize {
        if cfg!(miri) {
            n / 10
        } else {
            n
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.parallel_for(0..100, Schedule::Static, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn static_schedule_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let counts: Vec<AtomicUsize> = (0..scaled(1000)).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..scaled(1000), Schedule::Static, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dynamic_schedule_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let counts: Vec<AtomicUsize> = (0..scaled(1000) + 3).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..scaled(1000) + 3, Schedule::Dynamic(7), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn offset_range_respected() {
        let pool = ThreadPool::new(3);
        let sum = AtomicUsize::new(0);
        pool.parallel_for(100..200, Schedule::Static, |i| {
            assert!((100..200).contains(&i));
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (100..200).sum::<usize>());
    }

    #[test]
    fn empty_range_is_a_noop() {
        let pool = ThreadPool::new(2);
        pool.parallel_for(5..5, Schedule::Static, |_| panic!("should not run"));
        pool.parallel_for(5..5, Schedule::Dynamic(4), |_| panic!("should not run"));
    }

    #[test]
    fn run_on_all_sees_every_worker_id() {
        let pool = ThreadPool::new(5);
        let seen: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        pool.run_on_all(|w| {
            seen[w].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_ranges_partition_is_exact() {
        let pool = ThreadPool::new(4);
        let counts: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_ranges(0..257, |_, r| {
            for i in r {
                counts[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_survives_many_dispatches() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..scaled(200) {
            pool.parallel_for(0..64, Schedule::Static, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), scaled(200) * 64);
    }

    #[test]
    fn static_chunk_partitions() {
        for n in [0usize, 1, 7, 64, 1001] {
            for t in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for w in 0..t {
                    let (lo, hi) = static_chunk(n, t, w);
                    assert!(lo <= hi);
                    covered += hi - lo;
                    if w > 0 {
                        let (_, prev_hi) = static_chunk(n, t, w - 1);
                        assert_eq!(prev_hi, lo);
                    }
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn per_worker_share_boundaries() {
        // Zero items: nobody gets work.
        assert_eq!(per_worker_share(0, 4), 0);
        // Fewer items than workers: floor share is zero.
        assert_eq!(per_worker_share(3, 4), 0);
        // Zero threads is treated as one worker, never a division by zero.
        assert_eq!(per_worker_share(10, 0), 10);
        // Exact and inexact splits.
        assert_eq!(per_worker_share(64, 4), 16);
        assert_eq!(per_worker_share(65, 4), 16);
        // Huge n does not overflow.
        assert_eq!(per_worker_share(usize::MAX, 1), usize::MAX);
    }

    #[test]
    fn adaptive_grain_boundaries() {
        // Empty and tiny iteration spaces clamp to the minimum grain.
        assert_eq!(adaptive_grain(0, 4), 1);
        assert_eq!(adaptive_grain(3, 4), 1);
        assert_eq!(adaptive_grain(31, 4), 1);
        // Huge n clamps to the maximum grain.
        assert_eq!(adaptive_grain(1 << 30, 4), 64);
        assert_eq!(adaptive_grain(usize::MAX, 1), 64);
        // Interior: eight chunks per worker.
        assert_eq!(adaptive_grain(320, 4), 10);
        // Zero threads behaves like one worker.
        assert_eq!(adaptive_grain(320, 0), 40);
    }

    #[test]
    fn borrows_local_data() {
        let pool = ThreadPool::new(3);
        let data: Vec<usize> = (0..100).collect();
        let sum = AtomicUsize::new(0);
        pool.parallel_for_each(&data, Schedule::Static, |x| {
            sum.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), data.iter().sum::<usize>());
    }
}
