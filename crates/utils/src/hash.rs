//! Deterministic 64-bit mixing functions.
//!
//! The degree-aware hashing data structure (DAH, §III-A4 of the paper) needs
//! fast, well-distributed hashes of vertex ids and edge keys. These are
//! `splitmix64`-style finalizers: stateless, seedable, and identical across
//! runs and platforms, which keeps every experiment reproducible.

/// Mixes a 64-bit value (the `splitmix64` finalizer).
///
/// # Examples
///
/// ```
/// use saga_utils::hash::mix64;
///
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a single vertex id.
#[inline]
pub fn hash_node(node: u32) -> u64 {
    mix64(node as u64)
}

/// Hashes a directed edge key `(src, dst)`.
#[inline]
pub fn hash_edge(src: u32, dst: u32) -> u64 {
    mix64(((src as u64) << 32) | dst as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(0xDEAD_BEEF), mix64(0xDEAD_BEEF));
    }

    #[test]
    fn edge_hash_is_direction_sensitive() {
        assert_ne!(hash_edge(1, 2), hash_edge(2, 1));
    }

    #[test]
    fn low_collision_rate_on_dense_keys() {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0u32..100_000).map(hash_node).collect();
        assert_eq!(hashes.len(), 100_000);
    }

    #[test]
    fn bits_are_well_spread() {
        // Every output bit should flip for roughly half of sequential inputs.
        let n = 4096u64;
        for bit in 0..64 {
            let ones = (0..n).filter(|&i| mix64(i) >> bit & 1 == 1).count();
            let frac = ones as f64 / n as f64;
            assert!(
                (0.4..0.6).contains(&frac),
                "bit {bit} set fraction {frac}"
            );
        }
    }
}
