//! Summary statistics with 95% confidence intervals.
//!
//! The paper reports every latency as the average over one third of the
//! batches of three repeated runs, "computed with 95% confidence intervals"
//! (§IV-B), and declares two configurations *competitive* when their
//! intervals overlap (Table III). This module provides exactly those
//! operations.

/// Mean, spread, and a 95% confidence interval for a set of samples.
///
/// # Examples
///
/// ```
/// use saga_utils::stats::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert!(s.ci95 > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval around the mean.
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            std_dev: 0.0,
            ci95: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// Computes a summary over `samples` using Welford's online algorithm.
    ///
    /// Returns the [`Default`] (empty) summary when `samples` is empty.
    ///
    /// # NaN policy
    ///
    /// A NaN sample poisons the whole summary: `mean`, `std_dev`, `ci95`,
    /// `min`, and `max` are all NaN (only `n` stays meaningful). Without
    /// the explicit check, Welford's recurrence would silently propagate
    /// NaN into `mean`/`ci95` while `f64::min`/`f64::max` *drop* NaN —
    /// yielding a summary that looks partially valid and whose interval
    /// comparisons are vacuously false. A poisoned summary is never
    /// [`competitive_with`](Self::competitive_with) anything (in either
    /// direction), so a corrupted measurement can only widen a "not
    /// competitive" verdict, never fabricate a "competitive" one.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        if samples.iter().any(|x| x.is_nan()) {
            return Self {
                n: samples.len(),
                mean: f64::NAN,
                std_dev: f64::NAN,
                ci95: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
            };
        }
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, &x) in samples.iter().enumerate() {
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        let n = samples.len();
        let std_dev = if n > 1 { (m2 / (n - 1) as f64).sqrt() } else { 0.0 };
        let ci95 = if n > 1 {
            t_critical_95(n - 1) * std_dev / (n as f64).sqrt()
        } else {
            0.0
        };
        Self {
            n,
            mean,
            std_dev,
            ci95,
            min,
            max,
        }
    }

    /// Lower bound of the 95% confidence interval.
    pub fn ci_low(&self) -> f64 {
        self.mean - self.ci95
    }

    /// Upper bound of the 95% confidence interval.
    pub fn ci_high(&self) -> f64 {
        self.mean + self.ci95
    }

    /// Whether the 95% confidence intervals of `self` and `other` overlap —
    /// the paper's criterion for reporting two configurations as
    /// *competitive* (Table III caption).
    ///
    /// A summary poisoned by NaN samples (see
    /// [`from_samples`](Self::from_samples)) is never competitive with
    /// anything: every comparison against a NaN bound is false.
    pub fn competitive_with(&self, other: &Summary) -> bool {
        self.ci_low() <= other.ci_high() && other.ci_low() <= self.ci_high()
    }
}

/// Two-sided 95% critical value of Student's t distribution with `df`
/// degrees of freedom.
///
/// Exact table for `df <= 30`, linear interpolation between exact anchor
/// rows up to `df = 120` (error < 2e-3 against the true quantiles, which
/// are themselves only tabulated to 3 decimals), 1.96 asymptotically. The
/// former flat `2.000` plateau for df 31–60 understated the critical value
/// by up to 2% (true t(31) = 2.040), narrowing confidence intervals and
/// skewing the Table III competitiveness criterion toward false
/// non-overlap.
fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    /// Exact rows of the standard t table past the dense region; the
    /// quantile is smooth and convex here, so linear interpolation between
    /// adjacent anchors stays within 2e-3 of the true value.
    const ANCHORS: [(usize, f64); 7] = [
        (30, 2.042),
        (40, 2.021),
        (50, 2.009),
        (60, 2.000),
        (80, 1.990),
        (100, 1.984),
        (120, 1.980),
    ];
    if df == 0 {
        return f64::INFINITY;
    }
    if df <= TABLE.len() {
        return TABLE[df - 1];
    }
    for pair in ANCHORS.windows(2) {
        let ((lo_df, lo_t), (hi_df, hi_t)) = (pair[0], pair[1]);
        if df <= hi_df {
            let frac = (df - lo_df) as f64 / (hi_df - lo_df) as f64;
            return lo_t + frac * (hi_t - lo_t);
        }
    }
    1.96
}

/// Geometric mean of strictly positive samples; `NaN` if any sample is
/// non-positive (or NaN), `0.0` for an empty slice.
///
/// The explicit sign check matters for zeros: `0.0f64.ln()` is `-inf`, not
/// NaN, so without it a zero sample would silently drive the result to
/// `0.0` instead of flagging the invalid input the doc contract promises.
/// Negative and NaN samples already poison the log-sum on their own, but
/// they take the same early return so the contract holds uniformly.
pub fn geometric_mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    if samples.iter().any(|&x| x.is_nan() || x <= 0.0) {
        return f64::NAN;
    }
    let log_sum: f64 = samples.iter().map(|&x| x.ln()).sum();
    (log_sum / samples.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_default() {
        assert_eq!(Summary::from_samples(&[]), Summary::default());
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::from_samples(&[7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
    }

    #[test]
    fn known_values() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance = 32/7.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let small: Vec<f64> = (0..10).map(|i| (i % 3) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 3) as f64).collect();
        let s_small = Summary::from_samples(&small);
        let s_large = Summary::from_samples(&large);
        assert!(s_large.ci95 < s_small.ci95);
    }

    #[test]
    fn overlapping_intervals_are_competitive() {
        let a = Summary::from_samples(&[1.0, 2.0, 3.0]);
        let b = Summary::from_samples(&[2.0, 3.0, 4.0]);
        assert!(a.competitive_with(&b));
        assert!(b.competitive_with(&a));
    }

    #[test]
    fn distant_intervals_are_not_competitive() {
        let a = Summary::from_samples(&[1.0, 1.01, 0.99, 1.0]);
        let b = Summary::from_samples(&[9.0, 9.01, 8.99, 9.0]);
        assert!(!a.competitive_with(&b));
    }

    #[test]
    fn t_table_is_strictly_monotone_decreasing_until_asymptote() {
        let mut prev = f64::INFINITY;
        for df in 1..=120 {
            let t = t_critical_95(df);
            assert!(t < prev, "t({df}) = {t} >= {prev}");
            prev = t;
        }
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn t_table_matches_known_values_in_the_interpolated_region() {
        // True two-sided 95% quantiles: t(31) = 2.040, t(40) = 2.021,
        // t(60) = 2.000 — the old flat-2.000 plateau failed the first two.
        assert!((t_critical_95(31) - 2.040).abs() < 2e-3, "{}", t_critical_95(31));
        assert!((t_critical_95(40) - 2.021).abs() < 1e-9, "{}", t_critical_95(40));
        assert!((t_critical_95(60) - 2.000).abs() < 1e-9, "{}", t_critical_95(60));
        // Interpolated mid-points stay within 2e-3 of the true table.
        assert!((t_critical_95(35) - 2.030).abs() < 2e-3, "{}", t_critical_95(35));
        assert!((t_critical_95(70) - 1.994).abs() < 2e-3, "{}", t_critical_95(70));
        assert!((t_critical_95(120) - 1.980).abs() < 1e-9, "{}", t_critical_95(120));
    }

    #[test]
    fn ci_widening_from_t_fix_preserves_overlap_verdicts() {
        // df = 39 sits in the formerly flat region; the corrected critical
        // value must be strictly wider than the old 2.000 plateau.
        let samples: Vec<f64> = (0..40).map(|i| (i % 5) as f64).collect();
        let s = Summary::from_samples(&samples);
        let old_ci = 2.000 * s.std_dev / (s.n as f64).sqrt();
        assert!(s.ci95 > old_ci, "ci95 {} must widen past {old_ci}", s.ci95);
    }

    #[test]
    fn geometric_mean_of_powers() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_rejects_non_positive_and_nan_samples() {
        // Zero is the doc/behavior mismatch this pins: ln(0) = -inf used to
        // yield 0.0 where the contract promises NaN.
        assert!(geometric_mean(&[0.0]).is_nan());
        assert!(geometric_mean(&[2.0, 0.0, 8.0]).is_nan());
        assert!(geometric_mean(&[-1.0]).is_nan());
        assert!(geometric_mean(&[4.0, -2.0]).is_nan());
        assert!(geometric_mean(&[1.0, f64::NAN]).is_nan());
        assert!(geometric_mean(&[-0.0]).is_nan(), "negative zero is non-positive");
    }

    #[test]
    fn nan_samples_poison_every_statistic() {
        let s = Summary::from_samples(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.n, 3);
        assert!(s.mean.is_nan());
        assert!(s.std_dev.is_nan());
        assert!(s.ci95.is_nan());
        assert!(s.min.is_nan(), "min must not silently drop NaN");
        assert!(s.max.is_nan(), "max must not silently drop NaN");
    }

    #[test]
    fn poisoned_summary_is_never_competitive() {
        let poisoned = Summary::from_samples(&[1.0, f64::NAN]);
        let clean = Summary::from_samples(&[1.0, 1.01, 0.99]);
        assert!(!poisoned.competitive_with(&clean));
        assert!(!clean.competitive_with(&poisoned));
        assert!(!poisoned.competitive_with(&poisoned));
    }
}
