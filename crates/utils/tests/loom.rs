//! Loom model-checking of the suite's core concurrency protocols.
//!
//! Compiled and run only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p saga-utils --test loom
//! ```
//!
//! Each test explores every interleaving (within the preemption bound) of a
//! deliberately tiny configuration — 2 pool workers, a couple of bits, a
//! 4-item batch — because exhaustive small models catch protocol bugs that
//! large randomized runs miss. See DESIGN.md §7 for what is and is not
//! covered.
#![cfg(loom)]

use saga_utils::bitvec::{AtomicBitVec, GenerationMarks};
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::partition::Partitioner;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};
use saga_utils::sync::Arc;

/// The pool's epoch/condvar dispatch protocol: a fork-join must run the
/// closure exactly once per worker, and dropping the pool must terminate
/// the worker in every interleaving (no lost shutdown wakeup).
#[test]
fn pool_dispatch_and_shutdown() {
    saga_loom::model(|| {
        let pool = ThreadPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.run_on_all(|_w| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        // `drop(pool)` model-checks the shutdown protocol: a schedule that
        // loses the shutdown notification shows up as a deadlock.
    });
}

/// Two consecutive fork-joins through the same pool: the epoch counter
/// must not confuse a worker into re-running the old job or skipping the
/// new one.
#[test]
fn pool_back_to_back_dispatches() {
    saga_loom::model(|| {
        let pool = ThreadPool::new(2);
        let first = AtomicUsize::new(0);
        let second = AtomicUsize::new(0);
        pool.run_on_all(|_w| {
            first.fetch_add(1, Ordering::SeqCst);
        });
        pool.run_on_all(|_w| {
            second.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(first.load(Ordering::SeqCst), 2);
        assert_eq!(second.load(Ordering::SeqCst), 2);
    });
}

/// `AtomicBitVec::try_set` publication: when two workers race on the same
/// bit, exactly one observes the 0→1 transition in every interleaving.
#[test]
fn bitvec_try_set_single_winner() {
    saga_loom::model(|| {
        let bv = Arc::new(AtomicBitVec::new(64));
        let wins = Arc::new(AtomicUsize::new(0));
        let t = {
            let bv = Arc::clone(&bv);
            let wins = Arc::clone(&wins);
            saga_utils::sync::thread::spawn_named("racer".into(), move || {
                if bv.try_set(7) {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        if bv.try_set(7) {
            wins.fetch_add(1, Ordering::SeqCst);
        }
        let _ = t.join();
        assert_eq!(wins.load(Ordering::SeqCst), 1, "both or neither won the CAS");
        assert!(bv.get(7));
    });
}

/// `GenerationMarks::try_mark` (the affected tracker's dedup CAS): single
/// winner per generation in every interleaving of its retry loop.
#[test]
fn generation_marks_single_winner() {
    saga_loom::model(|| {
        let mut marks = GenerationMarks::new(4);
        marks.next_generation();
        let marks = Arc::new(marks);
        let wins = Arc::new(AtomicUsize::new(0));
        let t = {
            let marks = Arc::clone(&marks);
            let wins = Arc::clone(&wins);
            saga_utils::sync::thread::spawn_named("marker".into(), move || {
                if marks.try_mark(2) {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        if marks.try_mark(2) {
            wins.fetch_add(1, Ordering::SeqCst);
        }
        let _ = t.join();
        assert_eq!(wins.load(Ordering::SeqCst), 1);
        assert!(marks.is_marked(2));
    });
}

/// The dynamic schedule's shared grab cursor: every index claimed exactly
/// once, no index lost, in every interleaving of the `fetch_add` loop.
#[test]
fn dynamic_schedule_cursor_disjoint_cover() {
    saga_loom::model(|| {
        let pool = ThreadPool::new(2);
        let counts: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..3, Schedule::Dynamic(1), |i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "index {i} claimed != once");
        }
    });
}

/// The partitioner's two parallel passes (per-worker histogram rows, then
/// scatter into prefix-summed disjoint windows): under loom the sequential
/// cutoff drops to 1, so this 4-item batch takes the real parallel path on
/// both workers. Any overlap of the (worker, bucket) windows or a racy
/// cursor update corrupts the partition and fails the assertions.
#[test]
fn partitioner_parallel_windows_disjoint() {
    saga_loom::model(|| {
        let pool = ThreadPool::new(2);
        let mut p = Partitioner::new();
        p.partition(&pool, 4, 2, |i| i % 2);
        assert_eq!(p.bucket(0), &[0, 2]);
        assert_eq!(p.bucket(1), &[1, 3]);
    });
}
