//! Loom model-checking of the suite's core concurrency protocols.
//!
//! Compiled and run only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p saga-utils --test loom
//! ```
//!
//! Each test explores every interleaving (within the preemption bound) of a
//! deliberately tiny configuration — 2 pool workers, a couple of bits, a
//! 4-item batch — because exhaustive small models catch protocol bugs that
//! large randomized runs miss. See DESIGN.md §7 for what is and is not
//! covered.
#![cfg(loom)]

use saga_utils::barrier::Barrier;
use saga_utils::bitvec::{AtomicBitVec, GenerationMarks};
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::partition::Partitioner;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};
use saga_utils::sync::Arc;

/// The pool's epoch/condvar dispatch protocol: a fork-join must run the
/// closure exactly once per worker, and dropping the pool must terminate
/// the worker in every interleaving (no lost shutdown wakeup).
#[test]
fn pool_dispatch_and_shutdown() {
    saga_loom::model(|| {
        let pool = ThreadPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.run_on_all(|_w| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        // `drop(pool)` model-checks the shutdown protocol: a schedule that
        // loses the shutdown notification shows up as a deadlock.
    });
}

/// Two consecutive fork-joins through the same pool: the epoch counter
/// must not confuse a worker into re-running the old job or skipping the
/// new one.
#[test]
fn pool_back_to_back_dispatches() {
    saga_loom::model(|| {
        let pool = ThreadPool::new(2);
        let first = AtomicUsize::new(0);
        let second = AtomicUsize::new(0);
        pool.run_on_all(|_w| {
            first.fetch_add(1, Ordering::SeqCst);
        });
        pool.run_on_all(|_w| {
            second.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(first.load(Ordering::SeqCst), 2);
        assert_eq!(second.load(Ordering::SeqCst), 2);
    });
}

/// `AtomicBitVec::try_set` publication: when two workers race on the same
/// bit, exactly one observes the 0→1 transition in every interleaving.
#[test]
fn bitvec_try_set_single_winner() {
    saga_loom::model(|| {
        let bv = Arc::new(AtomicBitVec::new(64));
        let wins = Arc::new(AtomicUsize::new(0));
        let t = {
            let bv = Arc::clone(&bv);
            let wins = Arc::clone(&wins);
            saga_utils::sync::thread::spawn_named("racer".into(), move || {
                if bv.try_set(7) {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        if bv.try_set(7) {
            wins.fetch_add(1, Ordering::SeqCst);
        }
        let _ = t.join();
        assert_eq!(wins.load(Ordering::SeqCst), 1, "both or neither won the CAS");
        assert!(bv.get(7));
    });
}

/// The facade's modeled `RwLock` (exclusive under the model, see
/// DESIGN.md §7): a racing writer and reader-then-writer can interleave
/// any way, but guard-protected increments must never be lost and the
/// final value must be exactly the sum of both threads' additions.
#[test]
fn rwlock_guarded_increments_are_not_lost() {
    saga_loom::model(|| {
        let lock = Arc::new(saga_utils::sync::RwLock::new(0u32));
        let t = {
            let lock = Arc::clone(&lock);
            saga_utils::sync::thread::spawn_named("writer".into(), move || {
                let mut g = lock.write();
                *g += 1;
            })
        };
        let seen = *lock.read();
        assert!(seen <= 1, "read saw a value never written");
        {
            let mut g = lock.write();
            *g += 2;
        }
        let _ = t.join();
        assert_eq!(*lock.read(), 3, "an increment was lost");
    });
}

/// `GenerationMarks::try_mark` (the affected tracker's dedup CAS): single
/// winner per generation in every interleaving of its retry loop.
#[test]
fn generation_marks_single_winner() {
    saga_loom::model(|| {
        let mut marks = GenerationMarks::new(4);
        marks.next_generation();
        let marks = Arc::new(marks);
        let wins = Arc::new(AtomicUsize::new(0));
        let t = {
            let marks = Arc::clone(&marks);
            let wins = Arc::clone(&wins);
            saga_utils::sync::thread::spawn_named("marker".into(), move || {
                if marks.try_mark(2) {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        if marks.try_mark(2) {
            wins.fetch_add(1, Ordering::SeqCst);
        }
        let _ = t.join();
        assert_eq!(wins.load(Ordering::SeqCst), 1);
        assert!(marks.is_marked(2));
    });
}

/// The dynamic schedule's shared grab cursor: every index claimed exactly
/// once, no index lost, in every interleaving of the `fetch_add` loop.
#[test]
fn dynamic_schedule_cursor_disjoint_cover() {
    saga_loom::model(|| {
        let pool = ThreadPool::new(2);
        let counts: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..3, Schedule::Dynamic(1), |i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "index {i} claimed != once");
        }
    });
}

/// The partitioner's two parallel passes (per-worker histogram rows, then
/// scatter into prefix-summed disjoint windows): under loom the sequential
/// cutoff drops to 1, so this 4-item batch takes the real parallel path on
/// both workers. Any overlap of the (worker, bucket) windows or a racy
/// cursor update corrupts the partition and fails the assertions.
#[test]
fn partitioner_parallel_windows_disjoint() {
    saga_loom::model(|| {
        let pool = ThreadPool::new(2);
        let mut p = Partitioner::new();
        p.partition(&pool, 4, 2, |i| i % 2);
        assert_eq!(p.bucket(0), &[0, 2]);
        assert_eq!(p.bucket(1), &[1, 3]);
    });
}

/// The BSP superstep barrier's phase-isolation guarantee: two workers
/// exchange values through plain Relaxed slots across a crossing. In every
/// interleaving the crossing must (a) elect exactly one leader, and (b)
/// order each worker's pre-barrier write before the other's post-barrier
/// read — the property the scatter→gather handoff in `saga-bsp` relies on
/// to read another shard's outbox without extra synchronization.
#[test]
fn barrier_crossing_publishes_peer_writes() {
    saga_loom::model(|| {
        let barrier = Arc::new(Barrier::new(2));
        let slots = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let leaders = Arc::new(AtomicUsize::new(0));
        let t = {
            let barrier = Arc::clone(&barrier);
            let slots = Arc::clone(&slots);
            let leaders = Arc::clone(&leaders);
            saga_utils::sync::thread::spawn_named("peer".into(), move || {
                slots[1].store(20, Ordering::Relaxed);
                if barrier.wait() {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
                assert_eq!(slots[0].load(Ordering::Relaxed), 10);
            })
        };
        slots[0].store(10, Ordering::Relaxed);
        if barrier.wait() {
            leaders.fetch_add(1, Ordering::SeqCst);
        }
        assert_eq!(slots[1].load(Ordering::Relaxed), 20);
        let _ = t.join();
        assert_eq!(leaders.load(Ordering::SeqCst), 1, "crossings must elect one leader");
    });
}

/// The checkpoint-publish double-crossing: workers write their shard slots,
/// cross once, the elected leader snapshots both slots into the checkpoint
/// cell while followers park on the second crossing, and after the second
/// crossing every worker must observe the completed checkpoint. A schedule
/// where a follower races past the leader's sequential section — or where
/// the leader's snapshot misses a shard write — fails the asserts.
#[test]
fn barrier_double_crossing_checkpoint_publish() {
    saga_loom::model(|| {
        let barrier = Arc::new(Barrier::new(2));
        let shards = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let checkpoint = Arc::new(AtomicUsize::new(0));
        let run = |me: usize,
                   barrier: Arc<Barrier>,
                   shards: Arc<[AtomicUsize; 2]>,
                   checkpoint: Arc<AtomicUsize>| {
            shards[me].store(me + 1, Ordering::Relaxed);
            if barrier.wait() {
                let sum = shards[0].load(Ordering::Relaxed) + shards[1].load(Ordering::Relaxed);
                checkpoint.store(sum, Ordering::Relaxed);
            }
            barrier.wait();
            assert_eq!(
                checkpoint.load(Ordering::Relaxed),
                3,
                "checkpoint incomplete after the publish crossing"
            );
        };
        let t = {
            let barrier = Arc::clone(&barrier);
            let shards = Arc::clone(&shards);
            let checkpoint = Arc::clone(&checkpoint);
            saga_utils::sync::thread::spawn_named("w1".into(), move || {
                run(1, barrier, shards, checkpoint)
            })
        };
        run(0, Arc::clone(&barrier), Arc::clone(&shards), Arc::clone(&checkpoint));
        let _ = t.join();
    });
}

/// Miniature of Stinger's per-vertex edge-block protocol
/// (`crates/graph/src/stinger.rs`): a chain of fixed-capacity blocks
/// behind per-block locks, an atomic degree counter, and the
/// "every block full except the tail" compaction invariant. The real
/// structure guards insert-vs-remove with a per-vertex RwLock; the facade
/// models no RwLock, so the reader-writer pairing is modeled with a Mutex
/// (`op`) below, while reader-reader concurrency — two shared-mode
/// inserts — is modeled lock-free, the way two read guards never exclude
/// each other.
mod stinger_block {
    use saga_utils::sync::atomic::{AtomicU32, Ordering};
    use saga_utils::sync::{Arc, Mutex};

    pub const BLOCK_SIZE: usize = 2;

    pub struct Vertex {
        pub degree: AtomicU32,
        pub chain: Mutex<Vec<Arc<Mutex<Vec<u32>>>>>,
        pub op: Mutex<()>,
    }

    pub fn seed(blocks: &[&[u32]]) -> Vertex {
        let degree = blocks.iter().map(|b| b.len()).sum::<usize>() as u32;
        Vertex {
            degree: AtomicU32::new(degree),
            chain: Mutex::new(
                blocks.iter().map(|b| Arc::new(Mutex::new(b.to_vec()))).collect(),
            ),
            op: Mutex::new(()),
        }
    }

    /// The real insert's two scans + append (shared mode).
    pub fn insert(v: &Vertex, dst: u32) -> bool {
        let snapshot: Vec<_> = v.chain.lock().clone();
        for b in &snapshot {
            if b.lock().iter().any(|&n| n == dst) {
                return false;
            }
        }
        for b in &snapshot {
            let mut g = b.lock();
            if g.iter().any(|&n| n == dst) {
                return false;
            }
            if g.len() < BLOCK_SIZE {
                g.push(dst);
                v.degree.fetch_add(1, Ordering::AcqRel);
                return true;
            }
        }
        let mut chain = v.chain.lock();
        for b in chain.iter().skip(snapshot.len()) {
            let mut g = b.lock();
            if g.iter().any(|&n| n == dst) {
                return false;
            }
            if g.len() < BLOCK_SIZE {
                g.push(dst);
                v.degree.fetch_add(1, Ordering::AcqRel);
                return true;
            }
        }
        chain.push(Arc::new(Mutex::new(vec![dst])));
        v.degree.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// The real remove + refill-from-tail compaction (exclusive mode; the
    /// caller holds `op`).
    pub fn remove(v: &Vertex, dst: u32) -> bool {
        let snapshot: Vec<_> = v.chain.lock().clone();
        let mut found = None;
        for (bi, b) in snapshot.iter().enumerate() {
            let mut g = b.lock();
            if let Some(pos) = g.iter().position(|&n| n == dst) {
                g.swap_remove(pos);
                found = Some(bi);
                break;
            }
        }
        let Some(bi) = found else { return false };
        v.degree.fetch_sub(1, Ordering::AcqRel);
        let mut chain = v.chain.lock();
        while let Some(last) = chain.last() {
            if Arc::ptr_eq(last, &snapshot[bi]) {
                break;
            }
            let moved = last.lock().pop();
            match moved {
                Some(e) => {
                    snapshot[bi].lock().push(e);
                    break;
                }
                None => {
                    chain.pop();
                }
            }
        }
        while let Some(last) = chain.last() {
            if last.lock().is_empty() {
                chain.pop();
            } else {
                break;
            }
        }
        true
    }

    /// Asserts the chain invariants and returns the edge multiset.
    pub fn check(v: &Vertex) -> Vec<u32> {
        let chain = v.chain.lock();
        let mut all = Vec::new();
        for (i, b) in chain.iter().enumerate() {
            let g = b.lock();
            assert!(!g.is_empty(), "empty block left in chain");
            if i + 1 < chain.len() {
                assert_eq!(g.len(), BLOCK_SIZE, "non-tail block not full");
            }
            all.extend(g.iter().copied());
        }
        assert_eq!(
            v.degree.load(Ordering::Acquire) as usize,
            all.len(),
            "degree diverged from stored edges"
        );
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "duplicate edge");
        all
    }
}

/// Two shared-mode inserts of the *same* edge racing on one full block:
/// the second scan's re-check under the block lock must give exactly one
/// winner in every interleaving (the search-then-insert TOCTOU the real
/// code closes by re-scanning under each lock).
#[test]
fn stinger_block_duplicate_insert_single_winner() {
    saga_loom::model(|| {
        let v = Arc::new(stinger_block::seed(&[&[1, 2]]));
        let wins = Arc::new(AtomicUsize::new(0));
        let t = {
            let v = Arc::clone(&v);
            let wins = Arc::clone(&wins);
            saga_utils::sync::thread::spawn_named("ins".into(), move || {
                if stinger_block::insert(&v, 3) {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        if stinger_block::insert(&v, 3) {
            wins.fetch_add(1, Ordering::SeqCst);
        }
        let _ = t.join();
        assert_eq!(wins.load(Ordering::SeqCst), 1, "duplicate edge inserted twice");
        let mut edges = stinger_block::check(&v);
        edges.sort_unstable();
        assert_eq!(edges, vec![1, 2, 3]);
    });
}

/// Two shared-mode inserts of *different* edges racing to append past a
/// full block: both must land, and the chain-lock append path must keep
/// the all-but-tail-full invariant (no lost block, no double append).
#[test]
fn stinger_block_concurrent_appends_keep_chain_invariant() {
    saga_loom::model(|| {
        let v = Arc::new(stinger_block::seed(&[&[1, 2]]));
        let t = {
            let v = Arc::clone(&v);
            saga_utils::sync::thread::spawn_named("ins".into(), move || {
                assert!(stinger_block::insert(&v, 3));
            })
        };
        assert!(stinger_block::insert(&v, 4));
        let _ = t.join();
        let mut edges = stinger_block::check(&v);
        edges.sort_unstable();
        assert_eq!(edges, vec![1, 2, 3, 4]);
    });
}

/// Insert vs. delete on one vertex, serialized by the op lock exactly as
/// the real structure's per-vertex RwLock serializes them: in both orders
/// (and every schedule of the degree atomics around them) the compaction
/// must refill the hole from the tail, drop empty tails, and keep the
/// degree counter equal to the stored edge count.
#[test]
fn stinger_block_insert_vs_delete_compaction() {
    saga_loom::model(|| {
        let v = Arc::new(stinger_block::seed(&[&[1, 2], &[3]]));
        let t = {
            let v = Arc::clone(&v);
            saga_utils::sync::thread::spawn_named("del".into(), move || {
                let _x = v.op.lock();
                assert!(stinger_block::remove(&v, 1));
            })
        };
        {
            let _x = v.op.lock();
            assert!(stinger_block::insert(&v, 4));
        }
        let _ = t.join();
        let mut edges = stinger_block::check(&v);
        edges.sort_unstable();
        assert_eq!(edges, vec![2, 3, 4], "insert and delete must both land");
    });
}
