//! Property-based tests for the shared primitives.

use proptest::prelude::*;
use saga_utils::bitvec::AtomicBitVec;
use saga_utils::parallel::{Schedule, ThreadPool};
use saga_utils::stats::Summary;
use saga_utils::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn summary_matches_naive_formulas(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_samples(&samples);
        let n = samples.len() as f64;
        let mean: f64 = samples.iter().sum::<f64>() / n;
        prop_assert!((s.mean - mean).abs() < 1e-6 * (1.0 + mean.abs()), "mean {} vs {}", s.mean, mean);
        if samples.len() > 1 {
            let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.std_dev - var.sqrt()).abs() < 1e-4 * (1.0 + var.sqrt()));
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        prop_assert!(s.ci_low() <= s.mean && s.mean <= s.ci_high());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn competitive_is_symmetric_and_reflexive(
        a in prop::collection::vec(0.0f64..100.0, 2..30),
        b in prop::collection::vec(0.0f64..100.0, 2..30),
    ) {
        let sa = Summary::from_samples(&a);
        let sb = Summary::from_samples(&b);
        prop_assert!(sa.competitive_with(&sa));
        prop_assert_eq!(sa.competitive_with(&sb), sb.competitive_with(&sa));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn nan_samples_cannot_fabricate_a_competitive_verdict(
        a in prop::collection::vec(-1e6f64..1e6, 2..40),
        b in prop::collection::vec(-1e6f64..1e6, 2..40),
        nan_at in 0usize..40,
    ) {
        // Poison one arbitrary slot of `a` with NaN: every statistic must
        // poison too, and the competitiveness verdict must be false in both
        // directions — a corrupted measurement can never be quietly
        // reported as "competitive" (Table III's criterion).
        let mut poisoned = a.clone();
        let idx = nan_at % poisoned.len();
        poisoned[idx] = f64::NAN;
        let sp = Summary::from_samples(&poisoned);
        let sb = Summary::from_samples(&b);
        prop_assert!(sp.mean.is_nan() && sp.ci95.is_nan() && sp.min.is_nan() && sp.max.is_nan());
        prop_assert!(!sp.competitive_with(&sb));
        prop_assert!(!sb.competitive_with(&sp));
        prop_assert!(!sp.competitive_with(&sp));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn bitvec_matches_bool_vec_model(ops in prop::collection::vec((0usize..200, any::<bool>()), 0..400)) {
        let bv = AtomicBitVec::new(200);
        let mut model = [false; 200];
        for &(i, use_try) in &ops {
            if use_try {
                let newly = bv.try_set(i);
                prop_assert_eq!(newly, !model[i]);
            } else {
                bv.set(i);
            }
            model[i] = true;
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(bv.get(i), m);
        }
        prop_assert_eq!(bv.count_ones(), model.iter().filter(|&&b| b).count());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // proptest persistence + case counts are not Miri-sized
    fn parallel_for_touches_each_index_once(
        n in 0usize..2000,
        threads in 1usize..6,
        dynamic in any::<bool>(),
        grain in 1usize..64,
    ) {
        let pool = ThreadPool::new(threads);
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let schedule = if dynamic { Schedule::Dynamic(grain) } else { Schedule::Static };
        pool.parallel_for(0..n, schedule, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
