//! Property tests for the Prometheus exposition pair: arbitrary (and
//! hostile) registry names, label values, and histogram shapes must
//! render to text that the in-tree validating parser accepts and maps
//! back to the *identical* family model. This is the contract the
//! `/metrics` endpoint, the CI smoke scrape, and `cargo xtask
//! check-metrics` all lean on: if render → parse is the identity on the
//! model, any document the validator rejects really is malformed.

use proptest::prelude::*;
use saga_trace::expose::{
    build_families, parse_prometheus, render_families, PromFamily, PromKind, PromSample,
};
use saga_trace::metrics::{HistogramDetail, MetricsSnapshot};
use std::collections::BTreeMap;

/// The characters real call sites use in registry names (letters,
/// digits, `.`-separated segments, indexed `.N` suffixes) plus the ones
/// the sanitizer and escaper exist for: spaces, quotes, backslashes,
/// newlines, and punctuation that collides after sanitization.
const NAME_ALPHABET: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '1', '9', '.', '_', ':', '-', '!', '/', '\\', '"', ' ', '\n',
];

fn raw_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..NAME_ALPHABET.len(), 1..16)
        .prop_map(|ix| ix.into_iter().map(|i| NAME_ALPHABET[i]).collect())
}

/// Label values get the full hostile treatment: escape-relevant
/// characters, control characters, and multi-byte Unicode.
const VALUE_ALPHABET: &[char] = &[
    'a', 'Z', '7', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{7f}', 'λ', '∞', '字', ' ', '=', ',',
    '{', '}',
];

fn label_value() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..VALUE_ALPHABET.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| VALUE_ALPHABET[i]).collect())
}

/// Finite values plus both infinities; `NaN` is excluded only because
/// the model comparison uses `==` (the renderer and parser both handle
/// `NaN` — covered by a unit test in `expose.rs`).
fn metric_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => any::<u64>().prop_map(|bits| {
            let v = f64::from_bits(bits);
            if v.is_finite() { v } else { bits as f64 }
        }),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
    ]
}

/// Valid-by-construction bucket detail: strictly ascending bounds,
/// non-decreasing cumulative counts, total count at least the last
/// bucket. Bounds stay far below 2^53 so their decimal rendering
/// parses back to distinct `f64`s.
fn hist_detail() -> impl Strategy<Value = HistogramDetail> {
    (
        proptest::collection::vec((1u64..1_000, 0u64..1_000), 0..6),
        0u64..1_000,
        any::<u32>(),
    )
        .prop_map(|(deltas, extra, sum)| {
            let mut bound = 0u64;
            let mut cum = 0u64;
            let mut buckets = Vec::new();
            for (dle, dcum) in deltas {
                bound += dle;
                cum += dcum;
                buckets.push((bound, cum));
            }
            HistogramDetail {
                buckets,
                count: cum + extra,
                sum: u64::from(sum),
            }
        })
}

/// Registry name uniqueness (the live registry is a map) via `BTreeMap`
/// collapse; generated duplicates just overwrite.
fn unique<V>(pairs: Vec<(String, V)>) -> Vec<(String, V)> {
    pairs.into_iter().collect::<BTreeMap<_, _>>().into_iter().collect()
}

proptest! {
    /// The headline property: any registry contents — colliding
    /// sanitized names, kind conflicts, indexed families, hostile
    /// characters — survive render → parse unchanged.
    #[test]
    fn registry_snapshot_roundtrips_through_exposition(
        counters in proptest::collection::vec((raw_name(), any::<u64>()), 0..8),
        gauges in proptest::collection::vec((raw_name(), metric_value()), 0..8),
        hists in proptest::collection::vec((raw_name(), hist_detail()), 0..4),
    ) {
        let snap = MetricsSnapshot {
            counters: unique(counters),
            gauges: unique(gauges),
            histograms: Vec::new(),
        };
        let details = unique(hists);
        let families = build_families(&snap, &details);
        let text = render_families(&families);
        let parsed = parse_prometheus(&text).map_err(|e| {
            TestCaseError::fail(format!(
                "validator rejected rendered text: {e}\n--- document ---\n{text}"
            ))
        })?;
        prop_assert_eq!(parsed, families);
    }

    /// Label *values* are arbitrary (quotes, backslashes, newlines,
    /// control characters, multi-byte Unicode); escaping must be
    /// lossless through the parser.
    #[test]
    fn hostile_label_values_roundtrip(
        values in proptest::collection::vec(label_value(), 1..5),
    ) {
        let samples = values
            .iter()
            .enumerate()
            .map(|(i, v)| PromSample {
                suffix: String::new(),
                // Distinct `idx` keeps series unique even when values repeat.
                labels: vec![
                    ("idx".to_string(), i.to_string()),
                    ("raw".to_string(), v.clone()),
                ],
                value: i as f64,
            })
            .collect();
        let families = vec![PromFamily {
            name: "hostile_labels".to_string(),
            kind: PromKind::Gauge,
            samples,
        }];
        let text = render_families(&families);
        let parsed = parse_prometheus(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(parsed, families);
    }

    /// Rendered histograms always satisfy the exposition invariants the
    /// validator checks: `le` ascending with `+Inf` last, cumulative
    /// counts non-decreasing, `+Inf == _count`, `_sum` present.
    #[test]
    fn rendered_histograms_satisfy_bucket_invariants(
        hists in proptest::collection::vec((raw_name(), hist_detail()), 1..4),
    ) {
        let snap = MetricsSnapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        let details = unique(hists);
        let families = build_families(&snap, &details);
        let text = render_families(&families);
        // `parse_prometheus` runs `validate_histogram` over every
        // histogram family; acceptance *is* the invariant check.
        let parsed = parse_prometheus(&text).map_err(TestCaseError::fail)?;
        for f in &parsed {
            prop_assert_eq!(f.kind, PromKind::Histogram);
            prop_assert!(f.samples.iter().any(|s| s.suffix == "_count"));
            prop_assert!(f.samples.iter().any(|s| s.suffix == "_sum"));
        }
    }
}
