//! Property tests for the log-bucketed histogram: every reported quantile
//! must land within one bucket (≤ 6.3% relative error) of the exact
//! sorted-sample quantile, across the full `u64` range — the contract the
//! module docs promise and `tail_sweep` relies on for its p99 columns.

use proptest::prelude::*;
use saga_trace::metrics::{bucket_index, Histogram};

/// The exact sorted-sample quantile at the same rank convention the
/// histogram uses: the sample of rank `ceil(q * n)`, 1-based.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Samples spanning the exact linear buckets, the log range timings live
/// in, and the extremes of the `u64` domain.
fn sample_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,              // exact linear buckets
        64u64..100_000_000,    // the nanosecond-timing range
        any::<u64>(),          // full range, including the top octave
    ]
}

proptest! {
    #[test]
    fn quantiles_within_one_bucket_of_exact(
        mut vals in proptest::collection::vec(sample_value(), 1..300),
    ) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&vals, q);
            let est = h.quantile(q);
            let (be, bi) = (bucket_index(exact), bucket_index(est));
            prop_assert!(
                be.abs_diff(bi) <= 1,
                "q={}: histogram {} (bucket {}) vs exact {} (bucket {})",
                q,
                est,
                bi,
                exact,
                be
            );
        }
    }

    #[test]
    fn summary_tracks_exact_extremes_and_is_monotone(
        mut vals in proptest::collection::vec(sample_value(), 1..300),
    ) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let s = h.summary();
        prop_assert_eq!(s.count, vals.len() as u64);
        prop_assert_eq!(s.min, vals[0]);
        prop_assert_eq!(s.max, *vals.last().unwrap());
        prop_assert!(s.min <= s.p50);
        prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        prop_assert!(s.p99 <= s.p999 && s.p999 <= s.max);
    }
}
