//! Request-scoped trace context: a 64-bit trace id (plus the minting
//! span's id) carried from the HTTP accept thread through queues and
//! worker pools so that one client request maps to its complete span
//! tree across threads.
//!
//! # Model
//!
//! A [`TraceCtx`] is minted once per logical request ([`TraceCtx::mint`])
//! and installed as the calling thread's *ambient* context with
//! [`scope`] (RAII — the previous context is restored on drop). While a
//! context is ambient, every span or instant the thread emits carries
//! the trace id in its ring slot (see `ring.rs`: a dedicated meta bit
//! plus the otherwise-unused duration word of `Begin`/`Instant` slots),
//! at the cost of one extra thread-local read on the *enabled* path
//! only — the disabled `span!` path is unchanged (one relaxed load).
//!
//! Crossing a thread boundary is explicit: capture [`current`] on the
//! producer side, ship the `Option<TraceCtx>` through the queue/closure,
//! and re-enter it with [`scope`] on the consumer side. The server does
//! this for tenant batches, and the BSP engine for its pool workers.
//!
//! # Known approximation
//!
//! Only the *trace id* travels in the ring slot; the parent span id in
//! [`TraceCtx`] identifies the minting (root) span but per-span parent
//! links are not recorded per event. The offline analyzer
//! (`analyze.rs`) reconstructs the tree: per-track LIFO pairing gives
//! intra-thread nesting exactly, and cross-thread edges are re-derived
//! from the shared trace id plus interval containment. This is
//! documented in DESIGN.md §14.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A request-scoped identity: `trace_id` names the whole request tree,
/// `span_id` the span that minted the context (the tree's root).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Process-unique nonzero id shared by every span in the tree.
    pub trace_id: u64,
    /// Id of the minting span (root of the tree).
    pub span_id: u64,
}

/// splitmix64: decorrelates sequential mint counters into ids whose hex
/// forms don't share prefixes (nicer in logs; collisions impossible
/// within a process because the input counter is unique).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

static NEXT: AtomicU64 = AtomicU64::new(1);

impl TraceCtx {
    /// Mints a fresh context with a process-unique nonzero trace id.
    pub fn mint() -> TraceCtx {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let trace_id = mix(n).max(1);
        TraceCtx {
            trace_id,
            span_id: mix(trace_id).max(1),
        }
    }

    /// The trace id as the fixed-width hex string used in the
    /// `x-saga-trace-id` response header and flight-dump file names.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The calling thread's ambient context, if any.
#[inline]
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(Cell::get)
}

/// Installs `ctx` as the calling thread's ambient context until the
/// returned guard drops (the previous context is restored — scopes
/// nest). Pass `None` to explicitly suppress inheritance in a region.
#[must_use = "the context is uninstalled when the guard drops"]
pub fn scope(ctx: Option<TraceCtx>) -> CtxScope {
    let prev = CURRENT.with(|c| c.replace(ctx));
    CtxScope { prev }
}

/// RAII guard restoring the previously ambient context. See [`scope`].
pub struct CtxScope {
    prev: Option<TraceCtx>,
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_unique_and_nonzero() {
        let a = TraceCtx::mint();
        let b = TraceCtx::mint();
        assert_ne!(a.trace_id, 0);
        assert_ne!(b.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.trace_hex().len(), 16);
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current(), None);
        let outer = TraceCtx::mint();
        let inner = TraceCtx::mint();
        {
            let _a = scope(Some(outer));
            assert_eq!(current(), Some(outer));
            {
                let _b = scope(Some(inner));
                assert_eq!(current(), Some(inner));
                {
                    let _c = scope(None);
                    assert_eq!(current(), None);
                }
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(outer));
        }
        assert_eq!(current(), None);
    }
}
