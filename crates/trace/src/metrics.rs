//! Metrics registry: counters, gauges, and log-bucketed histograms.
//!
//! The registry is process-global and always on (recording a counter is a
//! relaxed `fetch_add`; no enable gate is needed because callers only
//! record values they already computed). Software timings (the driver's
//! per-batch phase latencies) and simulated hardware counters (the
//! `saga-perf` cache hierarchy's hits/misses) land in the same namespace,
//! so one [`snapshot`] covers both sides of the paper's characterization.
//!
//! Histograms use base-2 log bucketing with 16 sub-buckets per octave
//! (values below 32 are exact), bounding the relative quantile error at
//! 1/16 ≈ 6.3% — the standard HdrHistogram-style trade: O(1) concurrent
//! recording, ~1k fixed buckets, and p50/p90/p99/p999 that are faithful to
//! within one bucket of the exact sorted-sample quantile (property-tested
//! in `tests/proptest_hist.rs`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution: 2^4 = 16 sub-buckets per octave.
const SUB_BITS: usize = 4;
const SUB: usize = 1 << SUB_BITS;
/// Values below `2 * SUB` get one exact bucket each.
const LINEAR_MAX: u64 = (2 * SUB) as u64;
/// Bucket count: 32 exact + 16 per octave for exponents 5..=63.
pub const BUCKETS: usize = 2 * SUB + (63 - SUB_BITS) * SUB;

/// A fixed-size log-bucketed histogram of `u64` samples (typically
/// nanoseconds), safe for concurrent recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    // v >= 32: exponent e = floor(log2 v) >= 5; keep the SUB_BITS bits
    // below the leading one as the sub-bucket.
    let e = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (e - SUB_BITS)) as usize) & (SUB - 1);
    LINEAR_MAX as usize + (e - SUB_BITS - 1) * SUB + sub
}

/// The half-open value range `[lo, hi)` covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < LINEAR_MAX as usize {
        return (index as u64, index as u64 + 1);
    }
    let j = index - LINEAR_MAX as usize;
    let e = SUB_BITS + 1 + j / SUB;
    let sub = (j % SUB) as u64;
    let lo = (SUB as u64 + sub) << (e - SUB_BITS);
    // The topmost bucket's exclusive bound is 2^64; saturate so it also
    // covers u64::MAX itself.
    let hi = lo.saturating_add(1u64 << (e - SUB_BITS));
    (lo, hi)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Records a duration in seconds as integer nanoseconds.
    pub fn record_secs(&self, seconds: f64) {
        self.record((seconds.max(0.0) * 1e9) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`): the inclusive upper bound of the
    /// bucket holding the sample of rank `ceil(q * count)` — within one
    /// bucket (≤ 6.3% relative error) of the exact sorted-sample quantile.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                // The exact max is tracked separately; clamping keeps
                // q=1.0 (and any quantile landing in the top occupied
                // bucket) from overshooting the largest recorded sample.
                return (bucket_bounds(i).1 - 1).min(self.max()).max(self.min());
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (the paper's tail-latency metric).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Occupied buckets as `(inclusive_upper_bound, cumulative_count)`
    /// pairs in ascending bound order — the shape Prometheus
    /// `_bucket{le=...}` samples need. Empty buckets are elided (the
    /// cumulative counts already carry them); the final pair's count
    /// equals [`Histogram::count`], rendered as `le="+Inf"` upstream.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((bucket_bounds(i).1 - 1, cum));
            }
        }
        out
    }

    /// Condenses the histogram into its summary row.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            p999: self.p999(),
            max: self.max(),
        }
    }
}

/// The exported quantile row of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest sample.
    pub max: u64,
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Hist(Arc<Histogram>),
}

static METRICS: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Metric>> {
    METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The counter registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Arc<Counter> {
    match registry()
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
    {
        Metric::Counter(c) => Arc::clone(c),
        other => panic!("metric `{name}` already registered as {other:?}"),
    }
}

/// Cap on live series per indexed family. Tenant/shard ids are minted
/// monotonically for the life of a server process, so an unbounded
/// family would grow one series per tenant *ever created* — a classic
/// cardinality leak. At the cap, new members get an unregistered
/// overflow sink (their handle still records, invisibly) and the
/// `metrics.series_dropped` counter is bumped; deleting a tenant must
/// evict its series with [`remove_indexed`] to make room.
pub const MAX_INDEXED_SERIES: usize = 256;

/// Counts the live members of family `name` (entries `name.<digits>`).
/// Caller holds the registry lock.
fn family_len(reg: &BTreeMap<String, Metric>, name: &str) -> usize {
    let prefix = format!("{name}.");
    reg.range(prefix.clone()..)
        .take_while(|(k, _)| k.starts_with(&prefix))
        .filter(|(k, _)| {
            let suffix = &k[prefix.len()..];
            !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit())
        })
        .count()
}

/// Bumps `metrics.series_dropped` while the registry lock is held (the
/// public [`counter`] helper would deadlock — `std::sync::Mutex` is not
/// reentrant).
fn bump_series_dropped(reg: &mut BTreeMap<String, Metric>) {
    let metric = reg
        .entry("metrics.series_dropped".to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
    if let Metric::Counter(c) = metric {
        c.incr();
    }
}

/// The counter registered under `name.index` (created on first use) —
/// the convention for per-shard / per-worker counter families, e.g.
/// `indexed_counter("bsp.shard_messages", 3)` →
/// `bsp.shard_messages.3`. Keeping the index in the name means a
/// [`snapshot`] lists every member of the family side by side, which is
/// how the BSP engine's per-shard imbalance shows up in reports.
///
/// Families are capped at [`MAX_INDEXED_SERIES`] live members; overflow
/// members record into an unregistered sink and are tallied in
/// `metrics.series_dropped`.
///
/// # Panics
///
/// Panics if the derived name is already registered as a different
/// metric kind.
pub fn indexed_counter(name: &str, index: usize) -> Arc<Counter> {
    let key = format!("{name}.{index}");
    let mut reg = registry();
    if let Some(metric) = reg.get(&key) {
        return match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric `{key}` already registered as {other:?}"),
        };
    }
    if family_len(&reg, name) >= MAX_INDEXED_SERIES {
        bump_series_dropped(&mut reg);
        return Arc::new(Counter::default());
    }
    let c = Arc::new(Counter::default());
    reg.insert(key, Metric::Counter(Arc::clone(&c)));
    c
}

/// The gauge registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    match registry()
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
    {
        Metric::Gauge(g) => Arc::clone(g),
        other => panic!("metric `{name}` already registered as {other:?}"),
    }
}

/// The gauge registered under `name.index` (created on first use) — the
/// gauge twin of [`indexed_counter`], used for per-instance families such
/// as `saga-server`'s per-tenant queue-depth gauges
/// (`server.queue_depth.3`). Keeping the index in the name means a
/// [`snapshot`] lists every member of the family side by side. Capped at
/// [`MAX_INDEXED_SERIES`] live members like [`indexed_counter`].
///
/// # Panics
///
/// Panics if the derived name is already registered as a different
/// metric kind.
pub fn indexed_gauge(name: &str, index: usize) -> Arc<Gauge> {
    let key = format!("{name}.{index}");
    let mut reg = registry();
    if let Some(metric) = reg.get(&key) {
        return match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric `{key}` already registered as {other:?}"),
        };
    }
    if family_len(&reg, name) >= MAX_INDEXED_SERIES {
        bump_series_dropped(&mut reg);
        return Arc::new(Gauge::default());
    }
    let g = Arc::new(Gauge::default());
    reg.insert(key, Metric::Gauge(Arc::clone(&g)));
    g
}

/// Evicts the `name.index` member of an indexed family (all kinds),
/// freeing its cardinality-budget slot. Tenant deletion calls this for
/// each per-tenant series. Returns whether the series existed.
pub fn remove_indexed(name: &str, index: usize) -> bool {
    registry().remove(&format!("{name}.{index}")).is_some()
}

/// The histogram registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Arc<Histogram> {
    match registry()
        .entry(name.to_string())
        .or_insert_with(|| Metric::Hist(Arc::new(Histogram::new())))
    {
        Metric::Hist(h) => Arc::clone(h),
        other => panic!("metric `{name}` already registered as {other:?}"),
    }
}

/// Unregisters every metric (held handles keep recording into orphans).
pub fn reset() {
    registry().clear();
}

/// A point-in-time copy of every registered metric, ordered by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// True when no metric holds any data.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// CSV rendering: `kind,name,count,value,min,p50,p90,p99,p999,max`
    /// (counters/gauges fill `value` only). Names are quoted per RFC
    /// 4180 when they contain `,`, `"`, or line breaks — metric names
    /// are arbitrary strings (derived from user-supplied labels in some
    /// callers), and an unescaped comma would shift every later column.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,count,value,min,p50,p90,p99,p999,max\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter,{},,{v},,,,,,\n", csv_field(name)));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge,{},,{v},,,,,,\n", csv_field(name)));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram,{},{},{:.1},{},{},{},{},{},{}\n",
                csv_field(name),
                h.count,
                h.mean,
                h.min,
                h.p50,
                h.p90,
                h.p99,
                h.p999,
                h.max
            ));
        }
        out
    }

    /// Parses a [`MetricsSnapshot::to_csv`] document back into a
    /// snapshot (RFC 4180 quoting honored). Histogram means survive only
    /// to the serialized `{:.1}` precision.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_csv(text: &str) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        let mut rows = split_csv_rows(text)?.into_iter();
        let header = rows.next().ok_or("empty document")?;
        if header.first().map(String::as_str) != Some("kind") {
            return Err(format!("bad header: {header:?}"));
        }
        for row in rows {
            if row.len() != 10 {
                return Err(format!("expected 10 fields, got {}: {row:?}", row.len()));
            }
            let name = row[1].clone();
            let num = |i: usize| -> Result<u64, String> {
                row[i].parse().map_err(|_| format!("bad u64 `{}`", row[i]))
            };
            match row[0].as_str() {
                "counter" => snap.counters.push((name, num(3)?)),
                "gauge" => snap.gauges.push((
                    name,
                    row[3].parse().map_err(|_| format!("bad f64 `{}`", row[3]))?,
                )),
                "histogram" => snap.histograms.push((
                    name,
                    HistogramSummary {
                        count: num(2)?,
                        mean: row[3].parse().map_err(|_| format!("bad f64 `{}`", row[3]))?,
                        min: num(4)?,
                        p50: num(5)?,
                        p90: num(6)?,
                        p99: num(7)?,
                        p999: num(8)?,
                        max: num(9)?,
                    },
                )),
                other => return Err(format!("unknown kind `{other}`")),
            }
        }
        Ok(snap)
    }

    /// Aligned plain-text rendering for terminals and `results/` files.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("counters/gauges:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count mean p50 p90 p99 p999 max):\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<40} {} {:.1} {} {} {} {} {}\n",
                    h.count, h.mean, h.p50, h.p90, h.p99, h.p999, h.max
                ));
            }
        }
        out
    }
}

/// Quotes one CSV field per RFC 4180: fields containing a comma, a
/// double quote, or a line break are wrapped in quotes with embedded
/// quotes doubled; everything else passes through verbatim.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Splits an RFC 4180 document into rows of unquoted fields. Quoted
/// fields may contain commas, doubled quotes, and line breaks.
fn split_csv_rows(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                c => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() => in_quotes = true,
            '"' => return Err("quote inside unquoted field".to_string()),
            ',' => {
                row.push(std::mem::take(&mut field));
                any = true;
            }
            '\r' => {}
            '\n' => {
                if any || !field.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                any = false;
            }
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".to_string());
    }
    if any || !field.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Bucket-level view of one live histogram, for exposition formats that
/// need more than the quantile summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramDetail {
    /// Occupied buckets as `(inclusive_upper_bound, cumulative_count)`,
    /// ascending (see [`Histogram::cumulative_buckets`]).
    pub buckets: Vec<(u64, u64)>,
    /// Total samples, taken as the final cumulative bucket count so the
    /// `+Inf` invariant (`bucket[+Inf] == count`) holds by construction
    /// even when sampled concurrently with recorders.
    pub count: u64,
    /// Sum of samples (racy with respect to `count` by at most the
    /// in-flight recordings; Prometheus semantics tolerate this).
    pub sum: u64,
}

/// Snapshots every live histogram with bucket detail, ordered by name.
pub fn histogram_details() -> Vec<(String, HistogramDetail)> {
    let mut out = Vec::new();
    for (name, metric) in registry().iter() {
        if let Metric::Hist(h) = metric {
            let buckets = h.cumulative_buckets();
            let count = buckets.last().map_or(0, |&(_, c)| c);
            out.push((
                name.clone(),
                HistogramDetail {
                    buckets,
                    count,
                    sum: h.sum(),
                },
            ));
        }
    }
    out
}

/// Snapshots every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (name, metric) in registry().iter() {
        match metric {
            Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
            Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
            Metric::Hist(h) => snap.histograms.push((name.clone(), h.summary())),
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that `reset()` the process-global registry must not
    /// interleave with each other under the parallel test harness.
    static REG_LOCK: Mutex<()> = Mutex::new(());

    fn registry_test() -> std::sync::MutexGuard<'static, ()> {
        let guard = REG_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        guard
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_contain() {
        let mut prev = 0usize;
        for v in (0u64..4096).chain([1 << 20, (1 << 20) + 7, u64::MAX / 2, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i >= prev || v < 4096, "index must not decrease");
            if v >= 4096 {
                prev = i;
            }
            let (lo, hi) = bucket_bounds(i);
            assert!(
                (lo..hi).contains(&v) || (hi == u64::MAX && v >= lo),
                "v={v} i={i} lo={lo} hi={hi}"
            );
            assert!(i < BUCKETS);
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0u64..32 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v + 1));
        }
    }

    #[test]
    fn histogram_quantiles_on_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // p50 of 1..=1000 is 500; one bucket at that magnitude spans
        // 1/16th, so accept the containing bucket.
        let p50 = h.p50();
        assert!((469..=532).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((928..=1055).contains(&p99), "p99={p99}");
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn record_secs_converts_to_nanos() {
        let h = Histogram::new();
        h.record_secs(1.5e-6);
        assert_eq!(h.count(), 1);
        let p = h.p50();
        let (lo, hi) = bucket_bounds(bucket_index(1500));
        assert!((lo..hi).contains(&p) || p == hi - 1, "p={p}");
        // Negative durations clamp to zero instead of wrapping.
        h.record_secs(-1.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn indexed_family_cardinality_is_bounded_under_churn() {
        let _guard = registry_test();
        // Churn 10k tenant ids through a gauge family without evicting:
        // the registry must stay at the cap, the rest counted as dropped.
        for id in 0..10_000usize {
            indexed_gauge("test.churn.depth", id).set(id as f64);
        }
        let live = {
            let snap = snapshot();
            snap.gauges
                .iter()
                .filter(|(n, _)| n.starts_with("test.churn.depth."))
                .count()
        };
        assert_eq!(live, MAX_INDEXED_SERIES);
        let dropped = {
            let snap = snapshot();
            snap.counters
                .iter()
                .find(|(n, _)| n == "metrics.series_dropped")
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(dropped, (10_000 - MAX_INDEXED_SERIES) as u64);
        // Overflow handles still work, they just record invisibly.
        indexed_gauge("test.churn.depth", 99_999).set(1.0);

        reset();
        // With delete-time eviction the same churn never overflows.
        for id in 0..10_000usize {
            indexed_counter("test.churn.msgs", id).incr();
            assert!(remove_indexed("test.churn.msgs", id));
        }
        let snap = snapshot();
        assert!(snap
            .counters
            .iter()
            .all(|(n, _)| !n.starts_with("test.churn.msgs.")));
        assert!(!snap
            .counters
            .iter()
            .any(|(n, _)| n == "metrics.series_dropped"));
        assert!(!remove_indexed("test.churn.msgs", 0));
        // Re-registration after eviction starts a fresh series.
        assert_eq!(indexed_counter("test.churn.msgs", 0).get(), 0);
        reset();
    }

    #[test]
    fn csv_escapes_and_roundtrips_hostile_names() {
        let _guard = registry_test();
        counter("plain.name").add(7);
        counter("comma,in,name").add(1);
        gauge("quote\"in\"name").set(2.5);
        gauge("newline\nin name").set(-0.25);
        histogram("crlf\r\nname").record(100);
        let snap = snapshot();
        let csv = snap.to_csv();
        // Every data row must still have exactly 10 columns once quoting
        // is honored (the old rendering shifted columns on commas).
        let parsed = MetricsSnapshot::parse_csv(&csv).unwrap();
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.gauges, snap.gauges);
        assert_eq!(parsed.histograms.len(), 1);
        assert_eq!(parsed.histograms[0].0, "crlf\r\nname");
        assert_eq!(parsed.histograms[0].1.count, 1);
        assert_eq!(parsed.histograms[0].1.max, snap.histograms[0].1.max);
        assert!(csv.contains("\"comma,in,name\""));
        assert!(csv.contains("\"quote\"\"in\"\"name\""));
        reset();
    }

    #[test]
    fn registry_roundtrip_and_kind_mismatch() {
        let _guard = registry_test();
        counter("test.reg.hits").add(3);
        counter("test.reg.hits").add(2);
        // Indexed counters are plain counters under a `name.index` family.
        indexed_counter("test.idx.shard", 0).add(4);
        indexed_counter("test.idx.shard", 1).add(9);
        indexed_counter("test.idx.shard", 0).incr();
        {
            let snap = snapshot();
            let family: Vec<_> = snap
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("test.idx.shard"))
                .cloned()
                .collect();
            assert_eq!(
                family,
                vec![
                    ("test.idx.shard.0".to_string(), 5),
                    ("test.idx.shard.1".to_string(), 9),
                ]
            );
        }
        reset();
        counter("test.reg.hits").add(5);
        gauge("test.reg.ratio").set(0.5);
        histogram("test.reg.lat").record(100);
        let snap = snapshot();
        assert_eq!(
            snap.counters,
            vec![("test.reg.hits".to_string(), 5)]
        );
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
        let csv = snap.to_csv();
        assert!(csv.starts_with("kind,name,"));
        assert!(csv.contains("counter,test.reg.hits,,5,"));
        assert!(!snap.render().is_empty());
        let res = std::panic::catch_unwind(|| gauge("test.reg.hits"));
        assert!(res.is_err(), "kind mismatch must panic");
        reset();
        assert!(snapshot().is_empty());
    }
}
