//! Chrome trace-event JSON exporter.
//!
//! Renders a drained event stream as the JSON object format consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! `traceEvents` array of `B`/`E`/`i`/`X` phase records, one `tid` per
//! track (thread or virtual stage), with `thread_name` metadata records
//! so the timeline rows carry the worker names. Timestamps are
//! microseconds with nanosecond fractions.
//!
//! The exporter guarantees well-formed output even from an imperfect
//! capture: per track, `E` events without a matching `B` are dropped and
//! spans still open at the end of the capture (the drop policy keeps an
//! exact prefix, so a truncated trace can end mid-span) are closed at the
//! capture's final timestamp. The nesting invariant — every `B` has an
//! `E`, strictly LIFO per track — is property-tested in
//! `crates/check/tests/trace_export.rs` against the hand-rolled
//! `saga_check::json` parser.

use crate::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond fraction, e.g. `1234.567`.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[allow(clippy::too_many_arguments)] // flat serializer of one record's fields
fn push_record(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    tid: usize,
    t_ns: u64,
    dur_ns: Option<u64>,
    arg: Option<&(String, u64)>,
    trace_id: Option<u64>,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
        escape(name),
        ph,
        tid,
        ts_us(t_ns)
    );
    if let Some(dur) = dur_ns {
        let _ = write!(out, ",\"dur\":{}", ts_us(dur));
    }
    if ph == 'i' {
        // Instant scope: thread.
        out.push_str(",\"s\":\"t\"");
    }
    if arg.is_some() || trace_id.is_some() {
        out.push_str(",\"args\":{");
        let mut inner_first = true;
        if let Some((key, value)) = arg {
            let _ = write!(out, "\"{}\":{}", escape(key), value);
            inner_first = false;
        }
        if let Some(trace) = trace_id {
            // Hex string, not a JSON number: 64-bit ids do not survive
            // the f64 round-trip viewers (and our own parser) apply.
            if !inner_first {
                out.push(',');
            }
            let _ = write!(out, "\"trace\":\"{trace:016x}\"");
        }
        out.push('}');
    }
    out.push('}');
}

/// Renders `events` as a complete Chrome trace-event JSON document.
///
/// Tracks are assigned `tid`s in order of first appearance; each gets a
/// `thread_name` metadata record. Events keep their per-track emission
/// order (viewers sort by `ts` themselves).
pub fn render(events: &[TraceEvent]) -> String {
    // tid per track, in order of first appearance (tid 0 is reserved for
    // the metadata-only process row Perfetto sometimes synthesizes).
    let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
    let mut order: Vec<&str> = Vec::new();
    for e in events {
        tids.entry(&e.track).or_insert_with(|| {
            order.push(&e.track);
            order.len()
        });
    }
    let end_ns = events.iter().map(|e| e.t_ns + e.dur_ns).max().unwrap_or(0);

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = false;
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"saga-bench\"}}",
    );
    for track in &order {
        let tid = tids[track];
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid,
            escape(track)
        );
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}"
        );
    }

    // Per-track open-span stacks for balancing: E without B is dropped,
    // B without E is auto-closed at the capture's end.
    let mut open: BTreeMap<usize, Vec<(String, u64)>> = BTreeMap::new();
    for e in events {
        let tid = tids[e.track.as_str()];
        match e.kind {
            EventKind::Begin => {
                open.entry(tid).or_default().push((e.name.clone(), e.t_ns));
                push_record(
                    &mut out,
                    &mut first,
                    &e.name,
                    'B',
                    tid,
                    e.t_ns,
                    None,
                    e.arg.as_ref(),
                    e.trace_id,
                );
            }
            EventKind::End => {
                let stack = open.entry(tid).or_default();
                if stack.last().is_some_and(|(name, _)| *name == e.name) {
                    stack.pop();
                    push_record(
                        &mut out, &mut first, &e.name, 'E', tid, e.t_ns, None, None, None,
                    );
                }
                // Mismatched or stray E: drop to preserve nesting.
            }
            EventKind::Instant => {
                push_record(
                    &mut out,
                    &mut first,
                    &e.name,
                    'i',
                    tid,
                    e.t_ns,
                    None,
                    e.arg.as_ref(),
                    e.trace_id,
                );
            }
            EventKind::Complete => {
                push_record(
                    &mut out,
                    &mut first,
                    &e.name,
                    'X',
                    tid,
                    e.t_ns,
                    Some(e.dur_ns),
                    e.arg.as_ref(),
                    None,
                );
            }
        }
    }
    // Close anything the capture left open, innermost first.
    for (tid, stack) in &mut open {
        while let Some((name, t_open)) = stack.pop() {
            push_record(
                &mut out,
                &mut first,
                &name,
                'E',
                *tid,
                end_ns.max(t_open),
                None,
                None,
                None,
            );
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(track: &str, name: &str, kind: EventKind, t_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            track: track.to_string(),
            t_ns,
            dur_ns,
            kind,
            name: name.to_string(),
            arg: None,
            trace_id: None,
        }
    }

    #[test]
    fn renders_balanced_spans_and_metadata() {
        let events = vec![
            ev("main", "batch", EventKind::Begin, 1000, 0),
            ev("main", "update", EventKind::Begin, 1100, 0),
            ev("main", "update", EventKind::End, 1900, 0),
            ev("main", "batch", EventKind::End, 2000, 0),
            ev("worker-1", "task", EventKind::Complete, 1200, 600),
        ];
        let json = render(&events);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"main\""));
        assert!(json.contains("\"name\":\"worker-1\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":0.600"));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
    }

    #[test]
    fn auto_closes_truncated_spans() {
        let events = vec![
            ev("main", "batch", EventKind::Begin, 100, 0),
            ev("main", "update", EventKind::Begin, 200, 0),
        ];
        let json = render(&events);
        // Both spans closed, innermost first, at the capture end.
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        let update_close = json.find("\"name\":\"update\",\"ph\":\"E\"").unwrap();
        let batch_close = json.find("\"name\":\"batch\",\"ph\":\"E\"").unwrap();
        assert!(update_close < batch_close);
    }

    #[test]
    fn drops_stray_end_events() {
        let events = vec![
            ev("main", "orphan", EventKind::End, 100, 0),
            ev("main", "real", EventKind::Begin, 200, 0),
            ev("main", "real", EventKind::End, 300, 0),
        ];
        let json = render(&events);
        assert!(!json.contains("\"name\":\"orphan\""));
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
    }

    #[test]
    fn trace_ids_export_as_hex_args() {
        let mut begin = ev("main", "req", EventKind::Begin, 100, 0);
        begin.trace_id = Some(0x00ab_cdef_0123_4567);
        let mut with_arg = ev("main", "work", EventKind::Begin, 150, 0);
        with_arg.trace_id = Some(1);
        with_arg.arg = Some(("ops".to_string(), 9));
        let events = vec![
            begin,
            with_arg,
            ev("main", "work", EventKind::End, 160, 0),
            ev("main", "req", EventKind::End, 200, 0),
        ];
        let json = render(&events);
        assert!(json.contains("\"args\":{\"trace\":\"00abcdef01234567\"}"), "{json}");
        assert!(
            json.contains("\"args\":{\"ops\":9,\"trace\":\"0000000000000001\"}"),
            "{json}"
        );
    }

    #[test]
    fn escapes_names() {
        let events = vec![ev("t", "we\"ird\\name", EventKind::Instant, 5, 0)];
        let json = render(&events);
        assert!(json.contains("we\\\"ird\\\\name"));
        assert!(json.contains("\"s\":\"t\""));
    }

    #[test]
    fn empty_capture_is_valid_json_shell() {
        let json = render(&[]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("}"));
    }
}
