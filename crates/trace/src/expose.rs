//! Prometheus text exposition (format version 0.0.4) and its in-tree
//! validating parser.
//!
//! The live server's `GET /metrics` renders the registry through
//! [`prometheus_text`]: counters and gauges become single samples,
//! indexed families (`name.3`) become one family with an `idx="3"`
//! label, and histograms expand to `_bucket{le=...}`/`_sum`/`_count`
//! sample groups (cumulative counts over the registry's log buckets,
//! empty buckets elided). A `saga_build_info{version=...} 1` gauge and
//! `saga_uptime_seconds` ride along.
//!
//! Registry names are arbitrary strings, Prometheus names are
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` — sanitization maps every other byte to
//! `_`. Two raw names may therefore collide after sanitization; the
//! renderer keeps the output well-formed by attaching a `raw="<original>"`
//! label to the later sample (duplicate series are invalid exposition),
//! and a family whose sanitized name is already taken by a different
//! *kind* gets a kind suffix. Both rules are deterministic, so
//! [`parse_prometheus`] round-trips the rendered model exactly — the
//! property the `proptest_expose` suite drives with hostile names.
//!
//! The parser doubles as the validator used by the server smoke tests
//! and `cargo xtask check-metrics`: it enforces the name/label grammar,
//! label-value escaping, histogram bucket monotonicity (cumulative
//! counts non-decreasing, `le` ascending, `+Inf` last and equal to
//! `_count`), and `_sum`/`_count` presence.

use crate::metrics::{histogram_details, HistogramDetail, MetricsSnapshot};
use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

/// Metric family kinds representable in the exposition format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonic counter.
    Counter,
    /// Last-write-wins gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

impl PromKind {
    fn as_str(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Histogram => "histogram",
        }
    }
}

/// One sample line within a family.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Name suffix: `""`, `"_bucket"`, `"_sum"`, or `"_count"`.
    pub suffix: String,
    /// Label pairs in rendered order (values unescaped).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// One `# TYPE` family and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    /// Sanitized family name.
    pub name: String,
    /// Family kind.
    pub kind: PromKind,
    /// Samples in rendered order.
    pub samples: Vec<PromSample>,
}

/// Maps an arbitrary registry name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
pub fn sanitize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for (i, c) in raw.chars().enumerate() {
        let ok = c == '_'
            || c == ':'
            || c.is_ascii_alphabetic()
            || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Splits `name.3`-style indexed-family members into `(family, index)`;
/// everything else keeps its full name and no index.
fn split_indexed(raw: &str) -> (&str, Option<&str>) {
    match raw.rsplit_once('.') {
        Some((family, idx))
            if !family.is_empty() && !idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit()) =>
        {
            (family, Some(idx))
        }
        _ => (raw, None),
    }
}

/// Escapes a label value (`\` → `\\`, `"` → `\"`, newline → `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Builds the family model for a registry snapshot: sanitized names,
/// indexed families folded into `idx` labels, histograms expanded to
/// bucket groups, collisions disambiguated (see the module docs).
pub fn build_families(
    snap: &MetricsSnapshot,
    details: &[(String, HistogramDetail)],
) -> Vec<PromFamily> {
    let mut families: Vec<PromFamily> = Vec::new();
    // (family index in `families`) keyed by sanitized name.
    let mut by_name: Vec<(String, usize)> = Vec::new();
    // Sample uniqueness within a family: (family idx, suffix, label string).
    let mut seen: Vec<(usize, String)> = Vec::new();

    let family_for = |families: &mut Vec<PromFamily>,
                          by_name: &mut Vec<(String, usize)>,
                          raw_family: &str,
                          kind: PromKind|
     -> usize {
        let mut name = sanitize_name(raw_family);
        loop {
            match by_name.iter().find(|(n, _)| *n == name) {
                Some(&(_, fi)) if families[fi].kind == kind => return fi,
                Some(_) => {
                    // Same sanitized name, different kind: a family may
                    // have only one TYPE, so suffix the later kind.
                    name.push('_');
                    name.push_str(kind.as_str());
                }
                None => {
                    families.push(PromFamily {
                        name: name.clone(),
                        kind,
                        samples: Vec::new(),
                    });
                    by_name.push((name, families.len() - 1));
                    return families.len() - 1;
                }
            }
        }
    };

    let push_sample = |families: &mut Vec<PromFamily>,
                           seen: &mut Vec<(usize, String)>,
                           fi: usize,
                           suffix: &str,
                           mut labels: Vec<(String, String)>,
                           value: f64,
                           raw: &str| {
        let key = |labels: &[(String, String)]| {
            let mut k = suffix.to_string();
            for (n, v) in labels {
                k.push('|');
                k.push_str(n);
                k.push('=');
                k.push_str(v);
            }
            k
        };
        if seen.iter().any(|(i, k)| *i == fi && *k == key(&labels)) {
            // Raw names that sanitize onto an existing series stay
            // distinguishable (and the exposition stays duplicate-free).
            labels.push(("raw".to_string(), raw.to_string()));
        }
        seen.push((fi, key(&labels)));
        families[fi].samples.push(PromSample {
            suffix: suffix.to_string(),
            labels,
            value,
        });
    };

    for (raw, v) in &snap.counters {
        let (family, idx) = split_indexed(raw);
        let fi = family_for(&mut families, &mut by_name, family, PromKind::Counter);
        let labels = idx
            .map(|i| vec![("idx".to_string(), i.to_string())])
            .unwrap_or_default();
        push_sample(&mut families, &mut seen, fi, "", labels, *v as f64, raw);
    }
    for (raw, v) in &snap.gauges {
        let (family, idx) = split_indexed(raw);
        let fi = family_for(&mut families, &mut by_name, family, PromKind::Gauge);
        let labels = idx
            .map(|i| vec![("idx".to_string(), i.to_string())])
            .unwrap_or_default();
        push_sample(&mut families, &mut seen, fi, "", labels, *v, raw);
    }
    for (raw, d) in details {
        let fi = family_for(&mut families, &mut by_name, raw, PromKind::Histogram);
        // A sanitized-name collision between two histograms would
        // interleave their bucket series; label the later one instead.
        let extra = if families[fi].samples.is_empty() {
            Vec::new()
        } else {
            vec![("raw".to_string(), raw.clone())]
        };
        for &(le, cum) in &d.buckets {
            let mut labels = extra.clone();
            labels.push(("le".to_string(), le.to_string()));
            push_sample(&mut families, &mut seen, fi, "_bucket", labels, cum as f64, raw);
        }
        let mut inf = extra.clone();
        inf.push(("le".to_string(), "+Inf".to_string()));
        push_sample(&mut families, &mut seen, fi, "_bucket", inf, d.count as f64, raw);
        push_sample(&mut families, &mut seen, fi, "_sum", extra.clone(), d.sum as f64, raw);
        push_sample(&mut families, &mut seen, fi, "_count", extra, d.count as f64, raw);
    }
    families
}

/// Renders a family model as exposition text.
pub fn render_families(families: &[PromFamily]) -> String {
    let mut out = String::new();
    for f in families {
        let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
        for s in &f.samples {
            out.push_str(&f.name);
            out.push_str(&s.suffix);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (n, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{n}=\"{}\"", escape_label(v));
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&fmt_value(s.value));
            out.push('\n');
        }
    }
    out
}

/// Process start marker for `saga_uptime_seconds` — pinned by the first
/// of [`mark_started`] / [`prometheus_text`].
static STARTED: OnceLock<Instant> = OnceLock::new();

/// Pins the uptime epoch; the server calls this at bind time.
pub fn mark_started() {
    let _ = STARTED.get_or_init(Instant::now);
}

/// Seconds since [`mark_started`].
pub fn uptime_seconds() -> f64 {
    STARTED.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Renders the whole live registry (plus build info and uptime) as
/// Prometheus exposition text — the `GET /metrics` body.
pub fn prometheus_text() -> String {
    let mut families = vec![
        PromFamily {
            name: "saga_build_info".to_string(),
            kind: PromKind::Gauge,
            samples: vec![PromSample {
                suffix: String::new(),
                labels: vec![(
                    "version".to_string(),
                    env!("CARGO_PKG_VERSION").to_string(),
                )],
                value: 1.0,
            }],
        },
        PromFamily {
            name: "saga_uptime_seconds".to_string(),
            kind: PromKind::Gauge,
            samples: vec![PromSample {
                suffix: String::new(),
                labels: Vec::new(),
                value: uptime_seconds(),
            }],
        },
    ];
    families.extend(build_families(
        &crate::metrics::snapshot(),
        &histogram_details(),
    ));
    render_families(&families)
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .enumerate()
            .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "NaN" => Ok(f64::NAN),
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        s => s.parse().map_err(|_| format!("bad value `{s}`")),
    }
}

/// A parsed series prefix: metric name, `(label, value)` pairs, and the
/// unparsed remainder of the line (the sample value text).
type ParsedSeries<'a> = (String, Vec<(String, String)>, &'a str);

/// Parses one `name{label="v",...}` prefix, returning the name, labels,
/// and the rest of the line (the value).
fn parse_series(line: &str) -> Result<ParsedSeries<'_>, String> {
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| format!("no value separator in `{line}`"))?;
    let name = &line[..name_end];
    let mut labels = Vec::new();
    let rest = if line.as_bytes()[name_end] == b'{' {
        let mut chars = line[name_end + 1..].char_indices();
        let close;
        'outer: loop {
            // Label name: chars up to `=`, or `}` closing the set.
            let mut lname = String::new();
            loop {
                match chars.next() {
                    Some((_, '=')) => break,
                    Some((i, '}')) if lname.is_empty() => {
                        close = i;
                        break 'outer;
                    }
                    Some((_, c)) if c != '"' && c != ',' && c != '}' => lname.push(c),
                    other => return Err(format!("bad label name char {other:?}")),
                }
            }
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err(format!("label `{lname}` value not quoted")),
            }
            let mut value = String::new();
            loop {
                match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    Some((_, '"')) => break,
                    Some((_, c)) => value.push(c),
                    None => return Err("unterminated label value".to_string()),
                }
            }
            if !valid_label_name(&lname) {
                return Err(format!("bad label name `{lname}`"));
            }
            labels.push((lname, value));
            match chars.next() {
                Some((_, ',')) => {}
                Some((i, '}')) => {
                    close = i;
                    break;
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
        &line[name_end + 1 + close + 1..]
    } else {
        &line[name_end..]
    };
    Ok((name.to_string(), labels, rest))
}

/// Parses and validates an exposition document, returning the family
/// model (see the module docs for the enforced invariants).
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromFamily>, String> {
    let mut families: Vec<PromFamily> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or(format!("line {ln}: malformed TYPE"))?;
            if !valid_name(name) {
                return Err(format!("line {ln}: bad family name `{name}`"));
            }
            if families.iter().any(|f| f.name == name) {
                return Err(format!("line {ln}: duplicate TYPE for `{name}`"));
            }
            let kind = match kind {
                "counter" => PromKind::Counter,
                "gauge" => PromKind::Gauge,
                "histogram" => PromKind::Histogram,
                k => return Err(format!("line {ln}: unknown kind `{k}`")),
            };
            families.push(PromFamily {
                name: name.to_string(),
                kind,
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name, labels, rest) = parse_series(line).map_err(|e| format!("line {ln}: {e}"))?;
        let value =
            parse_value(rest.trim()).map_err(|e| format!("line {ln}: {e}"))?;
        let family = families
            .last_mut()
            .ok_or(format!("line {ln}: sample before any TYPE"))?;
        let suffix = name
            .strip_prefix(&family.name)
            .ok_or_else(|| format!("line {ln}: `{name}` outside family `{}`", family.name))?;
        let suffix_ok = match family.kind {
            PromKind::Histogram => matches!(suffix, "_bucket" | "_sum" | "_count"),
            _ => suffix.is_empty(),
        };
        if !suffix_ok {
            return Err(format!(
                "line {ln}: suffix `{suffix}` invalid for {} family",
                family.kind.as_str()
            ));
        }
        if !valid_name(&name) {
            return Err(format!("line {ln}: bad sample name `{name}`"));
        }
        // Duplicate series check within the family.
        if family
            .samples
            .iter()
            .any(|s| s.suffix == suffix && s.labels == labels)
        {
            return Err(format!("line {ln}: duplicate series `{name}`"));
        }
        family.samples.push(PromSample {
            suffix: suffix.to_string(),
            labels,
            value,
        });
    }
    for f in &families {
        if f.kind == PromKind::Histogram {
            validate_histogram(f)?;
        }
    }
    Ok(families)
}

/// Histogram family invariants: per series group (labels minus `le`),
/// cumulative bucket counts non-decreasing in ascending `le` order with
/// `+Inf` last, `+Inf` count equal to the `_count` sample, and a `_sum`
/// sample present.
fn validate_histogram(f: &PromFamily) -> Result<(), String> {
    // Group key: labels without `le`.
    let group_key = |labels: &[(String, String)]| {
        labels
            .iter()
            .filter(|(n, _)| n != "le")
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut groups: Vec<String> = Vec::new();
    for s in &f.samples {
        let k = group_key(&s.labels);
        if !groups.contains(&k) {
            groups.push(k);
        }
    }
    for g in groups {
        let buckets: Vec<&PromSample> = f
            .samples
            .iter()
            .filter(|s| s.suffix == "_bucket" && group_key(&s.labels) == g)
            .collect();
        if buckets.is_empty() {
            return Err(format!("{}: histogram group `{g}` has no buckets", f.name));
        }
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = 0.0;
        for (i, b) in buckets.iter().enumerate() {
            let le = b
                .labels
                .iter()
                .find(|(n, _)| n == "le")
                .map(|(_, v)| v.as_str())
                .ok_or(format!("{}: bucket without le", f.name))?;
            let le = parse_value(le).map_err(|e| format!("{}: {e}", f.name))?;
            let last = i == buckets.len() - 1;
            if last != (le == f64::INFINITY) {
                return Err(format!("{}: +Inf bucket must come last, once", f.name));
            }
            if !last && le <= prev_le {
                return Err(format!("{}: le not ascending in group `{g}`", f.name));
            }
            if b.value < prev_count {
                return Err(format!(
                    "{}: cumulative counts decrease in group `{g}`",
                    f.name
                ));
            }
            prev_le = le;
            prev_count = b.value;
        }
        let count = f
            .samples
            .iter()
            .find(|s| s.suffix == "_count" && group_key(&s.labels) == g)
            .ok_or(format!("{}: group `{g}` missing _count", f.name))?;
        if (count.value - prev_count).abs() > f64::EPSILON * prev_count.abs() {
            return Err(format!(
                "{}: +Inf bucket ({prev_count}) != _count ({}) in group `{g}`",
                f.name, count.value
            ));
        }
        f.samples
            .iter()
            .find(|s| s.suffix == "_sum" && group_key(&s.labels) == g)
            .ok_or(format!("{}: group `{g}` missing _sum", f.name))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(
        counters: Vec<(&str, u64)>,
        gauges: Vec<(&str, f64)>,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            gauges: gauges.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            histograms: Vec::new(),
        }
    }

    #[test]
    fn renders_and_parses_basic_families() {
        let snap = snap_with(
            vec![
                ("server.requests", 42),
                ("bsp.shard_messages.0", 10),
                ("bsp.shard_messages.1", 12),
            ],
            vec![("server.queue_depth.3", 5.0)],
        );
        let details = vec![(
            "server.request_ns".to_string(),
            HistogramDetail {
                buckets: vec![(1023, 4), (2047, 9)],
                count: 9,
                sum: 12_345,
            },
        )];
        let families = build_families(&snap, &details);
        let text = render_families(&families);
        assert!(text.contains("# TYPE server_requests counter"));
        assert!(text.contains("bsp_shard_messages{idx=\"0\"} 10"));
        assert!(text.contains("server_queue_depth{idx=\"3\"} 5"));
        assert!(text.contains("server_request_ns_bucket{le=\"1023\"} 4"));
        assert!(text.contains("server_request_ns_bucket{le=\"+Inf\"} 9"));
        assert!(text.contains("server_request_ns_sum 12345"));
        assert!(text.contains("server_request_ns_count 9"));
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed, families);
    }

    #[test]
    fn colliding_sanitized_names_stay_unique() {
        let snap = snap_with(vec![("a.b", 1), ("a_b", 2), ("a b", 3)], vec![]);
        let families = build_families(&snap, &[]);
        let text = render_families(&families);
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed, families);
        // Three samples survive, distinguished by raw labels.
        let fam = parsed.iter().find(|f| f.name == "a_b").unwrap();
        assert_eq!(fam.samples.len(), 3);
        let raws: Vec<_> = fam
            .samples
            .iter()
            .flat_map(|s| s.labels.iter().filter(|(n, _)| n == "raw"))
            .collect();
        assert_eq!(raws.len(), 2);
    }

    #[test]
    fn kind_conflict_gets_suffixed_family() {
        let snap = snap_with(vec![("shared.name", 1)], vec![("shared/name", 2.0)]);
        let families = build_families(&snap, &[]);
        let text = render_families(&families);
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed, families);
        assert!(parsed.iter().any(|f| f.name == "shared_name"));
        assert!(parsed.iter().any(|f| f.name == "shared_name_gauge"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for (bad, why) in [
            ("server_requests 1\n", "sample before TYPE"),
            ("# TYPE a counter\n1bad 2\n", "bad name"),
            ("# TYPE a counter\na 1\na 2\n", "duplicate series"),
            ("# TYPE a counter\nb 1\n", "outside family"),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
                "+Inf != count",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"1\"} 4\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 4\n",
                "le not ascending",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
                "counts decrease",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
                "missing _sum",
            ),
        ] {
            assert!(parse_prometheus(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn label_values_escape_and_roundtrip() {
        let families = vec![PromFamily {
            name: "weird".to_string(),
            kind: PromKind::Gauge,
            samples: vec![PromSample {
                suffix: String::new(),
                labels: vec![("raw".to_string(), "a\"b\\c\nd".to_string())],
                value: -0.5,
            }],
        }];
        let text = render_families(&families);
        assert!(text.contains("raw=\"a\\\"b\\\\c\\nd\""));
        assert_eq!(parse_prometheus(&text).unwrap(), families);
    }

    #[test]
    fn special_values_roundtrip() {
        let families = vec![PromFamily {
            name: "g".to_string(),
            kind: PromKind::Gauge,
            samples: vec![
                PromSample {
                    suffix: String::new(),
                    labels: vec![("idx".to_string(), "0".to_string())],
                    value: f64::INFINITY,
                },
                PromSample {
                    suffix: String::new(),
                    labels: vec![("idx".to_string(), "1".to_string())],
                    value: f64::NEG_INFINITY,
                },
            ],
        }];
        let text = render_families(&families);
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed, families);
    }

    #[test]
    fn prometheus_text_includes_build_info_and_uptime() {
        let text = prometheus_text();
        assert!(text.contains("# TYPE saga_build_info gauge"));
        assert!(text.contains("saga_build_info{version=\""));
        assert!(text.contains("saga_uptime_seconds "));
        parse_prometheus(&text).unwrap();
    }
}
