//! Per-thread event rings and the global collector.
//!
//! Every thread that emits a trace event owns one [`ThreadRing`]: a
//! fixed-capacity array of atomic slots written only by that thread and
//! read by the collector. The hot path is wait-free — one monotonic index
//! load, four relaxed stores, one release store — and never blocks or
//! allocates after the ring exists (the ring itself is allocated lazily on
//! the thread's first event, so untraced runs allocate nothing).
//!
//! **Drop policy:** in the default (prefix) mode the ring does not wrap.
//! Once `RING_CAPACITY` events have been written, further events are
//! counted in `dropped` and discarded, so a drained trace is always an
//! exact *prefix* of the thread's event stream (wrap-around would instead
//! tear the oldest spans in half). The Chrome exporter closes any spans
//! the prefix left open.
//!
//! **Flight-recorder mode** ([`set_flight_recorder`]) inverts the policy
//! for long-lived servers: the ring wraps and always holds the *most
//! recent* `RING_CAPACITY` events per thread (overwritten events are
//! counted in `dropped`). A drain that races an emitting producer may
//! observe one torn slot per ring (the one being overwritten); the
//! decoders tolerate this — an unknown site resolves to `"<unknown>"`
//! and the Chrome exporter balances stray begins/ends — so a dump taken
//! from a live process is always well-formed, merely approximate at the
//! wrap frontier. Switch modes only across a [`clear`] quiescence point.
//!
//! Publication protocol (single producer, quiescent-or-racing reader):
//! the producer writes the four payload words with relaxed stores, then
//! publishes them with a release store of `head`; the collector acquires
//! `head` and reads only slots below it. [`clear`] may only be called when
//! no thread is emitting (e.g. after the pool's fork-join barrier), the
//! same contract as `saga_utils::probe::reset`.

use crate::{resolve_site, EventKind, Site};
use std::cell::OnceCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum events retained per thread before the drop policy engages.
pub const RING_CAPACITY: usize = 1 << 15;

/// One published event: four words, written relaxed before the ring's
/// `head` release-store publishes them.
struct Slot {
    /// Nanoseconds since the trace epoch.
    t_ns: AtomicU64,
    /// Packed `kind | has_arg | track | site` (see [`pack_meta`]).
    meta: AtomicU64,
    /// The argument value (valid when the `has_arg` bit is set).
    arg: AtomicU64,
    /// Duration in nanoseconds for [`EventKind::Complete`]; for
    /// `Begin`/`Instant` events with the `has_ctx` bit set, the word is
    /// reused to carry the trace id (a `Complete` never carries one).
    dur_ns: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Self {
            t_ns: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

const KIND_SHIFT: u32 = 56;
const CTX_SHIFT: u32 = 49;
const ARG_SHIFT: u32 = 48;
const TRACK_SHIFT: u32 = 32;

fn pack_meta(kind: EventKind, has_arg: bool, has_ctx: bool, track: u16, site: u32) -> u64 {
    ((kind as u64) << KIND_SHIFT)
        | ((has_ctx as u64) << CTX_SHIFT)
        | ((has_arg as u64) << ARG_SHIFT)
        | ((track as u64) << TRACK_SHIFT)
        | site as u64
}

fn unpack_meta(meta: u64) -> (EventKind, bool, bool, u16, u32) {
    let kind = match (meta >> KIND_SHIFT) & 0xff {
        0 => EventKind::Begin,
        1 => EventKind::End,
        2 => EventKind::Instant,
        _ => EventKind::Complete,
    };
    let has_ctx = (meta >> CTX_SHIFT) & 1 == 1;
    let has_arg = (meta >> ARG_SHIFT) & 1 == 1;
    let track = ((meta >> TRACK_SHIFT) & 0xffff) as u16;
    let site = (meta & 0xffff_ffff) as u32;
    (kind, has_arg, has_ctx, track, site)
}

/// One thread's event buffer, registered with the global collector for the
/// lifetime of the process (worker threads are pool-lifetime, so rings are
/// few and reused across runs).
struct ThreadRing {
    slots: Box<[Slot]>,
    /// Number of events written; monotonic within a run, reset by
    /// [`clear`]. A release store here publishes the slot payloads.
    head: AtomicUsize,
    /// Events discarded by the drop policy.
    dropped: AtomicU64,
    /// Interned id of the thread's default track name.
    track: AtomicUsize,
}

impl ThreadRing {
    fn new(track: usize) -> Self {
        Self {
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            track: AtomicUsize::new(track),
        }
    }

    /// Appends one event (producer side; owner thread only). `word` is
    /// the duration for `Complete` events, or the trace id when `has_ctx`
    /// (never both — the span-carrying kinds have no duration field).
    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        kind: EventKind,
        site: u32,
        track: u16,
        t_ns: u64,
        word: u64,
        has_ctx: bool,
        arg: Option<u64>,
    ) {
        let i = self.head.load(Ordering::Relaxed);
        if i >= RING_CAPACITY {
            if !flight_recorder() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // Wrap mode: the slot we are about to reuse holds the ring's
            // oldest event; count it as dropped so total-emitted
            // accounting (`drain().len() + dropped_events()`) still holds.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.slots[i % RING_CAPACITY];
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.meta.store(
            pack_meta(kind, arg.is_some(), has_ctx, track, site),
            Ordering::Relaxed,
        );
        slot.arg.store(arg.unwrap_or(0), Ordering::Relaxed);
        slot.dur_ns.store(word, Ordering::Relaxed);
        self.head.store(i + 1, Ordering::Release);
    }
}

/// Flight-recorder (wrap) mode flag; see the module docs. Relaxed is
/// sufficient for the same reason as the global enable flag.
static FLIGHT: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Whether the rings are in flight-recorder (keep-newest, wrapping) mode.
#[inline]
pub fn flight_recorder() -> bool {
    FLIGHT.load(Ordering::Relaxed)
}

/// Switches between prefix mode (`false`, the default: keep-oldest,
/// drop-newest) and flight-recorder mode (`true`: wrap, keep-newest).
/// Only switch across a [`clear`] quiescence point — mixing modes within
/// one capture makes the drain order undefined for pre-switch events.
pub fn set_flight_recorder(on: bool) {
    FLIGHT.store(on, Ordering::Relaxed);
}

/// All rings ever registered (lock taken on registration and drain only,
/// never on the emit path). Lock poisoning is ignored — a panicking emitter
/// leaves the registry structurally intact.
static REGISTRY: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

/// Interned track names; an event's `track` field (when non-zero) and a
/// ring's default `track` both index this table.
static TRACKS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Sequential fallback names for unnamed threads.
static ANON_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
    /// Muted threads never emit (and so never allocate a ring). Set by
    /// short-lived stage threads whose work is reported from elsewhere via
    /// [`emit_complete`] — a per-batch scope thread that allocated a
    /// pool-lifetime ring would leak one ring per batch.
    static MUTED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Permanently mutes the calling thread: its span/instant emissions become
/// no-ops and it never registers a ring with the collector.
pub fn mute_thread() {
    MUTED.with(|m| m.set(true));
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Interns `name` into the track table and returns its index.
pub(crate) fn intern_track(name: &str) -> usize {
    let mut tracks = lock(&TRACKS);
    if let Some(i) = tracks.iter().position(|t| t == name) {
        return i;
    }
    tracks.push(name.to_string());
    tracks.len() - 1
}

fn with_ring<R>(f: impl FnOnce(&ThreadRing) -> R) -> R {
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| {
                    format!("thread-{}", ANON_THREADS.fetch_add(1, Ordering::Relaxed))
                });
            let ring = Arc::new(ThreadRing::new(intern_track(&name)));
            lock(&REGISTRY).push(Arc::clone(&ring));
            ring
        });
        f(ring)
    })
}

/// The trace epoch: every timestamp is nanoseconds since the first call.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the trace epoch (the epoch is pinned on first use).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Renames the calling thread's track in exported timelines (e.g. the
/// pipelined driver labels its stages). Affects events emitted afterwards.
pub fn set_thread_track(name: &str) {
    let id = intern_track(name);
    with_ring(|ring| ring.track.store(id, Ordering::Relaxed));
}

/// Emits an event on the calling thread's ring.
///
/// `track` overrides the destination track (`None` = the thread's own);
/// used for [`EventKind::Complete`] events that describe work another
/// (short-lived) thread performed, so that thread never needs a ring.
pub(crate) fn emit(
    kind: EventKind,
    site: u32,
    track: Option<usize>,
    t_ns: u64,
    dur_ns: u64,
    arg: Option<u64>,
    trace: Option<u64>,
) {
    if MUTED.with(std::cell::Cell::get) {
        return;
    }
    // Track 0 in the packed meta means "the ring's default"; explicit
    // overrides are stored biased by one.
    let track = track.map(|t| (t + 1).min(u16::MAX as usize) as u16).unwrap_or(0);
    // The trace id rides in the duration word: only Complete events have
    // a real duration, and Complete never carries a context.
    let (word, has_ctx) = match trace {
        Some(id) if kind != EventKind::Complete => (id, true),
        _ => (dur_ns, false),
    };
    with_ring(|ring| ring.push(kind, site, track, t_ns, word, has_ctx, arg));
}

/// One decoded trace event, as consumed by the exporters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Track (timeline row) the event belongs to — the emitting thread's
    /// name unless overridden at emission.
    pub track: String,
    /// Nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds ([`EventKind::Complete`] only, else 0).
    pub dur_ns: u64,
    /// Phase kind.
    pub kind: EventKind,
    /// Span/event name (the `span!` site's literal).
    pub name: String,
    /// Optional `(key, value)` argument captured at the site.
    pub arg: Option<(String, u64)>,
    /// Trace id carried from the ambient [`crate::ctx::TraceCtx`] at
    /// emission, when one was installed.
    pub trace_id: Option<u64>,
}

/// Decodes and returns every event currently held by every ring,
/// per-thread emission order preserved within each ring. Non-destructive;
/// pair with [`clear`] between runs.
pub fn drain() -> Vec<TraceEvent> {
    let rings: Vec<Arc<ThreadRing>> = lock(&REGISTRY).clone();
    let tracks = lock(&TRACKS).clone();
    let mut out = Vec::new();
    for ring in rings {
        let head = ring.head.load(Ordering::Acquire);
        let n = head.min(RING_CAPACITY);
        // In prefix mode the oldest surviving event is slot 0; once a
        // wrapping ring has lapped, it is the slot head points at next.
        let start = if head > RING_CAPACITY { head } else { 0 };
        let default_track = ring.track.load(Ordering::Relaxed);
        for k in 0..n {
            let slot = &ring.slots[(start + k) % RING_CAPACITY];
            let (kind, has_arg, has_ctx, track, site) =
                unpack_meta(slot.meta.load(Ordering::Relaxed));
            let (name, arg_name) = resolve_site(site);
            let track_id = if track == 0 {
                default_track
            } else {
                track as usize - 1
            };
            let word = slot.dur_ns.load(Ordering::Relaxed);
            out.push(TraceEvent {
                track: tracks
                    .get(track_id)
                    .cloned()
                    .unwrap_or_else(|| format!("track-{track_id}")),
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                dur_ns: if has_ctx { 0 } else { word },
                kind,
                name: name.to_string(),
                arg: has_arg.then(|| (arg_name.to_string(), slot.arg.load(Ordering::Relaxed))),
                trace_id: has_ctx.then_some(word),
            });
        }
    }
    out
}

/// Total events discarded by the drop policy across all rings.
pub fn dropped_events() -> u64 {
    lock(&REGISTRY)
        .iter()
        .map(|r| r.dropped.load(Ordering::Relaxed))
        .sum()
}

/// Resets every ring for a fresh capture.
///
/// Caller must guarantee quiescence: no thread may be emitting
/// concurrently (after a pool fork-join barrier, the pool's own
/// synchronization provides the needed happens-before edge).
pub fn clear() {
    for ring in lock(&REGISTRY).iter() {
        ring.head.store(0, Ordering::Release);
        ring.dropped.store(0, Ordering::Relaxed);
    }
}

/// Emits a [`EventKind::Complete`] event for work measured elsewhere (for
/// example a short-lived stage thread), attributed to `track`.
pub fn emit_complete(site: &Site, track: &str, t_ns: u64, dur_ns: u64, arg: Option<u64>) {
    if !crate::enabled() {
        return;
    }
    let track_id = intern_track(track);
    emit(
        EventKind::Complete,
        site.id(),
        Some(track_id),
        t_ns,
        dur_ns,
        arg,
        None,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrips_all_fields() {
        for kind in [
            EventKind::Begin,
            EventKind::End,
            EventKind::Instant,
            EventKind::Complete,
        ] {
            for has_arg in [false, true] {
                for has_ctx in [false, true] {
                    let meta = pack_meta(kind, has_arg, has_ctx, 513, 0xdead_beef);
                    assert_eq!(
                        unpack_meta(meta),
                        (kind, has_arg, has_ctx, 513, 0xdead_beef)
                    );
                }
            }
        }
    }


    #[test]
    fn track_interning_dedupes() {
        let a = intern_track("saga-test-track");
        let b = intern_track("saga-test-track");
        assert_eq!(a, b);
        let c = intern_track("saga-test-track-2");
        assert_ne!(a, c);
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
