//! Counting `#[global_allocator]` wrapper: memory high-water accounting
//! with zero dependencies (ROADMAP item 5).
//!
//! The paper's cost story (and Dann et al.'s follow-up) is dominated by
//! memory behavior, so the telemetry layer reports bytes, not just
//! nanoseconds. [`CountingAlloc`] forwards to the [`System`] allocator
//! and maintains relaxed global counters — cumulative bytes allocated,
//! currently live bytes, and the high-water mark of live bytes — plus a
//! per-thread cumulative-allocation tally that lets a tenant worker
//! attribute growth to itself (each tenant owns exactly one thread).
//!
//! The type is always compiled (and unit-tested by calling the
//! `GlobalAlloc` methods directly), but it only observes the process
//! when *installed*, which the `saga-server` binary does behind the
//! `alloc-track` cargo feature:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: saga_trace::alloc::CountingAlloc = saga_trace::alloc::CountingAlloc;
//! ```
//!
//! Costs when installed: two relaxed `fetch_add`s, one `fetch_max`, and
//! one thread-local increment per allocation — no locks, reentrancy-safe
//! (the counters never allocate). The thread tally uses a const-init
//! `Cell` with no destructor, accessed through `try_with`, so it is safe
//! in allocations that occur during TLS teardown.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL: AtomicU64 = AtomicU64::new(0);
static CURRENT: AtomicU64 = AtomicU64::new(0);
static HIGH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-init, no destructor: required in allocator context, where a
    // TLS value with a drop impl would recurse into the allocator.
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn note_alloc(size: usize) {
    let size = size as u64;
    TOTAL.fetch_add(size, Ordering::Relaxed);
    let live = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    HIGH.fetch_max(live, Ordering::Relaxed);
    let _ = THREAD_BYTES.try_with(|b| b.set(b.get() + size));
}

#[inline]
fn note_dealloc(size: usize) {
    CURRENT.fetch_sub(size as u64, Ordering::Relaxed);
}

/// Cumulative bytes allocated since process start (never decreases).
pub fn total_allocated_bytes() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Bytes currently live (allocated minus freed).
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark of live bytes (since process start or the last
/// [`reset_high_water`]).
pub fn high_water_bytes() -> u64 {
    HIGH.load(Ordering::Relaxed)
}

/// Restarts the high-water tracking epoch from the current live size,
/// so per-phase peaks can be measured. Racy against concurrent
/// allocators by design (the mark re-raises immediately).
pub fn reset_high_water() {
    HIGH.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Cumulative bytes the *calling thread* has allocated. A tenant worker
/// samples this at batch boundaries to attribute allocation to its own
/// tenant (allocations the tenant causes on shared pool threads are not
/// attributed — a documented approximation, DESIGN.md §14).
pub fn thread_allocated_bytes() -> u64 {
    THREAD_BYTES.try_with(Cell::get).unwrap_or(0)
}

/// Whether a counting allocator is actually installed (heuristic: any
/// allocation has been observed — always true by the time user code
/// runs, since Rust's runtime setup allocates).
pub fn tracking_active() -> bool {
    TOTAL.load(Ordering::Relaxed) != 0
}

/// The counting allocator. Unit struct: all state is in statics so the
/// metrics are readable without a handle to the installed instance.
pub struct CountingAlloc;

// SAFETY: every method forwards to `System`, which upholds the
// `GlobalAlloc` contract (layout fidelity, no spurious failure
// reporting); the counters never allocate, never unwind, and touch only
// relaxed atomics plus a destructor-free TLS cell, so the forwarding
// adds no new failure or reentrancy modes.
unsafe impl GlobalAlloc for CountingAlloc {
    /// # Safety
    /// Same contract as [`GlobalAlloc::alloc`]: `layout` must have
    /// non-zero size.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller upholds `alloc`'s contract (non-zero-size
        // layout); we pass it through unchanged.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    /// # Safety
    /// Same contract as [`GlobalAlloc::alloc_zeroed`]: `layout` must
    /// have non-zero size.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: as in `alloc`; the layout is forwarded unchanged.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    /// # Safety
    /// Same contract as [`GlobalAlloc::dealloc`]: `ptr` must have been
    /// allocated by this allocator with exactly `layout`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` was allocated by this
        // allocator with `layout`; since we forward allocations to
        // `System` unchanged, the pair is valid for `System` too.
        unsafe { System.dealloc(ptr, layout) };
        note_dealloc(layout.size());
    }

    /// # Safety
    /// Same contract as [`GlobalAlloc::realloc`]: `(ptr, layout)` must
    /// be a live allocation of this allocator and `new_size` non-zero.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller guarantees the (ptr, layout) pair and a
        // non-zero `new_size` per `realloc`'s contract; forwarded
        // unchanged to the system allocator.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Only on success: a failed realloc leaves the old block.
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The counters are process-global; the allocator is not installed
    /// in the test binary, so only these tests move them — but they
    /// still must not interleave with each other.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn alloc_test() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counts_alloc_dealloc_and_high_water() {
        let _guard = alloc_test();
        let a = CountingAlloc;
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let total0 = total_allocated_bytes();
        let thread0 = thread_allocated_bytes();
        // SAFETY: a fresh non-zero-size layout; the pointer is freed
        // below with the same layout before the test returns.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        assert!(total_allocated_bytes() >= total0 + 4096);
        assert!(thread_allocated_bytes() >= thread0 + 4096);
        assert!(high_water_bytes() >= 4096);
        let live = current_bytes();
        // SAFETY: `p` came from `a.alloc(layout)` just above.
        unsafe { a.dealloc(p, layout) };
        assert!(current_bytes() < live || live == 0);
    }

    #[test]
    fn realloc_moves_the_live_count() {
        let _guard = alloc_test();
        let a = CountingAlloc;
        let layout = Layout::from_size_align(1024, 8).unwrap();
        // SAFETY: fresh layout; the resulting pointer is reallocated and
        // finally freed with its grown layout.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        let before = current_bytes();
        // SAFETY: `p` was allocated with `layout` by this allocator and
        // 8192 is non-zero.
        let q = unsafe { a.realloc(p, layout, 8192) };
        assert!(!q.is_null());
        assert!(current_bytes() >= before + (8192 - 1024));
        let grown = Layout::from_size_align(8192, 8).unwrap();
        // SAFETY: `q` is the live block, now of `grown` layout.
        unsafe { a.dealloc(q, grown) };
    }

    #[test]
    fn reset_high_water_rebases_to_live() {
        let _guard = alloc_test();
        let a = CountingAlloc;
        let layout = Layout::from_size_align(1 << 16, 8).unwrap();
        // SAFETY: fresh non-zero-size layout, freed below.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        assert!(high_water_bytes() >= 1 << 16);
        // SAFETY: `p` came from `a.alloc(layout)`.
        unsafe { a.dealloc(p, layout) };
        reset_high_water();
        assert_eq!(high_water_bytes(), current_bytes());
    }
}
