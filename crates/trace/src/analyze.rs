//! Offline trace analyzer: span trees, per-trace stitching, span
//! statistics, and critical-path extraction over a captured event
//! stream (`cargo xtask analyze-trace` is the CLI face).
//!
//! # Tree reconstruction
//!
//! Intra-thread structure is exact: per track, `Begin`/`End` events pair
//! LIFO (stray `End`s are dropped, unclosed `Begin`s close at the
//! capture's end — the same balancing the Chrome exporter applies), so
//! each track yields a forest of [`SpanNode`]s.
//!
//! Cross-thread structure is *reconstructed*, not recorded: only the
//! trace id travels in the ring slots (see `ctx.rs`). [`trace_trees`]
//! extracts, per trace id, the maximal id-carrying subtrees from every
//! track (so a long-lived pool `task` span enclosing many requests
//! doesn't swallow them), takes the earliest as the tree's root, and
//! attaches every later one under the deepest already-placed node whose
//! interval contains it. Two cases fall out naturally:
//!
//! - nested work (BSP scatter/gather inside a driver `compute`) is
//!   time-contained and lands under the containing span;
//! - asynchronous continuations (a `tenant_batch` processed after the
//!   `http_request` that enqueued it already returned `202`) are *not*
//!   contained and attach directly under the root — a parent/child edge
//!   that means "caused by", not "ran within" (DESIGN.md §14).

use crate::ring::TraceEvent;
use crate::EventKind;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (the `span!` site literal).
    pub name: String,
    /// Track the span ran on.
    pub track: String,
    /// Open timestamp, ns since the trace epoch.
    pub t_ns: u64,
    /// Close timestamp.
    pub end_ns: u64,
    /// Trace id the span carried, if any.
    pub trace_id: Option<u64>,
    /// Child spans: exact nesting within a track, reconstructed
    /// causality across tracks.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall-clock duration.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.t_ns)
    }

    /// Depth-first walk over the node and its descendants.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a SpanNode, usize)) {
        fn go<'a>(n: &'a SpanNode, depth: usize, f: &mut impl FnMut(&'a SpanNode, usize)) {
            f(n, depth);
            for c in &n.children {
                go(c, depth + 1, f);
            }
        }
        go(self, 0, f);
    }

    /// Leaf names in depth-first order.
    pub fn leaf_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |n, _| {
            if n.children.is_empty() {
                out.push(n.name.as_str());
            }
        });
        out
    }
}

/// Reconstructs each track's span forest (exact LIFO pairing; see the
/// module docs for the balancing rules). Returned in track order, roots
/// in open order.
pub fn build_forests(events: &[TraceEvent]) -> BTreeMap<String, Vec<SpanNode>> {
    let cap_end = events
        .iter()
        .map(|e| e.t_ns + e.dur_ns)
        .max()
        .unwrap_or(0);
    let mut by_track: BTreeMap<String, (Vec<SpanNode>, Vec<SpanNode>)> = BTreeMap::new();
    for e in events {
        let (roots, stack) = by_track.entry(e.track.clone()).or_default();
        match e.kind {
            EventKind::Begin => stack.push(SpanNode {
                name: e.name.clone(),
                track: e.track.clone(),
                t_ns: e.t_ns,
                end_ns: e.t_ns,
                trace_id: e.trace_id,
                children: Vec::new(),
            }),
            EventKind::End => {
                if stack.last().is_some_and(|n| n.name == e.name) {
                    let mut node = stack.pop().unwrap();
                    node.end_ns = e.t_ns.max(node.t_ns);
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => roots.push(node),
                    }
                }
                // Stray End: dropped, as in the Chrome exporter.
            }
            EventKind::Instant | EventKind::Complete => {
                let node = SpanNode {
                    name: e.name.clone(),
                    track: e.track.clone(),
                    t_ns: e.t_ns,
                    end_ns: e.t_ns + e.dur_ns,
                    trace_id: e.trace_id,
                    children: Vec::new(),
                };
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => roots.push(node),
                }
            }
        }
    }
    by_track
        .into_iter()
        .map(|(track, (mut roots, mut stack))| {
            // Close anything left open at the capture end, innermost
            // first, preserving the nesting.
            while let Some(mut node) = stack.pop() {
                node.end_ns = cap_end.max(node.t_ns);
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => roots.push(node),
                }
            }
            (track, roots)
        })
        .collect()
}

/// One request's stitched tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The trace id shared by every stitched root.
    pub trace_id: u64,
    /// The earliest root, with all later same-trace roots attached.
    pub root: SpanNode,
}

/// Collects, per trace id, the *maximal id-carrying subtrees*: nodes
/// whose own trace id differs from the one inherited through their
/// ancestors. Extraction (rather than whole-root grouping) matters on
/// long-lived worker threads: a pool worker's `task` span stays open
/// for the server's lifetime and temporally encloses every request it
/// serves, so the per-request spans are *children* of an id-less
/// eternal root — each one must still start its own stitch unit.
fn collect_stitch_roots(
    n: &SpanNode,
    inherited: Option<u64>,
    out: &mut BTreeMap<u64, Vec<SpanNode>>,
) {
    if let Some(id) = n.trace_id {
        if inherited != Some(id) {
            out.entry(id).or_default().push(n.clone());
        }
    }
    let own = n.trace_id.or(inherited);
    for c in &n.children {
        collect_stitch_roots(c, own, out);
    }
}

/// Attaches `node` under the deepest span in `tree` whose interval
/// contains `node`'s start; returns the node back when nothing does.
/// Children are tried before the node itself: a previously attached
/// *causal* child extends beyond its parent's interval, so a later root
/// may belong inside a child even when the parent's own interval
/// already ended.
fn attach(tree: &mut SpanNode, node: SpanNode) -> Option<SpanNode> {
    for child in tree.children.iter_mut().rev() {
        if child.t_ns <= node.t_ns && node.t_ns <= child.end_ns {
            return attach(child, node);
        }
    }
    if tree.t_ns <= node.t_ns && node.t_ns <= tree.end_ns {
        tree.children.push(node);
        return None;
    }
    Some(node)
}

/// Extracts each trace's maximal id-carrying subtrees from every track
/// and stitches each group into one [`TraceTree`] (see the module
/// docs). Spans that neither carry nor inherit a trace id never appear
/// in any tree.
pub fn trace_trees(events: &[TraceEvent]) -> Vec<TraceTree> {
    let forests = build_forests(events);
    let mut by_trace: BTreeMap<u64, Vec<SpanNode>> = BTreeMap::new();
    for roots in forests.into_values() {
        for root in roots {
            collect_stitch_roots(&root, None, &mut by_trace);
        }
    }
    let mut out = Vec::new();
    for (trace_id, mut roots) in by_trace {
        roots.sort_by_key(|r| r.t_ns);
        let mut iter = roots.into_iter();
        let mut tree = iter.next().expect("group is non-empty");
        for root in iter {
            if let Some(unplaced) = attach(&mut tree, root) {
                // Asynchronous continuation: started after every placed
                // interval closed. Attached under the root as a
                // causal (not temporal) child.
                tree.children.push(unplaced);
            }
        }
        out.push(TraceTree {
            trace_id,
            root: tree,
        });
    }
    out
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Occurrences.
    pub count: u64,
    /// Summed wall-clock duration.
    pub total_ns: u64,
    /// Summed duration minus time covered by child spans (clamped at 0
    /// per node — children on other threads can overlap their parent).
    pub self_ns: u64,
    /// Longest single occurrence.
    pub max_ns: u64,
}

/// Per-name span statistics over every track, sorted by total duration
/// descending.
pub fn span_stats(events: &[TraceEvent]) -> Vec<SpanStats> {
    let forests = build_forests(events);
    let mut by_name: BTreeMap<String, SpanStats> = BTreeMap::new();
    for roots in forests.values() {
        for root in roots {
            root.walk(&mut |n, _| {
                let children_ns: u64 = n.children.iter().map(SpanNode::dur_ns).sum();
                let stats = by_name.entry(n.name.clone()).or_insert_with(|| SpanStats {
                    name: n.name.clone(),
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                    max_ns: 0,
                });
                stats.count += 1;
                stats.total_ns += n.dur_ns();
                stats.self_ns += n.dur_ns().saturating_sub(children_ns);
                stats.max_ns = stats.max_ns.max(n.dur_ns());
            });
        }
    }
    let mut out: Vec<SpanStats> = by_name.into_values().collect();
    out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    out
}

/// The critical path through a tree: from the root, repeatedly descend
/// into the longest child. Returns `(name, dur_ns)` pairs, root first.
pub fn critical_path(root: &SpanNode) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut node = root;
    loop {
        out.push((node.name.clone(), node.dur_ns()));
        match node.children.iter().max_by_key(|c| c.dur_ns()) {
            Some(next) => node = next,
            None => return out,
        }
    }
}

/// Human-readable report: span stats table plus, per stitched trace,
/// the root, span count, and critical path. The `analyze-trace` xtask
/// prints this.
pub fn render_report(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let stats = span_stats(events);
    out.push_str("span-stats (name count total_us self_us max_us):\n");
    for s in &stats {
        let _ = writeln!(
            out,
            "  {:<28} {:>6} {:>12.1} {:>12.1} {:>12.1}",
            s.name,
            s.count,
            s.total_ns as f64 / 1e3,
            s.self_ns as f64 / 1e3,
            s.max_ns as f64 / 1e3,
        );
    }
    let trees = trace_trees(events);
    let _ = writeln!(out, "traces: {}", trees.len());
    for t in &trees {
        let mut spans = 0usize;
        t.root.walk(&mut |_, _| spans += 1);
        let path = critical_path(&t.root);
        let path_str: Vec<String> = path
            .iter()
            .map(|(n, d)| format!("{n} ({:.1}us)", *d as f64 / 1e3))
            .collect();
        let _ = writeln!(
            out,
            "  trace {:016x}: root={} spans={} critical-path: {}",
            t.trace_id,
            t.root.name,
            spans,
            path_str.join(" -> "),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(track: &str, name: &str, kind: EventKind, t_ns: u64, trace: Option<u64>) -> TraceEvent {
        TraceEvent {
            track: track.to_string(),
            t_ns,
            dur_ns: 0,
            kind,
            name: name.to_string(),
            arg: None,
            trace_id: trace,
        }
    }

    /// The server shape: the HTTP span closes (202) before the tenant
    /// worker processes the batch; BSP workers nest inside compute.
    fn server_shaped_events(trace: u64) -> Vec<TraceEvent> {
        vec![
            // accept thread: request span, closes at 200.
            ev("http", "http_request", EventKind::Begin, 100, Some(trace)),
            ev("http", "http_request", EventKind::End, 200, None),
            // tenant worker: batch processed later (async continuation).
            ev("tenant", "tenant_batch", EventKind::Begin, 300, Some(trace)),
            ev("tenant", "update", EventKind::Begin, 310, Some(trace)),
            ev("tenant", "update", EventKind::End, 400, None),
            ev("tenant", "compute", EventKind::Begin, 400, Some(trace)),
            ev("tenant", "compute", EventKind::End, 900, None),
            ev("tenant", "tenant_batch", EventKind::End, 950, None),
            // BSP pool worker: nested inside compute's interval.
            ev("bsp-0", "bsp-scatter", EventKind::Begin, 450, Some(trace)),
            ev("bsp-0", "bsp-scatter", EventKind::End, 600, None),
        ]
    }

    #[test]
    fn forests_pair_lifo_and_close_truncated() {
        let events = vec![
            ev("t", "outer", EventKind::Begin, 10, None),
            ev("t", "inner", EventKind::Begin, 20, None),
            ev("t", "inner", EventKind::End, 30, None),
            ev("t", "dangling", EventKind::Begin, 40, None),
        ];
        let forests = build_forests(&events);
        let roots = &forests["t"];
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "outer");
        assert_eq!(roots[0].children.len(), 2);
        assert_eq!(roots[0].children[0].name, "inner");
        assert_eq!(roots[0].children[0].dur_ns(), 10);
        // Truncated spans close at the capture end (40 here).
        assert_eq!(roots[0].children[1].name, "dangling");
        assert_eq!(roots[0].end_ns, 40);
    }

    #[test]
    fn stitches_async_and_nested_roots_into_one_tree() {
        let trees = trace_trees(&server_shaped_events(7));
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert_eq!(t.trace_id, 7);
        assert_eq!(t.root.name, "http_request");
        // tenant_batch started after http_request closed: causal child
        // of the root.
        assert_eq!(t.root.children.len(), 1);
        let batch = &t.root.children[0];
        assert_eq!(batch.name, "tenant_batch");
        // bsp-scatter is time-contained in compute: nested there.
        let compute = batch
            .children
            .iter()
            .find(|c| c.name == "compute")
            .unwrap();
        assert_eq!(compute.children.len(), 1);
        assert_eq!(compute.children[0].name, "bsp-scatter");
        assert!(t.root.leaf_names().contains(&"bsp-scatter"));
    }

    #[test]
    fn eternal_enclosing_spans_do_not_swallow_requests() {
        // The live-server shape: the pool worker's `task` span opens at
        // startup and never closes during the capture, so every request
        // span is temporally its child. Each must still root its own
        // stitched tree, and the id-less `task` must appear in none.
        let events = vec![
            ev("pool-0", "task", EventKind::Begin, 0, None),
            ev("pool-0", "http_request", EventKind::Begin, 100, Some(1)),
            ev("pool-0", "http_request", EventKind::End, 200, None),
            ev("pool-0", "http_request", EventKind::Begin, 300, Some(2)),
            ev("pool-0", "http_request", EventKind::End, 400, None),
            ev("tenant", "tenant_batch", EventKind::Begin, 500, Some(2)),
            ev("tenant", "tenant_batch", EventKind::End, 600, None),
        ];
        let trees = trace_trees(&events);
        assert_eq!(trees.len(), 2);
        assert!(trees.iter().all(|t| t.root.name == "http_request"));
        let second = trees.iter().find(|t| t.trace_id == 2).unwrap();
        assert_eq!(second.root.children.len(), 1);
        assert_eq!(second.root.children[0].name, "tenant_batch");
    }

    #[test]
    fn distinct_traces_stay_separate() {
        let mut events = server_shaped_events(1);
        let mut shifted: Vec<TraceEvent> = server_shaped_events(2)
            .into_iter()
            .map(|mut e| {
                e.t_ns += 10_000;
                e.track.push('b');
                e
            })
            .collect();
        events.append(&mut shifted);
        let trees = trace_trees(&events);
        assert_eq!(trees.len(), 2);
        assert!(trees.iter().all(|t| t.root.name == "http_request"));
    }

    #[test]
    fn stats_and_critical_path_cover_the_tree() {
        let events = server_shaped_events(9);
        let stats = span_stats(&events);
        let compute = stats.iter().find(|s| s.name == "compute").unwrap();
        assert_eq!(compute.count, 1);
        assert_eq!(compute.total_ns, 500);
        let batch = stats.iter().find(|s| s.name == "tenant_batch").unwrap();
        // update (90) + compute (500) covered; 650 total.
        assert_eq!(batch.total_ns, 650);
        assert_eq!(batch.self_ns, 60);

        let trees = trace_trees(&events);
        let path = critical_path(&trees[0].root);
        let names: Vec<&str> = path.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["http_request", "tenant_batch", "compute", "bsp-scatter"]
        );
        let report = render_report(&events);
        assert!(report.contains("span-stats"));
        assert!(report.contains("critical-path"));
        assert!(report.contains("http_request"));
    }
}
