//! `saga-trace`: dependency-free observability for the SAGA-Bench suite.
//!
//! The paper's core quantity is per-batch latency decomposed into an
//! update and a compute phase (Eq. 1), its pipelined argument rests on
//! phase *overlap* (Fig. 9), and its tail claims on per-batch latency
//! distributions (Fig. 10). This crate is the measurement substrate for
//! all three: structured spans collected into per-thread lock-free rings
//! ([`ring`]), a counters/gauges/histograms registry ([`metrics`]), and a
//! Chrome trace-event exporter ([`chrome`]) that renders the captured
//! spans as one timeline track per pool worker — making update/compute
//! overlap literally visible in `chrome://tracing` or Perfetto.
//!
//! # Layering
//!
//! This crate sits *below* `saga-utils` so the thread pool itself can emit
//! spans. It therefore cannot use the `saga_utils::sync` facade and is
//! exempt from the facade lint (like `crates/loom`): tracing is a
//! measurement tool, not part of the modeled concurrency surface, and
//! instrumenting it under loom would only blow up the schedule space.
//!
//! # Cost model
//!
//! Tracing is off by default. The disabled path of [`span!`] is one
//! relaxed atomic load and a branch — the span's argument expression is
//! *not* evaluated — which an integration test bounds at <2% wall-time
//! overhead on a pipelined run. The enabled path is one `Instant` read
//! plus four relaxed stores and a release store into the calling thread's
//! ring; no locks, no allocation after the ring exists.
//!
//! ```
//! saga_trace::set_enabled(true);
//! {
//!     let _span = saga_trace::span!("update", batch = 7u64);
//!     saga_trace::instant!("flush");
//! } // span closes here
//! let events = saga_trace::drain();
//! assert!(events.iter().any(|e| e.name == "update"));
//! let json = saga_trace::chrome_trace();
//! assert!(json.contains("\"traceEvents\""));
//! saga_trace::set_enabled(false);
//! # saga_trace::clear();
//! ```

pub mod alloc;
pub mod analyze;
pub mod chrome;
pub mod ctx;
pub mod expose;
pub mod metrics;
pub mod ring;

pub use ctx::TraceCtx;
pub use ring::{
    clear, drain, dropped_events, emit_complete, flight_recorder, mute_thread, now_ns,
    set_flight_recorder, set_thread_track, TraceEvent, RING_CAPACITY,
};

/// Process-unique small id, for disambiguating otherwise identically named
/// instances in exported timelines (e.g. two thread pools whose workers
/// would both be `worker-1`).
pub fn next_instance_id() -> usize {
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Global enable flag. `Relaxed` is sufficient: the flag only gates
/// whether events are produced, and ring publication carries its own
/// release/acquire edge.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is currently enabled (the `span!` fast path).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span/event collection on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables tracing when the `SAGA_TRACE` environment variable is set to
/// anything other than `0` or empty. Returns the resulting state. Bench
/// binaries call this once at startup.
pub fn init_from_env() -> bool {
    let on = std::env::var("SAGA_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    set_enabled(on);
    on
}

/// Trace event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Span opened (`ph: "B"`).
    Begin = 0,
    /// Span closed (`ph: "E"`).
    End = 1,
    /// Point event (`ph: "i"`).
    Instant = 2,
    /// Self-contained span with an explicit duration (`ph: "X"`).
    Complete = 3,
}

/// Interned `(name, arg_name)` pairs; a [`Site`]'s id indexes this table.
/// Both strings are `'static` literals from the macro call site, so the
/// table never copies.
static SITES: Mutex<Vec<(&'static str, &'static str)>> = Mutex::new(Vec::new());

/// Resolves a site id back to its `(name, arg_name)` pair.
pub(crate) fn resolve_site(id: u32) -> (&'static str, &'static str) {
    SITES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(id as usize)
        .copied()
        .unwrap_or(("<unknown>", ""))
}

/// One static span/event call site. Created by the [`span!`] and
/// [`instant!`] macros as a `static`, so the per-event cost of carrying
/// the name is a `u32` id interned once per process.
pub struct Site {
    name: &'static str,
    arg_name: &'static str,
    id: OnceLock<u32>,
}

impl Site {
    /// Creates a site for a span named `name` whose optional argument is
    /// labeled `arg_name` (empty when the site takes no argument).
    pub const fn new(name: &'static str, arg_name: &'static str) -> Self {
        Self {
            name,
            arg_name,
            id: OnceLock::new(),
        }
    }

    /// The site's interned id (interns on first use; sites with identical
    /// `(name, arg_name)` share an id, so re-expanded macros in generic
    /// code do not bloat the table).
    pub fn id(&self) -> u32 {
        *self.id.get_or_init(|| {
            let mut sites = SITES
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(i) = sites
                .iter()
                .position(|&(n, a)| n == self.name && a == self.arg_name)
            {
                return i as u32;
            }
            sites.push((self.name, self.arg_name));
            (sites.len() - 1) as u32
        })
    }
}

/// RAII guard that closes a span on drop. Holds `None` when tracing was
/// disabled at open, in which case drop is free.
pub struct SpanGuard {
    site: Option<&'static Site>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(site) = self.site {
            // Re-check: if tracing was switched off mid-span, skip the
            // End rather than record a dangling close (the exporter also
            // tolerates imbalance, so either choice is safe).
            if enabled() {
                ring::emit(EventKind::End, site.id(), None, now_ns(), 0, None, None);
            }
        }
    }
}

/// Opens a span at `site` (macro support; prefer [`span!`]). The span
/// inherits the thread's ambient [`ctx::TraceCtx`] trace id, if any —
/// one thread-local read, paid only on the enabled path.
pub fn span_site(site: &'static Site, arg: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { site: None };
    }
    let trace = ctx::current().map(|c| c.trace_id);
    ring::emit(EventKind::Begin, site.id(), None, now_ns(), 0, arg, trace);
    SpanGuard { site: Some(site) }
}

/// Records an instant event at `site` (macro support; prefer
/// [`instant!`]). Inherits the ambient trace id like [`span_site`].
pub fn instant_site(site: &'static Site, arg: Option<u64>) {
    if !enabled() {
        return;
    }
    let trace = ctx::current().map(|c| c.trace_id);
    ring::emit(EventKind::Instant, site.id(), None, now_ns(), 0, arg, trace);
}

/// Guard pairing a span with a [`ctx::scope`]: the span and every span
/// the thread opens underneath it carry `ctx`'s trace id. Field order
/// matters — the span's `End` is emitted while the context is still
/// installed, then the previous context is restored.
pub struct CtxSpanGuard {
    _span: SpanGuard,
    _scope: ctx::CtxScope,
}

/// Opens a span at `site` under an explicitly supplied context (macro
/// support; prefer [`span_with_ctx!`]).
pub fn span_ctx_site(site: &'static Site, context: TraceCtx, arg: Option<u64>) -> CtxSpanGuard {
    let scope = ctx::scope(Some(context));
    CtxSpanGuard {
        _span: span_site(site, arg),
        _scope: scope,
    }
}

/// Opens a named span on the calling thread, returning a guard that
/// closes it when dropped.
///
/// ```
/// # saga_trace::set_enabled(true);
/// let _span = saga_trace::span!("compute");
/// let _span = saga_trace::span!("update", batch = 3u64);
/// # drop(_span); saga_trace::set_enabled(false); saga_trace::clear();
/// ```
///
/// The argument expression is evaluated only when tracing is enabled, so
/// `span!("x", len = expensive())` costs nothing when disabled.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static SITE: $crate::Site = $crate::Site::new($name, "");
        $crate::span_site(&SITE, ::core::option::Option::None)
    }};
    ($name:literal, $key:ident = $value:expr) => {{
        static SITE: $crate::Site = $crate::Site::new($name, ::core::stringify!($key));
        if $crate::enabled() {
            $crate::span_site(
                &SITE,
                ::core::option::Option::Some(($value) as u64),
            )
        } else {
            $crate::span_site(&SITE, ::core::option::Option::None)
        }
    }};
}

/// Opens a named span that roots a request trace: installs `ctx` as the
/// thread's ambient context for the span's lifetime (restoring the
/// previous one on drop) and stamps the span — and every span opened
/// underneath it, across [`ctx::scope`] handoffs to other threads — with
/// the context's trace id.
///
/// ```
/// # saga_trace::set_enabled(true);
/// let ctx = saga_trace::TraceCtx::mint();
/// {
///     let _root = saga_trace::span_with_ctx!("http_request", ctx);
///     let _child = saga_trace::span!("handler"); // carries ctx.trace_id
/// }
/// # saga_trace::set_enabled(false); saga_trace::clear();
/// ```
///
/// Like [`span!`], the disabled path does not evaluate the argument
/// expression; it costs the enable check plus one thread-local swap.
#[macro_export]
macro_rules! span_with_ctx {
    ($name:literal, $ctx:expr) => {{
        static SITE: $crate::Site = $crate::Site::new($name, "");
        $crate::span_ctx_site(&SITE, $ctx, ::core::option::Option::None)
    }};
    ($name:literal, $ctx:expr, $key:ident = $value:expr) => {{
        static SITE: $crate::Site = $crate::Site::new($name, ::core::stringify!($key));
        if $crate::enabled() {
            $crate::span_ctx_site(
                &SITE,
                $ctx,
                ::core::option::Option::Some(($value) as u64),
            )
        } else {
            $crate::span_ctx_site(&SITE, $ctx, ::core::option::Option::None)
        }
    }};
}

/// Records a zero-duration point event on the calling thread.
///
/// ```
/// # saga_trace::set_enabled(true);
/// saga_trace::instant!("snapshot-ready");
/// saga_trace::instant!("dropped", count = 12u64);
/// # saga_trace::set_enabled(false); saga_trace::clear();
/// ```
#[macro_export]
macro_rules! instant {
    ($name:literal) => {{
        static SITE: $crate::Site = $crate::Site::new($name, "");
        $crate::instant_site(&SITE, ::core::option::Option::None)
    }};
    ($name:literal, $key:ident = $value:expr) => {{
        static SITE: $crate::Site = $crate::Site::new($name, ::core::stringify!($key));
        if $crate::enabled() {
            $crate::instant_site(
                &SITE,
                ::core::option::Option::Some(($value) as u64),
            )
        }
    }};
}

/// Human-facing progress line on stderr. This is the sanctioned spelling
/// for library-crate progress output: the `cargo xtask lint` println ban
/// sees only `saga_trace::progress!` at call sites, keeping ad-hoc
/// `eprintln!` out of library code while still letting long-running
/// experiments narrate.
#[macro_export]
macro_rules! progress {
    ($($tt:tt)*) => {
        ::std::eprintln!($($tt)*)
    };
}

/// Renders everything currently captured as a Chrome trace-event JSON
/// document (see [`chrome::render`]).
pub fn chrome_trace() -> String {
    chrome::render(&drain())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Tests that enable tracing share process-global rings; serialize
    /// them so concurrently captured events don't bleed across tests.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn trace_test() -> MutexGuard<'static, ()> {
        let guard = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        clear();
        set_enabled(true);
        guard
    }

    #[test]
    fn disabled_spans_emit_nothing() {
        let _guard = trace_test();
        set_enabled(false);
        let before = drain().len();
        {
            let _s = span!("idle");
            instant!("tick");
        }
        assert_eq!(drain().len(), before);
    }

    #[test]
    fn span_guard_emits_begin_end_pair() {
        let _guard = trace_test();
        {
            let _s = span!("outer", batch = 41u64);
            let _inner = span!("inner");
        }
        set_enabled(false);
        let events: Vec<_> = drain()
            .into_iter()
            .filter(|e| e.name == "outer" || e.name == "inner")
            .collect();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].arg, Some(("batch".to_string(), 41)));
        // inner closes before outer (LIFO drop order).
        assert_eq!(
            events
                .iter()
                .map(|e| (e.name.as_str(), e.kind))
                .collect::<Vec<_>>(),
            vec![
                ("outer", EventKind::Begin),
                ("inner", EventKind::Begin),
                ("inner", EventKind::End),
                ("outer", EventKind::End),
            ]
        );
        clear();
    }

    #[test]
    fn disabled_span_does_not_evaluate_arg() {
        let _guard = trace_test();
        set_enabled(false);
        let mut evaluated = false;
        {
            let _s = span!("lazy", cost = {
                evaluated = true;
                1u64
            });
        }
        assert!(!evaluated, "arg must not be evaluated while disabled");
    }

    #[test]
    fn sites_with_same_name_share_an_id() {
        static A: Site = Site::new("saga-test-shared-site", "k");
        static B: Site = Site::new("saga-test-shared-site", "k");
        assert_eq!(A.id(), B.id());
        static C: Site = Site::new("saga-test-shared-site", "other");
        assert_ne!(A.id(), C.id());
    }

    #[test]
    fn init_from_env_reads_saga_trace() {
        let _guard = trace_test();
        // Only asserts the parse contract via set_enabled: this test does
        // not mutate the environment (see the report.rs env-race fix).
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        clear();
    }

    #[test]
    fn spans_inherit_ambient_trace_ctx() {
        let _guard = trace_test();
        let context = TraceCtx::mint();
        {
            let _root = span_with_ctx!("ctx-root", context, ops = 3u64);
            let _child = span!("ctx-child");
            instant!("ctx-mark");
        }
        {
            let _plain = span!("ctx-free");
        }
        set_enabled(false);
        let events = drain();
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("ctx-root").trace_id, Some(context.trace_id));
        assert_eq!(by_name("ctx-root").arg, Some(("ops".to_string(), 3)));
        assert_eq!(by_name("ctx-child").trace_id, Some(context.trace_id));
        assert_eq!(by_name("ctx-mark").trace_id, Some(context.trace_id));
        assert_eq!(by_name("ctx-free").trace_id, None);
        assert_eq!(ctx::current(), None, "scope must restore on drop");
        clear();
    }

    #[test]
    fn ctx_crosses_threads_via_explicit_scope() {
        let _guard = trace_test();
        let context = TraceCtx::mint();
        let captured = {
            let _root = span_with_ctx!("xthread-root", context);
            ctx::current()
        };
        assert_eq!(captured, Some(context));
        std::thread::spawn(move || {
            let _scope = ctx::scope(captured);
            let _w = span!("xthread-work");
        })
        .join()
        .unwrap();
        set_enabled(false);
        let events = drain();
        let work = events.iter().find(|e| e.name == "xthread-work").unwrap();
        assert_eq!(work.trace_id, Some(context.trace_id));
        let root = events.iter().find(|e| e.name == "xthread-root").unwrap();
        assert_ne!(work.track, root.track, "work ran on its own thread");
        clear();
    }

    #[test]
    fn flight_mode_keeps_newest_events() {
        let _guard = trace_test();
        set_flight_recorder(true);
        // Overfill by half a ring: the survivors must be the newest
        // RING_CAPACITY instants, in order.
        let total = RING_CAPACITY + RING_CAPACITY / 2;
        for i in 0..total {
            instant!("flight-ev", seq = i as u64);
        }
        set_enabled(false);
        let events: Vec<_> = drain()
            .into_iter()
            .filter(|e| e.name == "flight-ev")
            .collect();
        set_flight_recorder(false);
        assert_eq!(events.len(), RING_CAPACITY);
        let first = events[0].arg.as_ref().unwrap().1;
        assert_eq!(first, (total - RING_CAPACITY) as u64);
        for (k, e) in events.iter().enumerate() {
            assert_eq!(e.arg.as_ref().unwrap().1, first + k as u64);
        }
        assert!(dropped_events() >= (total - RING_CAPACITY) as u64);
        clear();
    }

    #[test]
    fn complete_events_land_on_named_track() {
        let _guard = trace_test();
        static SITE: Site = Site::new("offloaded-stage", "bytes");
        emit_complete(&SITE, "virtual-track-x", 10, 25, Some(64));
        set_enabled(false);
        let events: Vec<_> = drain()
            .into_iter()
            .filter(|e| e.name == "offloaded-stage")
            .collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].track, "virtual-track-x");
        assert_eq!(events[0].kind, EventKind::Complete);
        assert_eq!(events[0].t_ns, 10);
        assert_eq!(events[0].dur_ns, 25);
        assert_eq!(events[0].arg, Some(("bytes".to_string(), 64)));
        clear();
    }
}
