//! Property-based invariants of the cache simulator.

use proptest::prelude::*;
use saga_perf::cache::{CacheConfig, HierarchyConfig, MemoryHierarchy};
use saga_perf::numa::Topology;
use saga_utils::probe::{MemAccess, Trace, TraceBlock};

fn tiny_hierarchy() -> HierarchyConfig {
    HierarchyConfig {
        l1: CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        },
        l2: CacheConfig {
            size_bytes: 2048,
            ways: 4,
            line_bytes: 64,
        },
        llc: CacheConfig {
            size_bytes: 8192,
            ways: 4,
            line_bytes: 64,
        },
        topology: Topology::paper(),
    }
}

fn arb_trace(max_threads: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec(
        (
            0..max_threads,
            prop::collection::vec((0u64..1 << 16, 1u32..256, any::<bool>()), 1..200),
        ),
        1..6,
    )
    .prop_map(|blocks| {
        let total: u64 = blocks.iter().map(|(_, a)| a.len() as u64).sum();
        Trace {
            blocks: blocks
                .into_iter()
                .enumerate()
                .map(|(seq, (thread, accesses))| TraceBlock {
                    thread,
                    seq: seq as u64,
                    accesses: accesses
                        .into_iter()
                        .map(|(addr, len, write)| MemAccess { addr, len, write })
                        .collect(),
                })
                .collect(),
            instructions: total,
            total_accesses: total,
            dropped: 0,
            lock_cycles: Default::default(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hit_miss_bookkeeping_balances(trace in arb_trace(4)) {
        let mut h = MemoryHierarchy::new(tiny_hierarchy(), 4);
        let r = h.replay(&trace);
        prop_assert_eq!(r.accesses, r.l1_hits + r.l2_lookups);
        prop_assert_eq!(r.l2_lookups, r.l2_hits + r.llc_lookups);
        prop_assert_eq!(r.llc_lookups, r.llc_hits + r.dram_lines);
        prop_assert!(r.remote_lines <= r.dram_lines);
        let thread_accesses: u64 = r.threads.iter().map(|t| t.accesses).sum();
        prop_assert_eq!(thread_accesses, r.accesses);
        let thread_llc_misses: u64 = r.threads.iter().map(|t| t.llc_misses).sum();
        prop_assert_eq!(thread_llc_misses, r.dram_lines);
    }

    #[test]
    fn replay_is_deterministic(trace in arb_trace(3)) {
        let r1 = MemoryHierarchy::new(tiny_hierarchy(), 3).replay(&trace);
        let r2 = MemoryHierarchy::new(tiny_hierarchy(), 3).replay(&trace);
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn line_expansion_matches_access_geometry(trace in arb_trace(1)) {
        // Independent line count: sum over accesses of touched lines.
        let mut expected = 0u64;
        for b in &trace.blocks {
            for a in &b.accesses {
                let first = a.addr / 64;
                let last = (a.addr + a.len.max(1) as u64 - 1) / 64;
                expected += last - first + 1;
            }
        }
        let r = MemoryHierarchy::new(tiny_hierarchy(), 1).replay(&trace);
        prop_assert_eq!(r.accesses, expected);
    }

    #[test]
    fn second_replay_of_same_trace_hits_more(trace in arb_trace(1)) {
        // Replaying a trace twice through one hierarchy can only raise the
        // combined hit count: the second pass starts warm.
        let mut cold = MemoryHierarchy::new(tiny_hierarchy(), 1);
        let first = cold.replay(&trace);
        let second = cold.replay(&trace);
        let hits = |r: &saga_perf::cache::CacheReport| r.l1_hits + r.l2_hits + r.llc_hits;
        prop_assert!(hits(&second) >= hits(&first),
            "warm replay hits {} < cold replay hits {}", hits(&second), hits(&first));
    }

    #[test]
    fn single_line_working_set_always_hits_after_first(addr in 0u64..1 << 20) {
        let trace = Trace {
            blocks: vec![TraceBlock {
                thread: 0,
                seq: 0,
                accesses: (0..50).map(|_| MemAccess { addr, len: 4, write: false }).collect(),
            }],
            instructions: 50,
            total_accesses: 50,
            dropped: 0,
            lock_cycles: Default::default(),
        };
        let r = MemoryHierarchy::new(tiny_hierarchy(), 1).replay(&trace);
        // An unaligned 4-byte access may straddle a line boundary.
        let lines = if addr % 64 + 4 > 64 { 2 } else { 1 };
        prop_assert_eq!(r.l1_hits, 50 * lines - lines, "addr {}", addr);
        prop_assert_eq!(r.dram_lines, lines);
    }
}
