//! Core-count scaling harness (Fig. 9a).
//!
//! The paper sweeps physical core counts from 4 to 28 (threads pinned, SMT
//! 2) and reports the performance of update and compute phases normalized
//! to the smallest configuration, observing that the update phase's curve
//! flattens much earlier. This harness runs the same sweep with real wall
//! clocks on the host machine: lock contention (AS) and chunk imbalance
//! (DAH) are properties of the implementations, so the *shape* of the
//! curves survives a machine with fewer cores.

use saga_utils::parallel::ThreadPool;

/// One scaling curve: thread counts and the measured seconds at each.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingCurve {
    /// Thread counts swept.
    pub threads: Vec<usize>,
    /// Measured seconds per thread count (same order).
    pub seconds: Vec<f64>,
}

impl ScalingCurve {
    /// Speedup relative to the first (smallest) configuration.
    pub fn speedups(&self) -> Vec<f64> {
        let base = self.seconds.first().copied().unwrap_or(1.0);
        self.seconds.iter().map(|&s| base / s).collect()
    }

    /// Incremental improvement between successive configurations, in
    /// percent — the paper quotes e.g. "52% (from 4 to 8 cores)".
    pub fn incremental_improvements(&self) -> Vec<f64> {
        self.seconds
            .windows(2)
            .map(|w| (w[0] / w[1] - 1.0) * 100.0)
            .collect()
    }

    /// The thread count after which the incremental improvement stays
    /// below `percent` — where the curve "flattens".
    pub fn flattening_point(&self, percent: f64) -> usize {
        let improvements = self.incremental_improvements();
        for (i, _imp) in improvements.iter().enumerate() {
            if improvements[i..].iter().all(|&x| x < percent) {
                return self.threads[i];
            }
        }
        *self.threads.last().unwrap_or(&0)
    }
}

/// Runs `workload` once per thread count and records its reported seconds.
///
/// The workload receives a fresh pool each time and returns the measured
/// duration of the phase of interest (so setup cost is excluded). It is
/// invoked `repeats` times per count and the minimum is kept (standard
/// practice for scaling studies: the minimum is the least noisy estimator
/// of achievable performance).
pub fn scaling_sweep<F>(thread_counts: &[usize], repeats: usize, mut workload: F) -> ScalingCurve
where
    F: FnMut(&ThreadPool) -> f64,
{
    assert!(repeats > 0, "need at least one repeat");
    let mut seconds = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let pool = ThreadPool::new(threads);
            best = best.min(workload(&pool));
        }
        seconds.push(best);
    }
    ScalingCurve {
        threads: thread_counts.to_vec(),
        seconds,
    }
}

/// Default thread sweep for the host machine: powers of two up to the
/// available parallelism.
pub fn default_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut counts = vec![1usize];
    while counts.last().unwrap() * 2 <= max {
        counts.push(counts.last().unwrap() * 2);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_are_relative_to_first() {
        let curve = ScalingCurve {
            threads: vec![1, 2, 4],
            seconds: vec![4.0, 2.0, 1.0],
        };
        assert_eq!(curve.speedups(), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn incremental_improvements_match_paper_phrasing() {
        let curve = ScalingCurve {
            threads: vec![4, 8, 12],
            seconds: vec![1.52, 1.0, 0.855],
        };
        let imp = curve.incremental_improvements();
        assert!((imp[0] - 52.0).abs() < 0.5);
        assert!((imp[1] - 17.0).abs() < 0.5);
    }

    #[test]
    fn flattening_point_detects_plateau() {
        let curve = ScalingCurve {
            threads: vec![1, 2, 4, 8],
            seconds: vec![8.0, 4.0, 3.9, 3.85],
        };
        // 100% improvement 1->2, then ~2.5% and ~1.3%: flattens at 2.
        assert_eq!(curve.flattening_point(10.0), 2);
        let steep = ScalingCurve {
            threads: vec![1, 2, 4],
            seconds: vec![8.0, 4.0, 2.0],
        };
        assert_eq!(steep.flattening_point(10.0), 4);
    }

    #[test]
    fn sweep_runs_workload_per_count() {
        let counts = vec![1, 2];
        let mut invocations = 0;
        let curve = scaling_sweep(&counts, 2, |pool| {
            invocations += 1;
            pool.threads() as f64
        });
        assert_eq!(invocations, 4);
        assert_eq!(curve.seconds, vec![1.0, 2.0]);
    }

    #[test]
    fn default_counts_start_at_one_and_double() {
        let counts = default_thread_counts();
        assert_eq!(counts[0], 1);
        for w in counts.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }
}
