//! Trace-driven set-associative cache-hierarchy simulator.
//!
//! Substitutes for the Intel PCM counters of the paper's §VI: the memory
//! accesses recorded by `saga_utils::probe` are replayed through a model of
//! the paper's cache hierarchy — 32KB private L1, 1MB private L2 per
//! physical core, 22MB shared LLC per socket, 64-byte lines (§IV-A) — with
//! LRU replacement. Per-phase hit ratios and MPKI reproduce Fig. 10; DRAM
//! and remote-socket line counts feed the bandwidth model of Fig. 9(b–c).

use crate::numa::Topology;
use saga_utils::probe::Trace;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert!(lines >= self.ways, "cache smaller than one way");
        assert_eq!(lines % self.ways, 0, "capacity must divide into ways");
        lines / self.ways
    }
}

/// Geometry of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// Private per-core L1 data cache.
    pub l1: CacheConfig,
    /// Private per-core L2.
    pub l2: CacheConfig,
    /// Shared per-socket last-level cache.
    pub llc: CacheConfig,
    /// Machine topology.
    pub topology: Topology,
}

impl HierarchyConfig {
    /// The paper's Skylake hierarchy (§IV-A): 32KB 8-way L1, 1MB 16-way
    /// L2, 22MB 11-way LLC per socket, 64B lines.
    pub fn paper() -> Self {
        Self {
            l1: CacheConfig {
                size_bytes: 32 << 10,
                ways: 8,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                ways: 16,
                line_bytes: 64,
            },
            llc: CacheConfig {
                size_bytes: 22 << 20,
                ways: 11,
                line_bytes: 64,
            },
            topology: Topology::paper(),
        }
    }

    /// The paper geometry with L2 and LLC capacities divided by `factor`
    /// (L1 kept), for runs on datasets scaled below the paper's sizes —
    /// working sets shrink with the dataset, and hit-ratio *contrasts* only
    /// show if the caches shrink proportionally. `factor` must be a power
    /// of two so set counts stay integral.
    pub fn paper_scaled(factor: usize) -> Self {
        assert!(factor.is_power_of_two(), "scale factor must be a power of two");
        let mut cfg = Self::paper();
        // Clamp so set counts stay integral powers of two (the LLC's 11
        // ways only divide evenly down to 1/16 of the paper capacity).
        cfg.l2.size_bytes /= factor.min(256);
        cfg.llc.size_bytes /= factor.min(16);
        cfg
    }
}

/// One set-associative, LRU cache instance.
#[derive(Debug, Clone)]
struct Cache {
    /// `sets[s]` holds up to `ways` tags, most-recently-used first.
    sets: Vec<Vec<u64>>,
    ways: usize,
    set_mask: u64,
}

impl Cache {
    fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets: vec![Vec::with_capacity(config.ways); sets],
            ways: config.ways,
            set_mask: sets as u64 - 1,
        }
    }

    /// Accesses a line; returns `true` on hit. Misses install the line.
    fn access(&mut self, line_addr: u64) -> bool {
        let set = &mut self.sets[(line_addr & self.set_mask) as usize];
        let tag = line_addr >> self.set_mask.trailing_ones();
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU.
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, tag);
            false
        }
    }
}

/// Per-thread activity counters (used by the bandwidth/time model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadCounters {
    /// Line-granular accesses issued by the thread.
    pub accesses: u64,
    /// Accesses that missed L1.
    pub l1_misses: u64,
    /// Accesses that missed L2.
    pub l2_misses: u64,
    /// Accesses that missed the socket LLC (DRAM fetches).
    pub llc_misses: u64,
    /// DRAM fetches whose home socket was remote (QPI crossings).
    pub remote_misses: u64,
}

/// Aggregate result of replaying one phase's trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheReport {
    /// Retired-instruction estimate carried over from the trace.
    pub instructions: u64,
    /// Line-granular accesses replayed.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 lookups (= L1 misses).
    pub l2_lookups: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// LLC lookups (= L2 misses).
    pub llc_lookups: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// Lines fetched from DRAM.
    pub dram_lines: u64,
    /// DRAM lines fetched from the remote socket.
    pub remote_lines: u64,
    /// Largest per-lock serialized-cycle total observed in the trace
    /// (`saga_utils::probe::critical`); lower-bounds phase time under any
    /// thread count.
    pub max_lock_cycles: u64,
    /// Per-thread breakdown.
    pub threads: Vec<ThreadCounters>,
}

impl CacheReport {
    /// L2 hit ratio (hits / lookups), the paper's "Update/Compute L2"
    /// metric of Fig. 10(a).
    pub fn l2_hit_ratio(&self) -> f64 {
        ratio(self.l2_hits, self.l2_lookups)
    }

    /// LLC hit ratio, Fig. 10(a)'s "Update/Compute LLC".
    pub fn llc_hit_ratio(&self) -> f64 {
        ratio(self.llc_hits, self.llc_lookups)
    }

    /// L2 misses per kilo-instruction (Fig. 10b/c).
    pub fn l2_mpki(&self) -> f64 {
        mpki(self.llc_lookups, self.instructions)
    }

    /// LLC misses per kilo-instruction (Fig. 10b/c).
    pub fn llc_mpki(&self) -> f64 {
        mpki(self.dram_lines, self.instructions)
    }

    /// Bytes moved from DRAM.
    pub fn dram_bytes(&self) -> f64 {
        self.dram_lines as f64 * 64.0
    }

    /// Bytes moved across the inter-socket links.
    pub fn qpi_bytes(&self) -> f64 {
        self.remote_lines as f64 * 64.0
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

/// The full multi-core hierarchy, replaying traces thread-by-thread.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Vec<Cache>,
}

impl MemoryHierarchy {
    /// Builds a hierarchy for up to `threads` hardware threads.
    pub fn new(config: HierarchyConfig, threads: usize) -> Self {
        let threads = threads.max(1);
        Self {
            config,
            l1: (0..threads).map(|_| Cache::new(config.l1)).collect(),
            l2: (0..threads).map(|_| Cache::new(config.l2)).collect(),
            llc: (0..config.topology.sockets).map(|_| Cache::new(config.llc)).collect(),
        }
    }

    /// Replays a trace. Blocks are processed in flush order (`seq`), which
    /// approximates the real cross-thread interleaving at 16K-access
    /// granularity; within a block the thread's program order is exact.
    pub fn replay(&mut self, trace: &Trace) -> CacheReport {
        let mut report = CacheReport {
            instructions: trace.instructions,
            threads: vec![ThreadCounters::default(); self.l1.len()],
            max_lock_cycles: trace.lock_cycles.values().copied().max().unwrap_or(0),
            ..CacheReport::default()
        };
        let mut blocks: Vec<&saga_utils::probe::TraceBlock> = trace.blocks.iter().collect();
        blocks.sort_by_key(|b| b.seq);
        // Probe thread ids are process-global (they keep growing as pools
        // come and go); remap them to dense hardware-thread slots by first
        // appearance so each OS thread gets its own private L1/L2.
        let mut remap: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for block in &blocks {
            let next = remap.len() % self.l1.len();
            remap.entry(block.thread).or_insert(next);
        }
        let line = self.config.l1.line_bytes as u64;
        for block in blocks {
            let thread = remap[&block.thread];
            let socket = self.config.topology.socket_of_thread(thread);
            for access in &block.accesses {
                let first = access.addr / line;
                let last = (access.addr + access.len.max(1) as u64 - 1) / line;
                for line_addr in first..=last {
                    let t = &mut report.threads[thread];
                    t.accesses += 1;
                    report.accesses += 1;
                    if self.l1[thread].access(line_addr) {
                        report.l1_hits += 1;
                        continue;
                    }
                    t.l1_misses += 1;
                    report.l2_lookups += 1;
                    if self.l2[thread].access(line_addr) {
                        report.l2_hits += 1;
                        continue;
                    }
                    t.l2_misses += 1;
                    report.llc_lookups += 1;
                    if self.llc[socket].access(line_addr) {
                        report.llc_hits += 1;
                        continue;
                    }
                    t.llc_misses += 1;
                    report.dram_lines += 1;
                    if self.config.topology.home_socket(line_addr) != socket {
                        t.remote_misses += 1;
                        report.remote_lines += 1;
                    }
                }
            }
        }
        // Mirror the phase's counters into the global metrics registry so
        // one `saga_trace::metrics::snapshot()` carries both software
        // timings (driver histograms) and simulated hardware counters —
        // the paper's two characterization axes in one artifact.
        saga_trace::instant!("cache-replay", accesses = report.accesses);
        saga_trace::metrics::counter("perf.cache.accesses").add(report.accesses);
        saga_trace::metrics::counter("perf.cache.l1_hits").add(report.l1_hits);
        saga_trace::metrics::counter("perf.cache.l2_hits").add(report.l2_hits);
        saga_trace::metrics::counter("perf.cache.llc_hits").add(report.llc_hits);
        saga_trace::metrics::counter("perf.cache.dram_lines").add(report.dram_lines);
        saga_trace::metrics::counter("perf.cache.remote_lines").add(report.remote_lines);
        saga_trace::metrics::counter("perf.cache.instructions").add(report.instructions);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_utils::probe::{MemAccess, TraceBlock};

    fn trace_of(accesses: Vec<(u64, u32)>) -> Trace {
        let n = accesses.len() as u64;
        Trace {
            blocks: vec![TraceBlock {
                thread: 0,
                seq: 0,
                accesses: accesses
                    .into_iter()
                    .map(|(addr, len)| MemAccess {
                        addr,
                        len,
                        write: false,
                    })
                    .collect(),
            }],
            instructions: n,
            total_accesses: n,
            dropped: 0,
            lock_cycles: Default::default(),
        }
    }

    fn tiny_config() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 64,
            }, // 4 sets
            l2: CacheConfig {
                size_bytes: 2048,
                ways: 4,
                line_bytes: 64,
            }, // 8 sets
            llc: CacheConfig {
                size_bytes: 8192,
                ways: 4,
                line_bytes: 64,
            },
            topology: Topology::paper(),
        }
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut h = MemoryHierarchy::new(tiny_config(), 1);
        let report = h.replay(&trace_of(vec![(0, 8), (0, 8), (0, 8)]));
        assert_eq!(report.accesses, 3);
        assert_eq!(report.l1_hits, 2);
        assert_eq!(report.dram_lines, 1);
    }

    #[test]
    fn long_access_touches_every_line() {
        let mut h = MemoryHierarchy::new(tiny_config(), 1);
        // 256 bytes starting at 0 = lines 0..=3.
        let report = h.replay(&trace_of(vec![(0, 256)]));
        assert_eq!(report.accesses, 4);
        assert_eq!(report.dram_lines, 4);
    }

    #[test]
    fn eviction_respects_lru() {
        let cfg = tiny_config();
        let mut h = MemoryHierarchy::new(cfg, 1);
        // Three lines mapping to L1 set 0 (4 sets, 64B lines -> stride 256).
        // 2-way L1: A, B, A, C, A -> A stays (MRU), B evicted by C.
        let a = 0u64;
        let b = 256u64;
        let c = 512u64;
        let report = h.replay(&trace_of(vec![
            (a, 8),
            (b, 8),
            (a, 8),
            (c, 8),
            (a, 8),
        ]));
        // Hits: 3rd (A), 5th (A). B/C misses.
        assert_eq!(report.l1_hits, 2);
    }

    #[test]
    fn working_set_larger_than_l1_hits_l2() {
        let cfg = tiny_config(); // L1 512B = 8 lines; L2 2KB = 32 lines
        let mut h = MemoryHierarchy::new(cfg, 1);
        let pass: Vec<(u64, u32)> = (0..16).map(|i| (i * 64, 8)).collect();
        let mut accesses = pass.clone();
        accesses.extend(pass.clone());
        let report = h.replay(&trace_of(accesses));
        // Second pass: L1 too small (8 lines for 16-line set with round
        // robin mapping some hit), L2 holds all 16 lines.
        assert_eq!(report.dram_lines, 16, "only cold misses reach DRAM");
        assert!(report.l2_hits > 0, "second pass should hit L2");
    }

    #[test]
    fn hit_ratio_and_mpki_formulas() {
        let r = CacheReport {
            instructions: 2000,
            accesses: 100,
            l1_hits: 50,
            l2_lookups: 50,
            l2_hits: 30,
            llc_lookups: 20,
            llc_hits: 10,
            dram_lines: 10,
            remote_lines: 4,
            max_lock_cycles: 0,
            threads: vec![],
        };
        assert!((r.l2_hit_ratio() - 0.6).abs() < 1e-12);
        assert!((r.llc_hit_ratio() - 0.5).abs() < 1e-12);
        assert!((r.l2_mpki() - 10.0).abs() < 1e-12); // 20 L2 misses / 2k inst
        assert!((r.llc_mpki() - 5.0).abs() < 1e-12);
        assert_eq!(r.dram_bytes(), 640.0);
        assert_eq!(r.qpi_bytes(), 256.0);
    }

    #[test]
    fn threads_have_private_l1_l2() {
        let cfg = tiny_config();
        let mut h = MemoryHierarchy::new(cfg, 2);
        let trace = Trace {
            blocks: vec![
                TraceBlock {
                    thread: 0,
                    seq: 0,
                    accesses: vec![MemAccess {
                        addr: 0,
                        len: 8,
                        write: false,
                    }],
                },
                TraceBlock {
                    thread: 1,
                    seq: 1,
                    accesses: vec![MemAccess {
                        addr: 0,
                        len: 8,
                        write: false,
                    }],
                },
            ],
            instructions: 2,
            total_accesses: 2,
            dropped: 0,
            lock_cycles: Default::default(),
        };
        let report = h.replay(&trace);
        // Thread 1 misses its own private levels. Threads 0 and 1 sit on
        // different sockets (round-robin pinning), so the LLC misses too.
        assert_eq!(report.l1_hits, 0);
        assert_eq!(report.l2_hits, 0);
        assert_eq!(report.dram_lines, 2);
    }

    #[test]
    fn paper_config_geometry_is_valid() {
        let cfg = HierarchyConfig::paper();
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 1024);
        assert_eq!(cfg.llc.sets(), 32768);
        let scaled = HierarchyConfig::paper_scaled(8);
        assert_eq!(scaled.l2.size_bytes, 128 << 10);
        assert!(scaled.llc.sets().is_power_of_two());
        let deep = HierarchyConfig::paper_scaled(64);
        assert!(deep.llc.sets().is_power_of_two());
        assert!(deep.l2.sets().is_power_of_two());
    }
}
