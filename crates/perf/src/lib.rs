//! Architecture-level characterization substrate.
//!
//! The paper profiles streaming graph analytics on a dual-socket Xeon with
//! Intel Processor Counter Monitor (§IV-A, §VI). This crate substitutes a
//! simulator for those hardware counters:
//!
//! - [`cache`] — a trace-driven, set-associative model of the paper's
//!   L1/L2/LLC hierarchy with LRU replacement, replaying the memory
//!   accesses recorded by `saga_utils::probe` (Fig. 10's hit ratios and
//!   MPKI).
//! - [`numa`] — the dual-socket topology, thread pinning, and
//!   page-interleaved home-socket placement (QPI crossings).
//! - [`bandwidth`] — an analytic time model that converts replayed traffic
//!   into memory/QPI bandwidth utilization; phase time is the slowest
//!   thread's time, so workload imbalance shows up exactly as in Fig. 9.
//! - [`scaling`] — real wall-clock thread-count sweeps (Fig. 9a).
//!
//! [`trace_phase`] is the entry point: run a phase under the probe and get
//! its trace back.

#![warn(missing_docs)]

pub mod bandwidth;
pub mod cache;
pub mod numa;
pub mod scaling;

use saga_utils::parallel::ThreadPool;
use saga_utils::probe::{self, Trace};

/// Runs `phase` with memory tracing enabled and returns the recorded
/// trace. Worker buffers of `pool` are flushed before collection.
///
/// Tracing state is global: run one traced phase at a time.
///
/// # Examples
///
/// ```
/// use saga_perf::trace_phase;
/// use saga_utils::parallel::ThreadPool;
/// use saga_utils::probe;
///
/// let pool = ThreadPool::new(2);
/// let data = vec![1u64; 100];
/// let trace = trace_phase(&pool, || probe::slice_read(&data));
/// assert_eq!(trace.total_accesses, 1);
/// ```
pub fn trace_phase<F: FnOnce()>(pool: &ThreadPool, phase: F) -> Trace {
    // Drop anything a previous phase left behind.
    pool.run_on_all(|_| probe::flush_thread());
    let _ = probe::take_trace();
    probe::reset();
    probe::set_enabled(true);
    phase();
    probe::set_enabled(false);
    pool.run_on_all(|_| probe::flush_thread());
    probe::take_trace()
}

/// Convenience: replay a trace on the paper hierarchy (optionally scaled)
/// and return the report.
pub fn replay_on_paper_machine(trace: &Trace, scale_factor: usize) -> cache::CacheReport {
    let config = if scale_factor <= 1 {
        cache::HierarchyConfig::paper()
    } else {
        cache::HierarchyConfig::paper_scaled(scale_factor)
    };
    let threads = trace.thread_count().max(1);
    cache::MemoryHierarchy::new(config, threads).replay(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_phase_collects_only_inside_the_phase() {
        let pool = ThreadPool::new(2);
        let data = vec![0u8; 64];
        probe::slice_read(&data); // outside: probe disabled
        let trace = trace_phase(&pool, || {
            probe::slice_read(&data);
            probe::slice_read(&data);
        });
        assert_eq!(trace.total_accesses, 2);
        probe::slice_read(&data); // after: disabled again
        assert!(!probe::is_enabled());
    }

    #[test]
    fn replay_on_paper_machine_counts_lines() {
        let pool = ThreadPool::new(1);
        let data = vec![0u64; 64]; // 512 bytes = 8 lines
        let trace = trace_phase(&pool, || probe::slice_read(&data));
        let report = replay_on_paper_machine(&trace, 1);
        // 512 bytes span 8 lines (9 when the allocation straddles one).
        assert!((8..=9).contains(&report.accesses), "{}", report.accesses);
        assert_eq!(report.dram_lines, report.accesses, "cold cache: all lines miss");
        let report_scaled = replay_on_paper_machine(&trace, 8);
        assert_eq!(report_scaled.accesses, report.accesses);
    }
}
