//! Dual-socket topology and NUMA placement model.
//!
//! The paper's platform is a dual-socket Xeon Gold 6142: 16 physical cores
//! per socket, 2-way SMT (64 hardware threads), 22MB shared LLC per socket,
//! 128GB/s memory bandwidth per socket, and three QPI links providing
//! 136.2GB/s of inter-socket bandwidth (§IV-A). [`Topology`] models that
//! machine: threads are pinned round-robin across sockets (as the paper
//! pins software threads to hardware threads), and each cache line has a
//! *home socket* determined by page interleaving, so a miss served from the
//! remote socket contributes QPI traffic.

/// A dual-socket (or wider) machine model.
///
/// # Examples
///
/// ```
/// use saga_perf::numa::Topology;
///
/// let t = Topology::paper();
/// assert_eq!(t.sockets, 2);
/// assert_eq!(t.hardware_threads(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    /// Number of sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// SMT ways per physical core.
    pub smt: usize,
    /// Peak DRAM bandwidth per socket, bytes/second.
    pub dram_bandwidth_per_socket: f64,
    /// Peak inter-socket (QPI) bandwidth, bytes/second, both directions.
    pub qpi_bandwidth: f64,
    /// Page size used for home-socket interleaving, bytes.
    pub page_bytes: u64,
}

impl Topology {
    /// The paper's dual-socket Xeon Gold 6142 (§IV-A).
    pub fn paper() -> Self {
        Self {
            sockets: 2,
            cores_per_socket: 16,
            smt: 2,
            dram_bandwidth_per_socket: 128.0e9,
            qpi_bandwidth: 136.2e9,
            page_bytes: 4096,
        }
    }

    /// Total hardware execution threads.
    pub fn hardware_threads(&self) -> usize {
        self.sockets * self.cores_per_socket * self.smt
    }

    /// Socket a thread is pinned to. Threads are distributed round-robin
    /// across sockets, matching the paper's core-scaling methodology
    /// ("cores are distributed equally among 2 sockets at any given core
    /// count", Fig. 9a).
    pub fn socket_of_thread(&self, thread: usize) -> usize {
        thread % self.sockets
    }

    /// Physical core a thread maps to (SMT siblings share a core).
    pub fn core_of_thread(&self, thread: usize) -> usize {
        (thread / self.sockets) % (self.cores_per_socket * self.sockets / self.sockets)
            + self.socket_of_thread(thread) * self.cores_per_socket
    }

    /// Home socket of a cache line (page-interleaved first-touch-free
    /// placement).
    pub fn home_socket(&self, line_addr: u64) -> usize {
        ((line_addr * 64 / self.page_bytes) % self.sockets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_matches_section_iv() {
        let t = Topology::paper();
        assert_eq!(t.hardware_threads(), 64);
        assert_eq!(t.cores_per_socket, 16);
        assert!((t.dram_bandwidth_per_socket - 128.0e9).abs() < 1.0);
        assert!((t.qpi_bandwidth - 136.2e9).abs() < 1.0);
    }

    #[test]
    fn threads_alternate_sockets() {
        let t = Topology::paper();
        assert_eq!(t.socket_of_thread(0), 0);
        assert_eq!(t.socket_of_thread(1), 1);
        assert_eq!(t.socket_of_thread(2), 0);
    }

    #[test]
    fn pages_interleave_across_sockets() {
        let t = Topology::paper();
        let lines_per_page = t.page_bytes / 64;
        assert_eq!(t.home_socket(0), 0);
        assert_eq!(t.home_socket(lines_per_page), 1);
        assert_eq!(t.home_socket(2 * lines_per_page), 0);
        // Lines within one page share a home.
        assert_eq!(t.home_socket(3), t.home_socket(5));
    }

    #[test]
    fn smt_siblings_share_a_core() {
        let t = Topology::paper();
        let cores: std::collections::HashSet<usize> =
            (0..t.hardware_threads()).map(|th| t.core_of_thread(th)).collect();
        assert!(cores.len() <= t.sockets * t.cores_per_socket);
    }
}
