//! Analytic time and bandwidth model on top of the cache simulator.
//!
//! The paper measures memory and QPI bandwidth *utilization* with PCM
//! (Fig. 9b–c). Without hardware counters, utilization is estimated from
//! the replayed trace: each thread's execution time is modeled as its
//! access count plus miss penalties (a simple in-order overlap-free core),
//! the phase's time is the **slowest thread's** time — which is exactly
//! what makes an imbalanced heavy-tailed update phase show near-zero
//! bandwidth utilization, the paper's key §VI-B observation — and traffic
//! divided by time gives GB/s.

use crate::cache::CacheReport;
use crate::numa::Topology;

/// Cycle-accounting parameters (rough Skylake-class numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeModel {
    /// Core frequency in Hz.
    pub frequency: f64,
    /// Cycles per L1-resident access.
    pub base_cycles: f64,
    /// Extra cycles for an access served by L2.
    pub l2_penalty: f64,
    /// Extra cycles for an access served by the LLC.
    pub llc_penalty: f64,
    /// Extra cycles for an access served by DRAM.
    pub dram_penalty: f64,
    /// Additional cycles when the DRAM access is remote (QPI crossing).
    pub remote_penalty: f64,
    /// Cycles per unit of reported critical-section work (lock-serialized
    /// element scans; see `saga_utils::probe::critical`).
    pub lock_cycle_factor: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        Self {
            frequency: 2.6e9, // Xeon Gold 6142 base clock
            base_cycles: 1.0,
            l2_penalty: 12.0,
            llc_penalty: 30.0,
            dram_penalty: 90.0,
            remote_penalty: 60.0,
            lock_cycle_factor: 2.0,
        }
    }
}

/// Estimated phase timing and bandwidth utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthEstimate {
    /// Modeled phase duration in seconds (slowest thread).
    pub seconds: f64,
    /// DRAM traffic in bytes/second.
    pub dram_gbps: f64,
    /// Inter-socket traffic in bytes/second.
    pub qpi_gbps: f64,
    /// DRAM utilization as a fraction of the machine's peak.
    pub dram_utilization: f64,
    /// QPI utilization as a fraction of the peak (the % of Fig. 9c).
    pub qpi_utilization: f64,
    /// Ratio of the busiest thread's cycles to the mean — 1.0 is perfectly
    /// balanced; heavy-tailed updates show large values (§VI-B's workload
    /// imbalance).
    pub imbalance: f64,
    /// Whether the phase time was bounded by a serialized lock rather than
    /// the busiest thread (§VI-B's thread contention).
    pub lock_bound: bool,
}

/// Estimates bandwidth utilization for one phase.
pub fn estimate(report: &CacheReport, model: &TimeModel, topology: &Topology) -> BandwidthEstimate {
    let mut max_cycles = 0.0f64;
    let mut total_cycles = 0.0f64;
    for t in &report.threads {
        let cycles = t.accesses as f64 * model.base_cycles
            + t.l1_misses as f64 * model.l2_penalty
            + t.l2_misses as f64 * model.llc_penalty
            + t.llc_misses as f64 * model.dram_penalty
            + t.remote_misses as f64 * model.remote_penalty;
        total_cycles += cycles;
        max_cycles = max_cycles.max(cycles);
    }
    // Phase time is the slowest thread OR the most contended lock's
    // serialized work, whichever dominates: work under one lock cannot
    // overlap no matter how many cores are available.
    let lock_cycles = report.max_lock_cycles as f64 * model.lock_cycle_factor;
    let lock_bound = lock_cycles > max_cycles;
    let max_cycles = max_cycles.max(lock_cycles);
    let peak_dram = topology.dram_bandwidth_per_socket * topology.sockets as f64;
    // ... and no faster than the machine can move the phase's traffic:
    // DRAM and QPI peaks cap throughput, which is what flattens the
    // *compute* phase at high core counts (Fig. 9a).
    let min_seconds = (report.dram_bytes() / peak_dram)
        .max(report.qpi_bytes() / topology.qpi_bandwidth);
    let seconds = (max_cycles / model.frequency)
        .max(min_seconds)
        .max(f64::MIN_POSITIVE);
    let dram_gbps = report.dram_bytes() / seconds;
    let qpi_gbps = report.qpi_bytes() / seconds;
    // Imbalance is relative to every thread of the pool, idle ones
    // included: a phase where one thread does all the work on a 4-thread
    // pool is 4x imbalanced (the §VI-B heavy-tail signature).
    let imbalance = if total_cycles == 0.0 {
        1.0
    } else {
        max_cycles / (total_cycles / report.threads.len() as f64)
    };
    BandwidthEstimate {
        seconds,
        dram_gbps,
        qpi_gbps,
        dram_utilization: (dram_gbps / peak_dram).min(1.0),
        qpi_utilization: (qpi_gbps / topology.qpi_bandwidth).min(1.0),
        imbalance,
        lock_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ThreadCounters;

    fn report_with(threads: Vec<ThreadCounters>, dram_lines: u64, remote_lines: u64) -> CacheReport {
        CacheReport {
            instructions: 1000,
            accesses: threads.iter().map(|t| t.accesses).sum(),
            dram_lines,
            remote_lines,
            threads,
            ..CacheReport::default()
        }
    }

    #[test]
    fn balanced_threads_have_imbalance_one() {
        let t = ThreadCounters {
            accesses: 1000,
            l1_misses: 100,
            l2_misses: 50,
            llc_misses: 10,
            remote_misses: 5,
        };
        let report = report_with(vec![t; 4], 40, 20);
        let est = estimate(&report, &TimeModel::default(), &Topology::paper());
        assert!((est.imbalance - 1.0).abs() < 1e-9);
        assert!(est.seconds > 0.0);
        assert!(est.dram_gbps > 0.0);
    }

    #[test]
    fn imbalanced_threads_lower_bandwidth() {
        // Same total traffic, but one thread does everything.
        let busy = ThreadCounters {
            accesses: 4000,
            l1_misses: 400,
            l2_misses: 200,
            llc_misses: 40,
            remote_misses: 20,
        };
        let idle = ThreadCounters::default();
        let skewed = report_with(vec![busy, idle, idle, idle], 40, 20);
        let balanced = report_with(
            vec![ThreadCounters {
                accesses: 1000,
                l1_misses: 100,
                l2_misses: 50,
                llc_misses: 10,
                remote_misses: 5,
            }; 4],
            40,
            20,
        );
        let model = TimeModel::default();
        let topo = Topology::paper();
        let est_skewed = estimate(&skewed, &model, &topo);
        let est_balanced = estimate(&balanced, &model, &topo);
        assert!(
            est_skewed.dram_gbps < est_balanced.dram_gbps / 3.0,
            "imbalance must throttle bandwidth: {} vs {}",
            est_skewed.dram_gbps,
            est_balanced.dram_gbps
        );
        assert!(est_skewed.imbalance > 3.0);
        assert!(est_skewed.qpi_utilization < est_balanced.qpi_utilization);
    }

    #[test]
    fn contended_lock_bounds_phase_time() {
        let t = ThreadCounters {
            accesses: 1000,
            ..ThreadCounters::default()
        };
        let mut report = report_with(vec![t; 4], 0, 0);
        let model = TimeModel::default();
        let topo = Topology::paper();
        let uncontended = estimate(&report, &model, &topo);
        assert!(!uncontended.lock_bound);
        // A lock that serialized far more work than any one thread did.
        report.max_lock_cycles = 1_000_000;
        let contended = estimate(&report, &model, &topo);
        assert!(contended.lock_bound);
        assert!(contended.seconds > uncontended.seconds * 100.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let report = CacheReport::default();
        let est = estimate(&report, &TimeModel::default(), &Topology::paper());
        assert_eq!(est.dram_gbps, 0.0);
        assert_eq!(est.imbalance, 1.0);
    }

    #[test]
    fn utilization_is_capped_at_one() {
        let t = ThreadCounters {
            accesses: 1,
            ..ThreadCounters::default()
        };
        let report = report_with(vec![t], u64::MAX / 128, u64::MAX / 128);
        let est = estimate(&report, &TimeModel::default(), &Topology::paper());
        assert!(est.dram_utilization <= 1.0);
        assert!(est.qpi_utilization <= 1.0);
    }
}
