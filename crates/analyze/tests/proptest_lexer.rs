//! Property tests for the analyzer's lexer: on arbitrary input — not just
//! well-formed Rust — token spans must be non-overlapping, in-bounds, and
//! concatenate back to the source byte-for-byte. Totality is what lets
//! the corpus test and the whole-repo analysis trust the token stream.

use proptest::prelude::*;
use saga_analyze::lexer::lex;

/// Printable-ASCII runs (the bulk of real source).
fn ascii_run() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127u8, 0..8)
        .prop_map(|b| b.into_iter().map(char::from).collect())
}

/// Arbitrary scalar values folded to `char`, surrogates skipped — the
/// lexer must stay total on any unicode, not just source-y text.
fn unicode_run() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x0011_0000, 0..4)
        .prop_map(|v| v.into_iter().filter_map(char::from_u32).collect())
}

/// Strings biased toward lexer trouble: comment openers, string quotes,
/// raw-string hashes, lifetimes vs. char literals, and plain unicode.
fn source_strategy() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("//".to_string()),
        Just("/*".to_string()),
        Just("*/".to_string()),
        Just("\"".to_string()),
        Just("\\\"".to_string()),
        Just("r#\"".to_string()),
        Just("\"#".to_string()),
        Just("'a".to_string()),
        Just("'a'".to_string()),
        Just("0x1f".to_string()),
        Just("1..2".to_string()),
        Just("fn f() {}".to_string()),
        Just("self.m.lock()".to_string()),
        ascii_run(),
        unicode_run(),
    ];
    proptest::collection::vec(fragment, 0..24).prop_map(|v| v.concat())
}

/// Longer pure-unicode strings for the second property.
fn unicode_long() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x0011_0000, 0..64)
        .prop_map(|v| v.into_iter().filter_map(char::from_u32).collect())
}

proptest! {
    #[test]
    fn spans_tile_arbitrary_input(src in source_strategy()) {
        let tokens = lex(&src);
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, cursor, "gap/overlap at byte {}", cursor);
            prop_assert!(t.end > t.start, "empty span at {}", t.start);
            prop_assert!(t.end <= src.len(), "span {}..{} out of bounds", t.start, t.end);
            cursor = t.end;
        }
        prop_assert_eq!(cursor, src.len(), "lexer stopped before the end");
        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
    }

    #[test]
    fn spans_tile_arbitrary_unicode(src in unicode_long()) {
        let tokens = lex(&src);
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, cursor);
            cursor = t.end;
        }
        prop_assert_eq!(cursor, src.len());
    }
}
