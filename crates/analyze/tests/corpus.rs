//! Corpus test: the lexer and item parser must handle every `.rs` file in
//! the workspace — total lexing (spans tile the source exactly) and
//! panic-free item parsing with sane line numbers.

use std::path::Path;

use saga_analyze::collect_sources;
use saga_analyze::lexer::{lex, TokenKind};
use saga_analyze::parser::parse;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("analyze lives two levels below the workspace root")
}

#[test]
fn lexes_every_workspace_file_totally() {
    let files = collect_sources(workspace_root()).expect("collect workspace sources");
    assert!(
        files.len() > 50,
        "suspiciously small corpus: {} files",
        files.len()
    );
    for f in &files {
        let tokens = lex(&f.source);
        // Spans are in-bounds, non-overlapping, and tile the whole file.
        let mut cursor = 0usize;
        for t in &tokens {
            assert_eq!(
                t.start, cursor,
                "{}: token gap/overlap at byte {} ({:?})",
                f.path, cursor, t.kind
            );
            assert!(
                t.end > t.start && t.end <= f.source.len(),
                "{}: bad span {}..{}",
                f.path,
                t.start,
                t.end
            );
            cursor = t.end;
        }
        assert_eq!(cursor, f.source.len(), "{}: lexer stopped early", f.path);
        // Concatenating the token texts reproduces the source.
        let rebuilt: String = tokens.iter().map(|t| t.text(&f.source)).collect();
        assert_eq!(rebuilt, f.source, "{}: token texts do not concatenate", f.path);
        // Nothing in the workspace should lex as Unknown.
        for t in &tokens {
            assert_ne!(
                t.kind,
                TokenKind::Unknown,
                "{}: unknown token {:?} at {}..{}",
                f.path,
                t.text(&f.source),
                t.start,
                t.end
            );
        }
    }
}

#[test]
fn parses_every_workspace_file() {
    let files = collect_sources(workspace_root()).expect("collect workspace sources");
    let mut total_fns = 0usize;
    for f in &files {
        let fns = parse(&f.source);
        for func in &fns {
            assert!(!func.name.is_empty(), "{}: unnamed fn", f.path);
            let lines = f.source.lines().count();
            assert!(
                func.line >= 1 && func.line <= lines.max(1),
                "{}: fn {} has line {} of {}",
                f.path,
                func.name,
                func.line,
                lines
            );
        }
        total_fns += fns.len();
    }
    assert!(
        total_fns > 500,
        "suspiciously few functions parsed: {total_fns}"
    );
}
