//! Lock-order graph construction, cycle detection, and the
//! lock-held-across-callback check (the PR-6 bug shape).

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{LockEdge, Model};
use crate::report::Finding;

/// The global lock-order graph plus its findings.
#[derive(Debug, Default)]
pub struct LockOrder {
    /// Adjacency: held class → classes acquired under it.
    pub adj: BTreeMap<String, BTreeSet<String>>,
    /// One representative edge per (from, to) pair, for reporting.
    pub witness: BTreeMap<(String, String), LockEdge>,
    /// Deadlock findings (cycles and held-across-callback).
    pub findings: Vec<Finding>,
}

/// Builds the graph from the model's edges and runs both checks.
pub fn check(model: &Model) -> LockOrder {
    let mut lo = LockOrder::default();
    for e in model.edges() {
        lo.adj.entry(e.from.clone()).or_default().insert(e.to.clone());
        lo.adj.entry(e.to.clone()).or_default();
        lo.witness
            .entry((e.from.clone(), e.to.clone()))
            .or_insert(e);
    }
    cycles(&mut lo);
    callbacks(model, &mut lo);
    lo
}

/// Reports every non-trivial strongly connected component (≥ 2 classes)
/// and every self-loop as a potential deadlock cycle. The finding key is
/// the sorted class list, which is stable under edge-discovery order.
fn cycles(lo: &mut LockOrder) {
    for scc in tarjan(&lo.adj) {
        let cyclic = scc.len() > 1
            || scc
                .first()
                .is_some_and(|c| lo.adj.get(c).is_some_and(|s| s.contains(c)));
        if !cyclic {
            continue;
        }
        let mut classes: Vec<&String> = scc.iter().collect();
        classes.sort();
        let key = format!(
            "lock-cycle:{}",
            classes.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(",")
        );
        // Witness edges internal to the component, for the message.
        let mut sites = Vec::new();
        for ((from, to), e) in &lo.witness {
            if scc.contains(from) && scc.contains(to) {
                sites.push(format!(
                    "{from} -> {to} at {}:{} ({}, {})",
                    e.file, e.line, e.func, e.via
                ));
            }
        }
        let noun = if scc.len() == 1 {
            "same-class nesting (self-deadlock with non-reentrant locks)"
        } else {
            "lock-order cycle (potential deadlock)"
        };
        lo.findings.push(Finding {
            key,
            message: format!("{noun}: {}", sites.join("; ")),
        });
    }
}

/// Flags closures that may acquire a lock class their receiver holds
/// while invoking them: `g.for_each(v, |x| … g.degree(x) …)` where
/// `for_each` holds the chunk lock across the callback.
fn callbacks(model: &Model, lo: &mut LockOrder) {
    for (i, f) in model.fns.iter().enumerate() {
        for closure in &f.closures {
            let Some(callee) = &closure.passed_to else {
                continue;
            };
            // What the closure itself may acquire, transitively.
            let mut may: BTreeSet<String> = closure.acquires.clone();
            for &ci in &closure.calls {
                let call = &f.calls[ci];
                for j in model.resolve(i, &call.name) {
                    may.extend(model.fns[j].may_acquire.iter().cloned());
                }
            }
            if may.is_empty() {
                continue;
            }
            for j in model.resolve(i, callee) {
                let prov = &model.fns[j].provider;
                for class in may.intersection(&prov.keys().cloned().collect()) {
                    let prov_line = prov.get(class).copied().unwrap_or(0);
                    lo.findings.push(Finding {
                        key: format!("callback:{}.{}:{class}", f.stem, f.info.name),
                        message: format!(
                            "closure at {}:{} (in {}) passed to `{}` may acquire `{class}`, \
                             which `{}` holds across the callback ({}:{}) — self-deadlock shape",
                            f.file,
                            closure.line,
                            f.info.qual_name,
                            callee,
                            model.fns[j].info.qual_name,
                            model.fns[j].file,
                            prov_line,
                        ),
                    });
                }
            }
        }
    }
    lo.findings.sort_by(|a, b| a.key.cmp(&b.key).then(a.message.cmp(&b.message)));
    lo.findings.dedup_by(|a, b| a.key == b.key && a.message == b.message);
}

/// Iterative Tarjan SCC over the class graph (iterative so deep chains
/// cannot overflow the stack).
fn tarjan(adj: &BTreeMap<String, BTreeSet<String>>) -> Vec<BTreeSet<String>> {
    let nodes: Vec<&String> = adj.keys().collect();
    let index_of: BTreeMap<&String, usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let succs: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| adj[*n].iter().filter_map(|s| index_of.get(s).copied()).collect())
        .collect();

    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();

    // Explicit DFS frames: (node, next successor position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut si)) = frames.last_mut() {
            if *si == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succs[v].get(*si) {
                *si += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = BTreeSet::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.insert(nodes[w].clone());
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

impl LockOrder {
    /// Graphviz DOT rendering of the lock-order graph (the CI artifact).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph lock_order {\n    rankdir=LR;\n");
        for class in self.adj.keys() {
            out.push_str(&format!("    \"{class}\";\n"));
        }
        for ((from, to), e) in &self.witness {
            out.push_str(&format!(
                "    \"{from}\" -> \"{to}\" [label=\"{}:{} ({})\"];\n",
                e.file.rsplit('/').next().unwrap_or(&e.file),
                e.line,
                e.via
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn check_src(files: &[(&str, &str)]) -> LockOrder {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(p, s)| SourceFile::new(*p, *s))
            .collect();
        check(&Model::build(&files))
    }

    #[test]
    fn ab_ba_cycle_is_detected() {
        let lo = check_src(&[(
            "crates/x/src/pair.rs",
            "impl P {\n    fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n    fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }\n}\n",
        )]);
        assert!(
            lo.findings.iter().any(|f| f.key == "lock-cycle:pair.alpha,pair.beta"),
            "{:?}",
            lo.findings
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let lo = check_src(&[(
            "crates/x/src/pair.rs",
            "impl P {\n    fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n    fn ab2(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n}\n",
        )]);
        assert!(lo.findings.is_empty(), "{:?}", lo.findings);
    }

    #[test]
    fn callback_reacquire_is_flagged() {
        let lo = check_src(&[(
            "crates/x/src/chunked.rs",
            concat!(
                "impl C {\n",
                "    fn degree(&self, v: usize) -> usize {\n",
                "        self.chunks[v].lock().len()\n",
                "    }\n",
                "    fn for_each(&self, v: usize, f: &mut dyn FnMut(usize)) {\n",
                "        let chunk = self.chunks[v].lock();\n",
                "        for x in chunk.iter() { f(x); }\n",
                "    }\n",
                "    fn bad(&self) {\n",
                "        let mut total = 0;\n",
                "        self.for_each(0, &mut |x| { total += self.degree(x); });\n",
                "    }\n",
                "}\n",
            ),
        )]);
        assert!(
            lo.findings.iter().any(|f| f.key == "callback:chunked.bad:chunked.chunks"),
            "{:?}",
            lo.findings
        );
    }

    #[test]
    fn two_phase_collect_then_query_is_clean() {
        let lo = check_src(&[(
            "crates/x/src/chunked.rs",
            concat!(
                "impl C {\n",
                "    fn degree(&self, v: usize) -> usize {\n",
                "        self.chunks[v].lock().len()\n",
                "    }\n",
                "    fn for_each(&self, v: usize, f: &mut dyn FnMut(usize)) {\n",
                "        let chunk = self.chunks[v].lock();\n",
                "        for x in chunk.iter() { f(x); }\n",
                "    }\n",
                "    fn good(&self) {\n",
                "        let mut seen = Vec::new();\n",
                "        self.for_each(0, &mut |x| seen.push(x));\n",
                "        let mut total = 0;\n",
                "        for x in seen { total += self.degree(x); }\n",
                "    }\n",
                "}\n",
            ),
        )]);
        assert!(lo.findings.is_empty(), "{:?}", lo.findings);
    }

    #[test]
    fn dot_contains_edges() {
        let lo = check_src(&[(
            "crates/x/src/pair.rs",
            "impl P {\n    fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n}\n",
        )]);
        let dot = lo.to_dot();
        assert!(dot.contains("\"pair.alpha\" -> \"pair.beta\""), "{dot}");
    }
}
