//! `saga-analyze`: a dependency-free static analyzer for the SAGA-Bench
//! workspace. See DESIGN.md §11 for the architecture.
//!
//! Pipeline: [`lexer`] (total, span-tiling) → [`parser`] (item-level
//! event streams) → [`model`] (per-function facts + call-graph
//! fixpoints) → [`lockorder`] (cycle + held-across-callback checks) and
//! [`atomics`] (publish/consume pairing audit) → [`report`] (allowlist
//! filtering, text + DOT artifacts).
//!
//! Invoked as `cargo xtask analyze`, which first proves the analyzer
//! flags every seeded violation in `crates/analyze/fixtures/` and then
//! gates on the production tree being clean modulo `analyze.allow`.

pub mod atomics;
pub mod lexer;
pub mod lockorder;
pub mod model;
pub mod parser;
pub mod report;

use std::path::{Path, PathBuf};

use model::{Model, SourceFile};
use report::{parse_allowlist, Finding, Report};

/// Collects every production source file: `crates/*/src/**/*.rs`.
/// Fixtures, tests/, benches/, examples/, and `target/` are outside
/// that glob by construction.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, root, &mut files)?;
        }
    }
    Ok(files)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::new(rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Runs every check over a set of files, returning the raw findings and
/// the artifacts (relaxed listing, DOT graph, stats line).
pub fn analyze_files(files: &[SourceFile]) -> (Vec<Finding>, Vec<String>, String, String) {
    let m = Model::build(files);
    let lo = lockorder::check(&m);
    let at = atomics::check(&m);
    let classes: std::collections::BTreeSet<&String> = lo.adj.keys().collect();
    let stats = format!(
        "{} files, {} functions, {} lock classes, {} lock-order edges, {} atomic sites",
        files.len(),
        m.fns.len(),
        classes.len(),
        lo.witness.len(),
        m.fns.iter().map(|f| f.atomics.len()).sum::<usize>(),
    );
    let mut findings = lo.findings.clone();
    findings.extend(at.findings.clone());
    (findings, at.relaxed_sites, lo.to_dot(), stats)
}

/// Analyzes the production tree under `root`, applying the allowlist
/// text (usually the contents of `analyze.allow`).
pub fn run_repo(root: &Path, allow_text: &str) -> std::io::Result<Report> {
    let files = collect_sources(root)?;
    let (findings, relaxed, dot, stats) = analyze_files(&files);
    let (entries, errors) = parse_allowlist(allow_text);
    let mut report = Report {
        allow_errors: errors,
        relaxed_sites: relaxed,
        dot,
        stats,
        ..Report::default()
    };
    report.apply_allowlist(findings, &entries);
    Ok(report)
}

/// Self-check over the seeded-violation corpus: each fixture file is
/// analyzed in isolation and its findings' keys must exactly equal the
/// keys declared by `//~ EXPECT: <key>` lines (none declared → the file
/// must analyze clean; `//~ CLEAN` documents that intent). Returns a
/// summary on success, the first mismatch on failure.
pub fn check_fixtures(dir: &Path) -> Result<String, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read fixtures dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no fixtures found in {}", dir.display()));
    }
    let mut flagged = 0usize;
    let mut clean = 0usize;
    for path in &paths {
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let name = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let expected: std::collections::BTreeSet<String> = source
            .lines()
            .filter_map(|l| l.trim().strip_prefix("//~ EXPECT:"))
            .map(|k| k.trim().to_string())
            .collect();
        let file = SourceFile::new(name.clone(), source);
        let (findings, _, _, _) = analyze_files(std::slice::from_ref(&file));
        let actual: std::collections::BTreeSet<String> =
            findings.iter().map(|f| f.key.clone()).collect();
        if actual != expected {
            let missed: Vec<&String> = expected.difference(&actual).collect();
            let extra: Vec<&String> = actual.difference(&expected).collect();
            let detail: Vec<String> = findings
                .iter()
                .map(|f| format!("  [{}] {}", f.key, f.message))
                .collect();
            return Err(format!(
                "fixture {name}: expected keys {expected:?}\n  missed: {missed:?}\n  unexpected: {extra:?}\nfindings:\n{}",
                detail.join("\n")
            ));
        }
        if expected.is_empty() {
            clean += 1;
        } else {
            flagged += 1;
        }
    }
    Ok(format!(
        "fixtures OK: {flagged} seeded-violation files flagged, {clean} clean files clean"
    ))
}
