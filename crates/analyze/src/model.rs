//! Whole-program model: per-function lock/atomics facts extracted from
//! parser event streams, plus the two call-graph fixpoints the checks
//! consume (transitive may-acquire sets and callback-provider sets).
//!
//! Lock identity is a **class**, named `file_stem.field` (e.g.
//! `adjacency_chunked.chunks`). Structures live one-per-file in this
//! workspace and locks are private fields, so the pair is unique enough
//! without type inference; two spellings of the same lock (direct field
//! access vs. a closure parameter) yield two classes, which only splits
//! edges and never merges distinct locks.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{parse, Binding, Event, FnInfo, Mode};

/// One source file handed to the model.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Display path (repo-relative).
    pub path: String,
    /// File stem used as the lock-class namespace.
    pub stem: String,
    /// Full source text.
    pub source: String,
}

impl SourceFile {
    /// Builds a [`SourceFile`] from a path and its contents, deriving the
    /// stem from the final path component.
    pub fn new(path: impl Into<String>, source: impl Into<String>) -> Self {
        let path = path.into();
        let stem = std::path::Path::new(&path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("?")
            .to_string();
        Self {
            path,
            stem,
            source: source.into(),
        }
    }
}

/// A named call site with the lock classes lexically held when it runs.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (method or free-function last segment).
    pub name: String,
    /// Callback parameters of the caller forwarded as bare arguments.
    pub forwards: Vec<String>,
    /// Lock classes held at the call.
    pub held: Vec<String>,
    /// 1-based line.
    pub line: usize,
    /// Indices (into the owning function's `closures`) of every closure
    /// this call is nested inside.
    pub closures: Vec<usize>,
}

/// A closure literal and what it does, for the held-across-callback check.
#[derive(Debug, Clone)]
pub struct ClosureSite {
    /// The call this closure is an argument of, if any.
    pub passed_to: Option<String>,
    /// 1-based line.
    pub line: usize,
    /// Lock classes acquired directly inside the closure.
    pub acquires: BTreeSet<String>,
    /// Indices into the owning function's `calls` made inside the closure.
    pub calls: Vec<usize>,
}

/// One atomic operation, grouped later by its `group` key.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Group key `file_stem.field`.
    pub group: String,
    /// Method name (`load`, `store`, `fetch_add`, …).
    pub method: String,
    /// Ordering names at the call (two for compare-exchange).
    pub orderings: Vec<String>,
    /// Result syntactically discarded.
    pub discarded: bool,
    /// 1-based line.
    pub line: usize,
}

/// A lock-order edge: `from` held while `to` is acquired.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The already-held class.
    pub from: String,
    /// The class acquired under it.
    pub to: String,
    /// File of the acquisition site.
    pub file: String,
    /// Function containing the site.
    pub func: String,
    /// 1-based line.
    pub line: usize,
    /// `"direct"` (nested acquisition) or `"call"` (via a callee's
    /// may-acquire set).
    pub via: &'static str,
}

/// One analyzed function with extracted facts and fixpoint results.
#[derive(Debug, Clone)]
pub struct AnalyzedFn {
    /// Repo-relative file path.
    pub file: String,
    /// Lock-class namespace (file stem).
    pub stem: String,
    /// The parsed function.
    pub info: FnInfo,
    /// Directly acquired classes with mode and line.
    pub direct_acquires: Vec<(String, Mode, usize)>,
    /// Within-function nesting edges.
    pub direct_edges: Vec<LockEdge>,
    /// Named call sites with held sets.
    pub calls: Vec<CallSite>,
    /// Closure literals.
    pub closures: Vec<ClosureSite>,
    /// Classes held while invoking an opaque callback parameter
    /// (class → line of the invocation).
    pub cb_held: BTreeMap<String, usize>,
    /// Atomic operations.
    pub atomics: Vec<AtomicSite>,
    /// Fixpoint: classes this function may acquire, transitively.
    pub may_acquire: BTreeSet<String>,
    /// Fixpoint: classes held when this function (or a callee it forwards
    /// its callback to) invokes the callback (class → representative line).
    pub provider: BTreeMap<String, usize>,
}

/// The whole-program model.
#[derive(Debug, Default)]
pub struct Model {
    /// Every production function analyzed.
    pub fns: Vec<AnalyzedFn>,
    /// Name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// Ubiquitous method names that are never resolved across files: they
/// collide with `std` collection methods, so a cross-file match would
/// wire unrelated call sites into the graph. Same-file resolution still
/// applies (a file calling its own `insert` means that `insert`).
const COMMON_NAMES: &[&str] = &[
    "insert", "remove", "get", "get_mut", "push", "pop", "len", "clear",
    "contains", "contains_key", "new", "clone", "next", "iter", "iter_mut",
    "drain", "extend", "take", "set", "add", "swap", "write", "read",
    "flush", "send", "recv", "join", "entry", "resize", "reserve", "sort",
    "drop", "default", "from", "into", "run", "append", "load", "store",
];

impl Model {
    /// Builds the model from source files: parse, extract facts, run both
    /// fixpoints. Test-module functions are parsed but excluded.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut model = Model::default();
        // Pass 0: parse everything, learn guard-returning helper names.
        let mut parsed: Vec<(usize, Vec<FnInfo>)> = Vec::new();
        let mut guard_helpers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            let fns = parse(&f.source);
            for func in fns.iter().filter(|x| !x.in_test_module && x.returns_guard) {
                let classes: BTreeSet<String> = func
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        Event::Acquire { field, .. } => Some(class_of(&f.stem, field)),
                        _ => None,
                    })
                    .collect();
                guard_helpers
                    .entry(func.name.clone())
                    .or_default()
                    .extend(classes);
            }
            parsed.push((fi, fns));
        }
        // Pass 1: per-function fact extraction with guard helpers known.
        for (fi, fns) in parsed {
            let f = &files[fi];
            for info in fns.into_iter().filter(|x| !x.in_test_module) {
                let idx = model.fns.len();
                let analyzed = extract(f, info, &guard_helpers);
                model
                    .by_name
                    .entry(analyzed.info.name.clone())
                    .or_default()
                    .push(idx);
                model.fns.push(analyzed);
            }
        }
        model.fixpoint_may_acquire();
        model.fixpoint_providers();
        model
    }

    /// Resolves a call name to candidate functions: same-file matches
    /// win; otherwise cross-file by name unless the name is on the
    /// common-method denylist.
    pub fn resolve(&self, caller: usize, name: &str) -> Vec<usize> {
        let Some(all) = self.by_name.get(name) else {
            return Vec::new();
        };
        let file = &self.fns[caller].file;
        let same_file: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| i != caller && self.fns[i].file == *file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        if COMMON_NAMES.contains(&name) {
            return Vec::new();
        }
        all.iter().copied().filter(|&i| i != caller).collect()
    }

    /// Transitive may-acquire: direct acquisitions plus everything any
    /// resolvable callee may acquire, iterated to fixpoint.
    fn fixpoint_may_acquire(&mut self) {
        for f in &mut self.fns {
            f.may_acquire = f
                .direct_acquires
                .iter()
                .map(|(c, _, _)| c.clone())
                .collect();
        }
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let mut add = BTreeSet::new();
                for c in &self.fns[i].calls {
                    for j in self.resolve(i, &c.name) {
                        for cls in &self.fns[j].may_acquire {
                            if !self.fns[i].may_acquire.contains(cls) {
                                add.insert(cls.clone());
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    self.fns[i].may_acquire.extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Callback providers: a function that invokes an opaque callback
    /// parameter while holding locks, or that forwards its callback
    /// parameter to such a provider (adding any locks it holds at the
    /// forwarding call). Iterated to fixpoint so trait wrappers like
    /// `for_each_out_neighbor → for_each` inherit provider status.
    fn fixpoint_providers(&mut self) {
        for f in &mut self.fns {
            f.provider = f.cb_held.clone();
        }
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let mut add: BTreeMap<String, usize> = BTreeMap::new();
                for c in &self.fns[i].calls {
                    if c.forwards.is_empty() {
                        continue;
                    }
                    for j in self.resolve(i, &c.name) {
                        if self.fns[j].provider.is_empty() {
                            continue;
                        }
                        for cls in self.fns[j].provider.keys() {
                            if !self.fns[i].provider.contains_key(cls) {
                                add.insert(cls.clone(), c.line);
                            }
                        }
                        for cls in &c.held {
                            if !self.fns[i].provider.contains_key(cls) {
                                add.insert(cls.clone(), c.line);
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    self.fns[i].provider.extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// All lock-order edges: within-function nesting plus held-at-call ×
    /// callee-may-acquire.
    pub fn edges(&self) -> Vec<LockEdge> {
        let mut out = Vec::new();
        for (i, f) in self.fns.iter().enumerate() {
            out.extend(f.direct_edges.iter().cloned());
            for c in &f.calls {
                if c.held.is_empty() {
                    continue;
                }
                for j in self.resolve(i, &c.name) {
                    for to in &self.fns[j].may_acquire {
                        for from in &c.held {
                            out.push(LockEdge {
                                from: from.clone(),
                                to: to.clone(),
                                file: f.file.clone(),
                                func: f.info.qual_name.clone(),
                                line: c.line,
                                via: "call",
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Lock-class name for an acquisition receiver.
fn class_of(stem: &str, field: &str) -> String {
    format!("{stem}.{field}")
}

/// A held guard: its class and, for `let`-bound guards, the binding name
/// (so `drop(name)` can release it).
#[derive(Debug, Clone)]
struct Held {
    class: String,
    name: Option<String>,
}

/// Walks one function's event stream, tracking guard lifetimes by scope,
/// and produces its direct facts.
fn extract(
    file: &SourceFile,
    info: FnInfo,
    guard_helpers: &BTreeMap<String, BTreeSet<String>>,
) -> AnalyzedFn {
    let mut out = AnalyzedFn {
        file: file.path.clone(),
        stem: file.stem.clone(),
        direct_acquires: Vec::new(),
        direct_edges: Vec::new(),
        calls: Vec::new(),
        closures: Vec::new(),
        cb_held: BTreeMap::new(),
        atomics: Vec::new(),
        may_acquire: BTreeSet::new(),
        provider: BTreeMap::new(),
        info,
    };
    // Scope stack of let-bound guards; statement temporaries die at `;`.
    let mut frames: Vec<Vec<Held>> = vec![Vec::new()];
    let mut temps: Vec<String> = Vec::new();
    // Innermost-last stack of open closures (indices into out.closures),
    // each with the frame depth at entry so exits stay balanced.
    let mut closure_stack: Vec<(usize, usize)> = Vec::new();
    // Local-name → field aliases (`let w = &self.words`, loop variables,
    // single-parameter iterator closures) so per-element receivers fold
    // back into the owning field's class.
    let mut alias: BTreeMap<String, String> = BTreeMap::new();

    let events = std::mem::take(&mut out.info.events);
    for ev in &events {
        match ev {
            Event::ScopeEnter => frames.push(Vec::new()),
            Event::ScopeExit => {
                if frames.len() > 1 {
                    frames.pop();
                }
            }
            Event::StmtEnd => temps.clear(),
            Event::Alias { name, field } => {
                let target = alias.get(field).cloned().unwrap_or_else(|| field.clone());
                alias.insert(name.clone(), target);
            }
            Event::ClosureEnter {
                passed_to,
                chain_root,
                params,
                line,
            } => {
                if let (Some(root), [param]) = (chain_root, params.as_slice()) {
                    let target = alias.get(root).cloned().unwrap_or_else(|| root.clone());
                    alias.insert(param.clone(), target);
                }
                let idx = out.closures.len();
                out.closures.push(ClosureSite {
                    passed_to: passed_to.clone(),
                    line: *line,
                    acquires: BTreeSet::new(),
                    calls: Vec::new(),
                });
                closure_stack.push((idx, frames.len()));
                frames.push(Vec::new());
            }
            Event::ClosureExit => {
                if let Some((_, depth)) = closure_stack.pop() {
                    while frames.len() > depth.max(1) {
                        frames.pop();
                    }
                }
            }
            Event::DropCall { name } => {
                for frame in frames.iter_mut().rev() {
                    if let Some(p) = frame.iter().rposition(|h| h.name.as_deref() == Some(name)) {
                        frame.remove(p);
                        break;
                    }
                }
            }
            Event::Acquire {
                field,
                mode,
                binding,
                line,
            } => {
                let field = alias.get(field).map_or(field.as_str(), String::as_str);
                let class = class_of(&file.stem, field);
                record_acquire(&mut out, &frames, &temps, &closure_stack, &class, *mode, *line);
                register_held(&mut frames, &mut temps, binding, &class);
            }
            Event::Call {
                name,
                binding,
                forwards,
                line,
            } => {
                let held = held_classes(&frames, &temps);
                // Guard-returning helpers count as acquisitions here.
                if let Some(classes) = guard_helpers.get(name) {
                    for class in classes {
                        record_acquire(
                            &mut out,
                            &frames,
                            &temps,
                            &closure_stack,
                            class,
                            Mode::Lock,
                            *line,
                        );
                        register_held(&mut frames, &mut temps, binding, class);
                    }
                }
                let call_idx = out.calls.len();
                out.calls.push(CallSite {
                    name: name.clone(),
                    forwards: forwards.clone(),
                    held,
                    line: *line,
                    closures: closure_stack.iter().map(|&(i, _)| i).collect(),
                });
                for &(ci, _) in &closure_stack {
                    out.closures[ci].calls.push(call_idx);
                }
            }
            Event::CallbackInvoke { line, .. } => {
                for class in held_classes(&frames, &temps) {
                    out.cb_held.entry(class).or_insert(*line);
                }
            }
            Event::AtomicOp {
                field,
                method,
                orderings,
                discarded,
                line,
            } => {
                let field = alias.get(field).map_or(field.as_str(), String::as_str);
                out.atomics.push(AtomicSite {
                    group: class_of(&file.stem, field),
                    method: method.clone(),
                    orderings: orderings.clone(),
                    discarded: *discarded,
                    line: *line,
                });
            }
        }
    }
    out
}

/// Snapshot of every held class (scoped guards plus statement temps).
fn held_classes(frames: &[Vec<Held>], temps: &[String]) -> Vec<String> {
    frames
        .iter()
        .flatten()
        .map(|h| h.class.clone())
        .chain(temps.iter().cloned())
        .collect()
}

/// Records an acquisition: direct-acquire list, nesting edges from every
/// held class (self-edges included — same-class nesting is a deadlock
/// with non-reentrant locks), and closure-local acquire sets.
fn record_acquire(
    out: &mut AnalyzedFn,
    frames: &[Vec<Held>],
    temps: &[String],
    closure_stack: &[(usize, usize)],
    class: &str,
    mode: Mode,
    line: usize,
) {
    for from in held_classes(frames, temps) {
        out.direct_edges.push(LockEdge {
            from,
            to: class.to_string(),
            file: out.file.clone(),
            func: out.info.qual_name.clone(),
            line,
            via: "direct",
        });
    }
    out.direct_acquires.push((class.to_string(), mode, line));
    for &(ci, _) in closure_stack {
        out.closures[ci].acquires.insert(class.to_string());
    }
}

/// Adds a freshly acquired guard to the held state per its binding.
fn register_held(frames: &mut [Vec<Held>], temps: &mut Vec<String>, binding: &Binding, class: &str) {
    match binding {
        Binding::Let(name) => {
            if let Some(frame) = frames.last_mut() {
                frame.push(Held {
                    class: class.to_string(),
                    name: Some(name.clone()),
                });
            }
        }
        Binding::Temp => temps.push(class.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(src: &str) -> Model {
        Model::build(&[SourceFile::new("crates/x/src/widget.rs", src)])
    }

    fn find<'a>(m: &'a Model, name: &str) -> &'a AnalyzedFn {
        let idx = m.by_name.get(name).and_then(|v| v.first()).copied();
        &m.fns[idx.unwrap_or_else(|| panic!("fn {name} not in model"))]
    }

    #[test]
    fn nested_acquisition_yields_edge() {
        let m = model_of(
            "impl W {\n    fn f(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n    }\n}\n",
        );
        let edges = m.edges();
        assert!(edges.iter().any(|e| e.from == "widget.alpha" && e.to == "widget.beta"));
        assert!(!edges.iter().any(|e| e.from == "widget.beta"));
    }

    #[test]
    fn drop_releases_guard_before_next_acquire() {
        let m = model_of(
            "impl W {\n    fn f(&self) {\n        let a = self.alpha.lock();\n        drop(a);\n        let b = self.beta.lock();\n    }\n}\n",
        );
        assert!(m.edges().is_empty());
    }

    #[test]
    fn scope_exit_releases_guard() {
        let m = model_of(
            "impl W {\n    fn f(&self) {\n        {\n            let a = self.alpha.lock();\n        }\n        let b = self.beta.lock();\n    }\n}\n",
        );
        assert!(m.edges().is_empty());
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let m = model_of(
            "impl W {\n    fn f(&self) {\n        let n = self.alpha.lock().len();\n        let b = self.beta.lock();\n    }\n}\n",
        );
        assert!(m.edges().is_empty());
    }

    #[test]
    fn may_acquire_propagates_through_calls() {
        let m = model_of(
            "impl W {\n    fn low(&self) { let g = self.alpha.lock(); }\n    fn high(&self) { self.low(); }\n}\n",
        );
        assert!(find(&m, "high").may_acquire.contains("widget.alpha"));
    }

    #[test]
    fn call_under_lock_yields_call_edge() {
        let m = model_of(
            "impl W {\n    fn low(&self) { let g = self.alpha.lock(); }\n    fn high(&self) {\n        let b = self.beta.lock();\n        self.low();\n    }\n}\n",
        );
        assert!(m
            .edges()
            .iter()
            .any(|e| e.from == "widget.beta" && e.to == "widget.alpha" && e.via == "call"));
    }

    #[test]
    fn callback_invoke_under_lock_marks_provider() {
        let m = model_of(
            "impl W {\n    fn for_each(&self, f: &mut dyn FnMut(u32)) {\n        let g = self.alpha.lock();\n        for x in g.iter() { f(x); }\n    }\n}\n",
        );
        assert!(find(&m, "for_each").provider.contains_key("widget.alpha"));
    }

    #[test]
    fn provider_status_propagates_through_forwarding() {
        let m = model_of(
            "impl W {\n    fn inner(&self, f: &mut dyn FnMut(u32)) {\n        let g = self.alpha.lock();\n        f(1);\n    }\n    fn outer(&self, f: &mut dyn FnMut(u32)) {\n        self.inner(f);\n    }\n}\n",
        );
        assert!(find(&m, "outer").provider.contains_key("widget.alpha"));
    }

    #[test]
    fn guard_helper_counts_as_acquisition_at_caller() {
        let m = model_of(
            "impl W {\n    fn lock_list(&self, v: usize) -> MutexGuard<'_, Vec<u32>> {\n        self.lists[v].lock()\n    }\n    fn f(&self, f2: &mut dyn FnMut(u32)) {\n        let list = self.lock_list(0);\n        for x in list.iter() { f2(x); }\n    }\n}\n",
        );
        assert!(find(&m, "f").provider.contains_key("widget.lists"));
    }

    #[test]
    fn common_names_do_not_resolve_cross_file() {
        let m = Model::build(&[
            SourceFile::new(
                "crates/x/src/store.rs",
                "impl S {\n    fn insert(&self) { let g = self.alpha.lock(); }\n}\n",
            ),
            SourceFile::new(
                "crates/x/src/user.rs",
                "impl U {\n    fn f(&self) {\n        let b = self.beta.lock();\n        self.map.insert(1);\n    }\n}\n",
            ),
        ]);
        assert!(!m
            .edges()
            .iter()
            .any(|e| e.from == "user.beta" && e.to == "store.alpha"));
    }

    #[test]
    fn test_module_fns_are_excluded() {
        let m = model_of(
            "#[cfg(test)]\nmod tests {\n    fn t(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n}\n",
        );
        assert!(m.fns.is_empty());
    }

    #[test]
    fn self_nesting_yields_self_edge() {
        let m = model_of(
            "impl W {\n    fn f(&self) {\n        let a = self.alpha.lock();\n        let b = self.alpha.lock();\n    }\n}\n",
        );
        assert!(m
            .edges()
            .iter()
            .any(|e| e.from == "widget.alpha" && e.to == "widget.alpha"));
    }

    #[test]
    fn let_borrow_alias_folds_atomic_group() {
        // `let stamp = &self.stamps[i]` then ops on `stamp` must land in
        // the `widget.stamps` group, not a phantom `widget.stamp` group.
        let m = model_of(
            "impl W {\n    fn mark(&self, i: usize) {\n        let stamp = &self.stamps[i];\n        if stamp.load(Ordering::Acquire) == 0 {\n            let _ = stamp.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);\n        }\n    }\n}\n",
        );
        let groups: Vec<_> = find(&m, "mark").atomics.iter().map(|a| a.group.clone()).collect();
        assert!(groups.iter().all(|g| g == "widget.stamps"), "{groups:?}");
    }

    #[test]
    fn for_loop_alias_folds_atomic_group() {
        let m = model_of(
            "impl W {\n    fn clear(&self) {\n        for word in &self.words {\n            word.store(0, Ordering::Release);\n        }\n    }\n    fn count(&self) -> usize {\n        self.words.iter().map(|w| w.load(Ordering::Acquire)).sum()\n    }\n}\n",
        );
        for f in &m.fns {
            for a in &f.atomics {
                assert_eq!(a.group, "widget.words", "{:?} in {}", a, f.info.name);
            }
        }
    }

    #[test]
    fn closure_param_alias_folds_lock_class() {
        // Iterating a lock array with a closure must attribute the
        // acquisition to the array field, not the closure parameter.
        let m = model_of(
            "impl W {\n    fn drain(&self) {\n        self.chunks.iter().for_each(|c| {\n            let g = c.lock();\n            g.len();\n        });\n    }\n}\n",
        );
        let acquires: Vec<_> = find(&m, "drain")
            .direct_acquires
            .iter()
            .map(|(c, _, _)| c.clone())
            .collect();
        assert_eq!(acquires, vec!["widget.chunks".to_string()], "{acquires:?}");
    }
}
