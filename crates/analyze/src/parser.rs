//! Item-level parser: function boundaries, method-call sites, scope
//! depth, and guard bindings — just enough structure to drive the lock
//! and atomics analyses, built on the total [`crate::lexer`].
//!
//! The parser is approximate by design (DESIGN.md §11 lists the known
//! approximations). It recovers, per function:
//!
//! - identity: name, enclosing `impl` type, declaration line, whether the
//!   function sits inside a `#[cfg(test)]` module (test code is parsed
//!   but excluded from the whole-repo analyses);
//! - signature facts: parameters with `Fn`/`FnMut`/`FnOnce`-bounded types
//!   (callback parameters), and whether the return type names a lock
//!   guard (`MutexGuard`, `RwLockReadGuard`, `RwLockWriteGuard`) — calls
//!   to such helpers count as acquisitions at the caller;
//! - a linear event stream over the body: scope enter/exit, statement
//!   ends, lock acquisitions (`.lock()` / zero-arg `.read()` /
//!   `.write()`) with their receiver field and binding kind, `drop(x)`
//!   calls, named calls with forwarded callback parameters, closure
//!   boundaries tagged with the call they are an argument of, direct
//!   invocations of callback parameters, and atomic operations carrying
//!   an `Ordering::` argument.

use crate::lexer::{lex, Token, TokenKind};

/// How an acquired guard is bound at the acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// `let name = ….lock();` — the guard lives to end of scope (or an
    /// explicit `drop(name)`).
    Let(String),
    /// Temporary — the guard dies at the end of the statement.
    Temp,
}

/// Which acquisition method produced a guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `.lock()` on a mutex.
    Lock,
    /// `.read()` on a reader-writer lock.
    Read,
    /// `.write()` on a reader-writer lock.
    Write,
}

impl Mode {
    /// Short display form used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Lock => "lock",
            Mode::Read => "read",
            Mode::Write => "write",
        }
    }
}

/// One element of a function body's linear event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `{` — a new lexical scope (over-approximated: struct literals and
    /// match arms also count, which only shortens guard lifetimes).
    ScopeEnter,
    /// `}` — closes the innermost scope; let-bound guards die here.
    ScopeExit,
    /// `;` — temporaries acquired in the statement die here.
    StmtEnd,
    /// A lock acquisition site.
    Acquire {
        /// Receiver field or variable the lock lives in (lock class seed).
        field: String,
        /// `.lock()` / `.read()` / `.write()`.
        mode: Mode,
        /// Guard binding (scope-long or statement-temporary).
        binding: Binding,
        /// 1-based source line.
        line: usize,
    },
    /// `drop(name)` — ends a let-bound guard early.
    DropCall {
        /// The dropped binding's name.
        name: String,
    },
    /// A named call (free function or method) that is not an acquisition.
    Call {
        /// Callee name (last path segment / method name).
        name: String,
        /// Guard binding if the call's result is let-bound (relevant for
        /// guard-returning helpers).
        binding: Binding,
        /// Callback parameters of the *current* function passed through
        /// as bare arguments (callback forwarding).
        forwards: Vec<String>,
        /// 1-based source line.
        line: usize,
    },
    /// Start of a closure literal.
    ClosureEnter {
        /// Name of the call this closure is an argument of, if any.
        passed_to: Option<String>,
        /// Root field of the receiver chain of that call (`words` for
        /// `self.words.iter().map(|w| …)`) — lets the model alias a
        /// single closure parameter back to the field it iterates.
        chain_root: Option<String>,
        /// The closure's parameter names (empty for tuple/ref patterns,
        /// which the alias logic skips).
        params: Vec<String>,
        /// 1-based source line.
        line: usize,
    },
    /// End of a closure literal.
    ClosureExit,
    /// Direct invocation of a callback parameter (`f(…)` where `f` is a
    /// `Fn`-bounded parameter of the current function).
    CallbackInvoke {
        /// The invoked parameter's name.
        param: String,
        /// 1-based source line.
        line: usize,
    },
    /// A local name that borrows a field (`let stamp = &self.stamps[i];`
    /// or `for word in &self.words { … }`): operations on `name` belong
    /// to `field`'s lock/atomic group.
    Alias {
        /// The borrowing local.
        name: String,
        /// The underlying field.
        field: String,
    },
    /// An atomic operation with an explicit `Ordering::` argument.
    AtomicOp {
        /// Receiver field or variable (atomic group seed).
        field: String,
        /// Method name (`load`, `store`, `fetch_add`, …).
        method: String,
        /// Ordering names in argument position (`Relaxed`, `AcqRel`, …;
        /// two entries for compare-exchange success/failure).
        orderings: Vec<String>,
        /// True when the result is syntactically discarded (`x.op(…);`
        /// as a bare statement).
        discarded: bool,
        /// 1-based source line.
        line: usize,
    },
}

/// One parsed function (or trait-method declaration, which has an empty
/// event stream).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare function name.
    pub name: String,
    /// `Type::name` inside an `impl`/`trait` block, else the bare name.
    pub qual_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameters whose types are `Fn`/`FnMut`/`FnOnce`-shaped.
    pub callback_params: Vec<String>,
    /// Return type names a guard type — callers treat calls to this
    /// function as lock acquisitions.
    pub returns_guard: bool,
    /// Declared inside a `#[cfg(test)]` module.
    pub in_test_module: bool,
    /// Linear body event stream (empty for bodyless declarations).
    pub events: Vec<Event>,
}

/// Methods that acquire a lock when called with zero arguments.
fn acquire_mode(name: &str) -> Option<Mode> {
    match name {
        "lock" => Some(Mode::Lock),
        "read" => Some(Mode::Read),
        "write" => Some(Mode::Write),
        _ => None,
    }
}

/// Atomic methods whose calls the audit records (when an `Ordering::`
/// argument is present, which excludes same-named non-atomic methods).
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Guard type names that mark a helper as guard-returning.
const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Parses `source` into its functions. Never fails; unrecognized
/// constructs are skipped.
pub fn parse(source: &str) -> Vec<FnInfo> {
    let tokens: Vec<Token> = lex(source)
        .into_iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(source.char_indices().filter(|&(_, c)| c == '\n').map(|(i, _)| i + 1))
        .collect();
    let mut p = Parser {
        source,
        tokens,
        pos: 0,
        line_starts,
        fns: Vec::new(),
    };
    p.items(None, false, usize::MAX);
    p.fns
}

struct Parser<'s> {
    source: &'s str,
    tokens: Vec<Token>,
    pos: usize,
    line_starts: Vec<usize>,
    fns: Vec<FnInfo>,
}

impl Parser<'_> {
    fn peek(&self, ahead: usize) -> Option<&Token> {
        self.tokens.get(self.pos + ahead)
    }

    fn text(&self, tok: &Token) -> &str {
        tok.text(self.source)
    }

    fn peek_text(&self, ahead: usize) -> &str {
        self.peek(ahead).map_or("", |t| t.text(self.source))
    }

    fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).copied();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips a balanced group that starts at the current token (`(`, `[`,
    /// `{`, or `<`), returning the token range of its interior.
    fn skip_group(&mut self, open: &str, close: &str) -> (usize, usize) {
        debug_assert_eq!(self.peek_text(0), open);
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        while depth > 0 {
            let Some(t) = self.bump() else { break };
            let s = t.text(self.source);
            if s == open {
                depth += 1;
            } else if s == close {
                depth -= 1;
            }
        }
        (start, self.pos.saturating_sub(1))
    }

    /// Item-level walk inside one brace region (or the whole file when
    /// `end == usize::MAX`): records functions, descends into
    /// `impl`/`trait`/`mod` blocks, tracks `#[cfg(test)]`.
    fn items(&mut self, impl_type: Option<String>, in_test: bool, end: usize) {
        let mut pending_cfg_test = false;
        while self.pos < end.min(self.tokens.len()) {
            let text = self.peek_text(0).to_string();
            match text.as_str() {
                "#" => {
                    // Attribute: `#[...]` or `#![...]`.
                    self.bump();
                    if self.peek_text(0) == "!" {
                        self.bump();
                    }
                    if self.peek_text(0) == "[" {
                        let (s, e) = self.skip_group("[", "]");
                        let attr: String = self.tokens[s..e]
                            .iter()
                            .map(|t| t.text(self.source))
                            .collect::<Vec<_>>()
                            .join(" ");
                        if attr.contains("cfg") && attr.contains("test") {
                            pending_cfg_test = true;
                        }
                    }
                }
                "fn" => {
                    self.bump();
                    self.function(impl_type.as_deref(), in_test || pending_cfg_test);
                    pending_cfg_test = false;
                }
                "impl" | "trait" => {
                    self.bump();
                    let ty = self.impl_target();
                    if self.peek_text(0) == "{" {
                        let (s, e) = self.skip_group("{", "}");
                        let save = self.pos;
                        self.pos = s;
                        self.items(ty, in_test || pending_cfg_test, e);
                        self.pos = save;
                    }
                    pending_cfg_test = false;
                }
                "mod" => {
                    self.bump();
                    self.bump(); // module name
                    if self.peek_text(0) == "{" {
                        let (s, e) = self.skip_group("{", "}");
                        let save = self.pos;
                        self.pos = s;
                        self.items(impl_type.clone(), in_test || pending_cfg_test, e);
                        self.pos = save;
                    }
                    pending_cfg_test = false;
                }
                "{" => {
                    // Stray block at item level (e.g. const bodies): skip.
                    self.skip_group("{", "}");
                    pending_cfg_test = false;
                }
                _ => {
                    self.bump();
                    if !matches!(text.as_str(), "pub" | "(" | ")" | "crate" | "super" | "unsafe" | "const" | "async") {
                        pending_cfg_test = false;
                    }
                }
            }
        }
    }

    /// After `impl`/`trait`: resolve the target type name (the one after
    /// `for` in `impl Trait for Type`), leaving the cursor at the body
    /// `{` (or wherever parsing stopped).
    fn impl_target(&mut self) -> Option<String> {
        let mut result: Option<String> = None;
        while let Some(t) = self.peek(0) {
            let s = self.text(t).to_string();
            match s.as_str() {
                "{" | ";" => break,
                "<" => {
                    self.skip_group("<", ">");
                    continue;
                }
                "for" => {
                    result = None;
                    self.bump();
                    continue;
                }
                "where" => {
                    // Bounds may contain `{`-free paths only; scan to `{`.
                    while self.peek(0).is_some() && self.peek_text(0) != "{" {
                        self.bump();
                    }
                    break;
                }
                _ => {
                    if t.kind == TokenKind::Ident {
                        // Last path segment wins; `for` resets so the
                        // implementing type (not the trait) is kept.
                        result = Some(s);
                    }
                    self.bump();
                }
            }
        }
        result
    }

    /// Parses one function starting after its `fn` keyword.
    fn function(&mut self, impl_type: Option<&str>, in_test: bool) {
        let Some(name_tok) = self.peek(0).copied() else { return };
        if name_tok.kind != TokenKind::Ident {
            return; // `fn(` — a function-pointer type, not a declaration
        }
        let name = self.text(&name_tok).to_string();
        let line = self.line_of(name_tok.start);
        self.bump();

        // Generic parameters: `<F: Fn(usize) + Sync, …>`.
        let mut bound_text = String::new();
        if self.peek_text(0) == "<" {
            let (s, e) = self.skip_group("<", ">");
            bound_text = self.join(s, e);
        }
        if self.peek_text(0) != "(" {
            return;
        }
        let (ps, pe) = self.skip_group("(", ")");
        let params = self.split_params(ps, pe);

        // Return type + where clause: everything up to the body `{` or a
        // terminating `;` (trait declaration without a body).
        let mut ret_where = String::new();
        let mut has_body = false;
        while let Some(t) = self.peek(0) {
            match self.text(t) {
                "{" => {
                    has_body = true;
                    break;
                }
                ";" => {
                    self.bump();
                    break;
                }
                "<" => {
                    let (s, e) = self.skip_group("<", ">");
                    ret_where.push_str(&self.join(s, e));
                    ret_where.push(' ');
                }
                s => {
                    ret_where.push_str(s);
                    ret_where.push(' ');
                    self.bump();
                }
            }
        }
        bound_text.push(' ');
        bound_text.push_str(&ret_where);

        // Return type mentions a guard → guard-returning helper. The
        // where clause is included in the haystack, which is fine: bounds
        // never name concrete guard types in this workspace.
        let returns_guard = GUARD_TYPES.iter().any(|g| ret_where.contains(g));

        let callback_type_params = Self::fn_bounded_idents(&bound_text);
        let callback_params: Vec<String> = params
            .iter()
            .filter(|(_, ty)| {
                Self::is_fn_type(ty) || callback_type_params.iter().any(|tp| ty.split_whitespace().any(|w| w == tp))
            })
            .map(|(n, _)| n.clone())
            .collect();

        let events = if has_body {
            let (bs, be) = self.skip_group("{", "}");
            self.body_events(bs, be, &callback_params)
        } else {
            Vec::new()
        };

        let qual_name = match impl_type {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        self.fns.push(FnInfo {
            name,
            qual_name,
            line,
            callback_params,
            returns_guard,
            in_test_module: in_test,
            events,
        });
    }

    fn join(&self, start: usize, end: usize) -> String {
        self.tokens[start..end.min(self.tokens.len())]
            .iter()
            .map(|t| t.text(self.source))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Splits the parameter-list token range into `(name, type-text)`
    /// pairs at top-level commas. `self` receivers yield no pair.
    fn split_params(&self, start: usize, end: usize) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            // One parameter: NAME : TYPE (skip pattern params and self).
            let mut depth = 0usize;
            let param_start = i;
            let mut colon_at = None;
            while i < end {
                let s = self.text(&self.tokens[i]);
                match s {
                    "(" | "[" | "<" | "{" => depth += 1,
                    ")" | "]" | ">" | "}" => depth = depth.saturating_sub(1),
                    "," if depth == 0 => break,
                    ":" if depth == 0 && colon_at.is_none() => colon_at = Some(i),
                    _ => {}
                }
                i += 1;
            }
            if let Some(c) = colon_at {
                // Name = last ident before the colon (skips `mut`).
                let name = self.tokens[param_start..c]
                    .iter()
                    .rev()
                    .find(|t| t.kind == TokenKind::Ident && self.text(t) != "mut")
                    .map(|t| self.text(t).to_string());
                if let Some(name) = name {
                    out.push((name, self.join(c + 1, i)));
                }
            }
            i += 1; // past the comma
        }
        out
    }

    /// Type-parameter names bounded by `Fn`/`FnMut`/`FnOnce` in generics
    /// or where-clause text.
    fn fn_bounded_idents(bounds: &str) -> Vec<String> {
        let words: Vec<&str> = bounds.split_whitespace().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < words.len() {
            if words[i] == ":" && i > 0 {
                let name = words[i - 1];
                // Scan the bound until the next top-level comma-ish word.
                let mut j = i + 1;
                while j < words.len() && words[j] != "," {
                    if matches!(words[j], "Fn" | "FnMut" | "FnOnce") {
                        out.push(name.to_string());
                        break;
                    }
                    j += 1;
                }
            }
            i += 1;
        }
        out
    }

    /// True for parameter types that are directly `Fn`-shaped
    /// (`impl Fn…`, `&mut dyn FnMut…`, `fn(…)` pointers excluded).
    fn is_fn_type(ty: &str) -> bool {
        ty.split_whitespace().any(|w| matches!(w, "Fn" | "FnMut" | "FnOnce"))
    }

    /// Walks one function body's token range and emits the event stream.
    fn body_events(&self, start: usize, end: usize, callback_params: &[String]) -> Vec<Event> {
        let mut ev = Vec::new();
        let mut i = start;
        // Innermost-first stack of call names whose argument list is
        // currently open: (name, paren_depth_at_open).
        let mut call_stack: Vec<(String, usize, Option<String>)> = Vec::new();
        let mut paren_depth = 0usize;
        let mut pending_let: Option<String> = None;

        while i < end {
            let tok = self.tokens[i];
            let s = self.text(&tok);
            match s {
                "{" => {
                    ev.push(Event::ScopeEnter);
                    i += 1;
                }
                "}" => {
                    ev.push(Event::ScopeExit);
                    i += 1;
                }
                ";" => {
                    ev.push(Event::StmtEnd);
                    pending_let = None;
                    i += 1;
                }
                "(" => {
                    paren_depth += 1;
                    i += 1;
                }
                ")" => {
                    paren_depth = paren_depth.saturating_sub(1);
                    while call_stack.last().is_some_and(|&(_, d, _)| d > paren_depth) {
                        call_stack.pop();
                    }
                    i += 1;
                }
                "let" => {
                    // `let [mut] NAME =` — tuple/struct patterns stay Temp.
                    let mut j = i + 1;
                    if self.peek_at(j) == "mut" {
                        j += 1;
                    }
                    let name_tok = self.tokens.get(j);
                    if let Some(nt) = name_tok {
                        if nt.kind == TokenKind::Ident {
                            pending_let = Some(self.text(nt).to_string());
                        } else {
                            pending_let = None;
                        }
                    }
                    // `let NAME = &self.FIELD…;` — a field borrow: alias
                    // NAME to FIELD so its lock/atomic ops group with the
                    // field (`let stamp = &self.stamps[i];`).
                    if let Some(name) = pending_let.clone() {
                        let mut k = j + 1;
                        if self.peek_at(k) == "=" {
                            k += 1;
                            if self.peek_at(k) == "&" {
                                k += 1;
                                if self.peek_at(k) == "mut" {
                                    k += 1;
                                }
                                if self.peek_at(k) == "self" && self.peek_at(k + 1) == "." {
                                    if let Some(ft) = self.tokens.get(k + 2) {
                                        if ft.kind == TokenKind::Ident {
                                            ev.push(Event::Alias {
                                                name,
                                                field: self.text(ft).to_string(),
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                    i += 1;
                }
                "for" => {
                    // `for X in … self.FIELD … {` or
                    // `for (i, X) in … self.FIELD … {` — iteration borrows
                    // the field: alias X (the last pattern ident, i.e. the
                    // element of an `enumerate()` pair) to FIELD.
                    let mut j = i + 1;
                    if self.peek_at(j) == "mut" {
                        j += 1;
                    }
                    // Tuple patterns (`for (i, b) in xs.iter().enumerate()`)
                    // bind the element last: alias the final ident.
                    let mut pat_name: Option<String> = None;
                    let mut after_pat = j + 1;
                    if self.peek_at(j) == "(" {
                        let mut k = j + 1;
                        while k < end && self.peek_at(k) != ")" {
                            if self
                                .tokens
                                .get(k)
                                .is_some_and(|t| t.kind == TokenKind::Ident)
                                && self.peek_at(k) != "mut"
                                && self.peek_at(k) != "_"
                            {
                                pat_name = Some(self.peek_at(k).to_string());
                            }
                            k += 1;
                        }
                        after_pat = k + 1;
                    } else if self
                        .tokens
                        .get(j)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                    {
                        pat_name = Some(self.peek_at(j).to_string());
                    }
                    let is_simple =
                        pat_name.is_some() && self.peek_at(after_pat) == "in";
                    if is_simple {
                        let name = pat_name.unwrap_or_default();
                        let mut k = after_pat + 1;
                        while k < end && self.peek_at(k) != "{" && self.peek_at(k) != ";" {
                            if self.peek_at(k) == "self" && self.peek_at(k + 1) == "." {
                                if let Some(ft) = self.tokens.get(k + 2) {
                                    if ft.kind == TokenKind::Ident {
                                        ev.push(Event::Alias {
                                            name,
                                            field: self.text(ft).to_string(),
                                        });
                                    }
                                }
                                break;
                            }
                            k += 1;
                        }
                    }
                    i += 1;
                }
                "|" => {
                    if self.closure_starts_at(i, start) {
                        let close = self.closure_params_end(i, end);
                        let (passed_to, chain_root) = call_stack
                            .last()
                            .map(|(n, _, r)| (Some(n.clone()), r.clone()))
                            .unwrap_or((None, None));
                        // Parameter names; ref/tuple patterns yield no
                        // params so the alias logic stays conservative.
                        let mut params: Vec<String> = Vec::new();
                        let mut simple = true;
                        let mut in_type = false;
                        for t in &self.tokens[(i + 1).min(close)..close.min(self.tokens.len())] {
                            match self.text(t) {
                                ":" => in_type = true,
                                "," => in_type = false,
                                "mut" | "_" => {}
                                _ if in_type => {}
                                s if t.kind == TokenKind::Ident => params.push(s.to_string()),
                                _ => simple = false,
                            }
                        }
                        if !simple {
                            params.clear();
                        }
                        ev.push(Event::ClosureEnter {
                            passed_to,
                            chain_root,
                            params,
                            line: self.line_of(tok.start),
                        });
                        // Body: a block, or a bare expression to the next
                        // top-level `,` or `)`.
                        let j = close + 1;
                        if self.peek_at(j) == "{" {
                            let body_end = self.matching(j, "{", "}", end);
                            let inner = self.body_events(j + 1, body_end, callback_params);
                            ev.extend(inner);
                            ev.push(Event::ClosureExit);
                            i = body_end + 1;
                        } else {
                            let expr_end = self.expr_end(j, end);
                            let inner = self.body_events(j, expr_end, callback_params);
                            ev.extend(inner);
                            ev.push(Event::ClosureExit);
                            i = expr_end;
                        }
                        continue;
                    }
                    i += 1;
                }
                _ if tok.kind == TokenKind::Ident => {
                    i = self.ident_site(i, end, s, callback_params, &mut ev, &mut call_stack, paren_depth, &mut pending_let);
                }
                _ => {
                    i += 1;
                }
            }
        }
        ev
    }

    fn peek_at(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text(self.source))
    }

    /// Index of the token matching `open` at position `i` (which must
    /// hold `open`), bounded by `end`.
    fn matching(&self, i: usize, open: &str, close: &str, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            let s = self.peek_at(j);
            if s == open {
                depth += 1;
            } else if s == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        end
    }

    /// Heuristic: a `|` begins a closure when the previous significant
    /// token cannot end an expression.
    fn closure_starts_at(&self, i: usize, body_start: usize) -> bool {
        if i == body_start {
            return true;
        }
        let prev = self.peek_at(i - 1);
        matches!(prev, "(" | "," | "=" | "{" | ";" | "&" | "|")
            || matches!(prev, "mut" | "move" | "return" | "else" | "=>" | ":")
            || prev == ">" && self.peek_at(i.saturating_sub(2)) == "="
    }

    /// Index of the `|` closing the parameter list opened at `i`.
    fn closure_params_end(&self, i: usize, end: usize) -> usize {
        // `||` (empty params) lexes as two `|` puncts.
        let mut j = i + 1;
        let mut depth = 0usize;
        while j < end {
            match self.peek_at(j) {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth = depth.saturating_sub(1),
                "|" if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// End (exclusive) of a bare closure-body expression starting at `j`:
    /// the next `,` or `)` at the closure's own nesting level.
    fn expr_end(&self, j: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut k = j;
        while k < end {
            match self.peek_at(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" if depth == 0 => return k,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => return k,
                _ => {}
            }
            k += 1;
        }
        end
    }

    /// Handles an identifier token inside a body: classifies call sites,
    /// acquisitions, callback invocations, and atomic operations.
    /// Returns the next token index.
    #[allow(clippy::too_many_arguments)]
    fn ident_site(
        &self,
        i: usize,
        end: usize,
        name: &str,
        callback_params: &[String],
        ev: &mut Vec<Event>,
        call_stack: &mut Vec<(String, usize, Option<String>)>,
        paren_depth: usize,
        pending_let: &mut Option<String>,
    ) -> usize {
        let line = self.line_of(self.tokens[i].start);
        // Only `ident (` forms are interesting (calls); `ident!` is a
        // macro (its arguments still get scanned as ordinary tokens).
        if self.peek_at(i + 1) != "(" {
            return i + 1;
        }
        let is_method = i > 0 && self.peek_at(i - 1) == ".";
        let args_close = self.matching(i + 1, "(", ")", end);
        // Binding: a further `.` after the call's `)` chains the result
        // into a temporary; otherwise a pending `let` captures it.
        let chained = self.peek_at(args_close + 1) == ".";
        let binding = if chained {
            Binding::Temp
        } else {
            pending_let
                .clone()
                .map(Binding::Let)
                .unwrap_or(Binding::Temp)
        };

        if is_method {
            let field = self.receiver_field(i - 1);
            let zero_arg = args_close == i + 2;
            if let (Some(mode), true) = (acquire_mode(name), zero_arg) {
                ev.push(Event::Acquire {
                    field,
                    mode,
                    binding,
                    line,
                });
                return i + 2; // continue inside the (empty) args
            }
            if ATOMIC_METHODS.contains(&name) {
                let orderings = self.ordering_args(i + 2, args_close);
                if !orderings.is_empty() {
                    let discarded = !chained
                        && pending_let.is_none()
                        && self.peek_at(args_close + 1) == ";";
                    ev.push(Event::AtomicOp {
                        field,
                        method: name.to_string(),
                        orderings,
                        discarded,
                        line,
                    });
                    // Still descend into the args (closures in
                    // `fetch_update` etc. are rare; orderings recorded).
                }
            }
            ev.push(Event::Call {
                name: name.to_string(),
                binding,
                forwards: self.forwarded_params(i + 2, args_close, callback_params),
                line,
            });
            call_stack.push((name.to_string(), paren_depth, self.chain_root_field(i - 1)));
            return i + 1;
        }

        // Free call: `drop(x)`, callback invocation, or named call.
        if name == "drop" {
            if let Some(t) = self.tokens.get(i + 2) {
                if t.kind == TokenKind::Ident && self.peek_at(i + 3) == ")" {
                    ev.push(Event::DropCall {
                        name: self.text(t).to_string(),
                    });
                    return i + 4;
                }
            }
            return i + 1;
        }
        if callback_params.iter().any(|p| p == name) {
            ev.push(Event::CallbackInvoke {
                param: name.to_string(),
                line,
            });
            return i + 1;
        }
        ev.push(Event::Call {
            name: name.to_string(),
            binding,
            forwards: self.forwarded_params(i + 2, args_close, callback_params),
            line,
        });
        call_stack.push((name.to_string(), paren_depth, None));
        i + 1
    }

    /// Root field of a method-call receiver chain: walking back from the
    /// `.` at `dot`, skip call-argument and index groups and method
    /// names, and return the field identifier nearest the chain root
    /// (`words` for `self.words.iter().map`). `None` when the chain
    /// bottoms out in a call or non-path expression.
    fn chain_root_field(&self, dot: usize) -> Option<String> {
        let mut j = dot;
        let mut best: Option<String> = None;
        while j > 0 {
            j -= 1; // element before the current `.`
            match self.peek_at(j) {
                ")" => {
                    let open = self.rmatching(j);
                    if open == 0 {
                        break;
                    }
                    j = open;
                    if j == 0 {
                        break;
                    }
                    j -= 1; // the callee name — a method, not a field
                    if self.tokens.get(j).is_none_or(|t| t.kind != TokenKind::Ident) {
                        break;
                    }
                }
                "]" => {
                    let mut depth = 0usize;
                    loop {
                        match self.peek_at(j) {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if j == 0 {
                            return best;
                        }
                        j -= 1;
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1; // the indexed field
                    match self.tokens.get(j) {
                        Some(t) if t.kind == TokenKind::Ident => {
                            let s = self.text(t);
                            if s != "self" {
                                best = Some(s.to_string());
                            }
                        }
                        _ => break,
                    }
                }
                _ => match self.tokens.get(j) {
                    Some(t) if t.kind == TokenKind::Ident => {
                        let s = self.text(t);
                        if s != "self" {
                            best = Some(s.to_string());
                        }
                    }
                    _ => break,
                },
            }
            if j == 0 || self.peek_at(j - 1) != "." {
                break;
            }
            j -= 1; // the next `.` up the chain
        }
        best
    }

    /// The receiver field of a method call: walking back from the `.`,
    /// skip one balanced `[…]` index, then take the identifier. Falls
    /// back to `"?"` when the receiver is not a simple path.
    fn receiver_field(&self, dot: usize) -> String {
        let mut j = dot; // index of the `.` token
        if j == 0 {
            return "?".to_string();
        }
        j -= 1;
        if self.peek_at(j) == "]" {
            // Skip the index expression backwards.
            let mut depth = 0usize;
            loop {
                match self.peek_at(j) {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return "?".to_string();
                }
                j -= 1;
            }
            if j == 0 {
                return "?".to_string();
            }
            j -= 1;
        }
        // `)` — receiver is a call result: attribute to the called name.
        if self.peek_at(j) == ")" {
            let open = self.rmatching(j);
            if open > 0 {
                let t = &self.tokens[open - 1];
                if t.kind == TokenKind::Ident {
                    return self.text(t).to_string();
                }
            }
            return "?".to_string();
        }
        let t = &self.tokens[j];
        if t.kind == TokenKind::Ident {
            let name = self.text(t);
            if name == "self" {
                return "self".to_string();
            }
            return name.to_string();
        }
        "?".to_string()
    }

    /// Index of the `(` matching the `)` at `j`, scanning backwards.
    fn rmatching(&self, j: usize) -> usize {
        let mut depth = 0usize;
        let mut k = j;
        loop {
            match self.peek_at(k) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return 0;
            }
            k -= 1;
        }
    }

    /// `Ordering::X` names appearing in an argument token range.
    fn ordering_args(&self, start: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut j = start;
        while j + 2 < end + 3 && j < end {
            if self.peek_at(j) == "Ordering"
                && self.peek_at(j + 1) == ":"
                && self.peek_at(j + 2) == ":"
            {
                out.push(self.peek_at(j + 3).to_string());
                j += 4;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Callback parameters of the current function passed as bare
    /// top-level arguments in the range (callback forwarding `g(f)`).
    fn forwarded_params(&self, start: usize, end: usize, callback_params: &[String]) -> Vec<String> {
        let mut out = Vec::new();
        let mut depth = 0usize;
        let mut j = start;
        while j < end {
            match self.peek_at(j) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
                s if depth == 0
                    && callback_params.iter().any(|p| p == s)
                    && self.peek_at(j + 1) != "("
                    && self.peek_at(j.saturating_sub(1)) != "." =>
                {
                    out.push(s.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(fns: &'a [FnInfo], name: &str) -> &'a FnInfo {
        fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("fn {name} not found"))
    }

    #[test]
    fn finds_fns_and_impl_qualification() {
        let fns = parse(
            "impl Foo {\n    fn a(&self) {}\n}\nimpl Bar for Baz {\n    fn b(&self) {}\n}\nfn free() {}\n",
        );
        assert_eq!(find(&fns, "a").qual_name, "Foo::a");
        assert_eq!(find(&fns, "b").qual_name, "Baz::b");
        assert_eq!(find(&fns, "free").qual_name, "free");
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let fns = parse("#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod() {}\n");
        assert!(find(&fns, "t").in_test_module);
        assert!(!find(&fns, "prod").in_test_module);
    }

    #[test]
    fn acquisition_with_let_binding() {
        let fns = parse("fn f(&self) {\n    let mut list = self.lists[i].lock();\n    list.push(1);\n}\n");
        let f = find(&fns, "f");
        assert!(f.events.iter().any(|e| matches!(
            e,
            Event::Acquire { field, mode: Mode::Lock, binding: Binding::Let(n), .. }
                if field == "lists" && n == "list"
        )), "{:?}", f.events);
    }

    #[test]
    fn chained_guard_is_temporary() {
        let fns = parse("fn f(&self) { let n = self.chain.lock().len(); }\n");
        let f = find(&fns, "f");
        assert!(f.events.iter().any(|e| matches!(
            e,
            Event::Acquire { field, binding: Binding::Temp, .. } if field == "chain"
        )), "{:?}", f.events);
    }

    #[test]
    fn rwlock_read_write_modes() {
        let fns = parse("fn f(&self) { let s = self.snapshot.read(); }\nfn g(&self) { let s = self.snapshot.write(); }\n");
        assert!(find(&fns, "f").events.iter().any(|e| matches!(e, Event::Acquire { mode: Mode::Read, .. })));
        assert!(find(&fns, "g").events.iter().any(|e| matches!(e, Event::Acquire { mode: Mode::Write, .. })));
    }

    #[test]
    fn read_with_args_is_not_an_acquisition() {
        let fns = parse("fn f(r: &mut R) { r.read(&mut buf); }\n");
        assert!(!find(&fns, "f").events.iter().any(|e| matches!(e, Event::Acquire { .. })));
    }

    #[test]
    fn callback_params_via_impl_and_generics() {
        let fns = parse(
            "fn a(&self, f: &mut dyn FnMut(u32)) {}\nfn b<F>(&self, f: F) where F: Fn(usize) + Sync {}\nfn c<F: FnOnce()>(f: F) {}\nfn d(&self, x: usize) {}\n",
        );
        assert_eq!(find(&fns, "a").callback_params, vec!["f"]);
        assert_eq!(find(&fns, "b").callback_params, vec!["f"]);
        assert_eq!(find(&fns, "c").callback_params, vec!["f"]);
        assert!(find(&fns, "d").callback_params.is_empty());
    }

    #[test]
    fn callback_invocation_and_forwarding() {
        let fns = parse(
            "fn f(&self, g: &mut dyn FnMut(u32)) {\n    let list = self.lists[v].lock();\n    for x in list.iter() { g(x); }\n}\nfn h(&self, g: &mut dyn FnMut(u32)) { self.out.for_each(v, g); }\n",
        );
        assert!(find(&fns, "f").events.iter().any(|e| matches!(e, Event::CallbackInvoke { param, .. } if param == "g")));
        assert!(find(&fns, "h").events.iter().any(|e| matches!(
            e,
            Event::Call { name, forwards, .. } if name == "for_each" && forwards == &["g".to_string()]
        )));
    }

    #[test]
    fn closure_argument_is_attributed_to_call() {
        let fns = parse("fn f(&self) {\n    pool.run_on_all(|w| {\n        let g = self.lists[w].lock();\n    });\n}\n");
        let f = find(&fns, "f");
        let enter = f.events.iter().find_map(|e| match e {
            Event::ClosureEnter { passed_to, .. } => Some(passed_to.clone()),
            _ => None,
        });
        assert_eq!(enter, Some(Some("run_on_all".to_string())));
        // The acquire is inside the closure (between Enter and Exit).
        let idx_enter = f.events.iter().position(|e| matches!(e, Event::ClosureEnter { .. })).unwrap();
        let idx_exit = f.events.iter().position(|e| matches!(e, Event::ClosureExit)).unwrap();
        let idx_acq = f.events.iter().position(|e| matches!(e, Event::Acquire { .. })).unwrap();
        assert!(idx_enter < idx_acq && idx_acq < idx_exit);
    }

    #[test]
    fn guard_returning_helper_is_detected() {
        let fns = parse("fn lock_list(&self, v: u32) -> MutexGuard<'_, Vec<u32>> {\n    self.lists[v as usize].lock()\n}\n");
        assert!(find(&fns, "lock_list").returns_guard);
    }

    #[test]
    fn atomic_ops_with_orderings() {
        let fns = parse(
            "fn f(&self) {\n    self.edges.fetch_add(1, Ordering::AcqRel);\n    let n = self.edges.load(Ordering::Acquire);\n    let _ = self.stamps[i].compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire);\n}\n",
        );
        let f = find(&fns, "f");
        let ops: Vec<_> = f.events.iter().filter_map(|e| match e {
            Event::AtomicOp { field, method, orderings, discarded, .. } => {
                Some((field.clone(), method.clone(), orderings.clone(), *discarded))
            }
            _ => None,
        }).collect();
        assert_eq!(ops.len(), 3, "{ops:?}");
        assert_eq!(ops[0], ("edges".into(), "fetch_add".into(), vec!["AcqRel".into()], true));
        assert_eq!(ops[1], ("edges".into(), "load".into(), vec!["Acquire".into()], false));
        assert_eq!(ops[2].2, vec!["AcqRel".to_string(), "Acquire".to_string()]);
    }

    #[test]
    fn property_array_load_without_ordering_is_not_atomic() {
        let fns = parse("fn f(&self) { let v = values.load(src as usize); }\n");
        assert!(!find(&fns, "f").events.iter().any(|e| matches!(e, Event::AtomicOp { .. })));
    }

    #[test]
    fn drop_call_is_recorded() {
        let fns = parse("fn f(&self) { let g = self.m.lock(); drop(g); }\n");
        assert!(find(&fns, "f").events.iter().any(|e| matches!(e, Event::DropCall { name } if name == "g")));
    }

    #[test]
    fn let_borrow_and_for_loop_emit_aliases() {
        let fns = parse(
            "fn f(&self) {\n    let stamp = &self.stamps[i];\n    stamp.load(Ordering::Acquire);\n    for word in &self.words {\n        word.store(0, Ordering::Release);\n    }\n}\n",
        );
        let f = find(&fns, "f");
        let aliases: Vec<_> = f.events.iter().filter_map(|e| match e {
            Event::Alias { name, field } => Some((name.clone(), field.clone())),
            _ => None,
        }).collect();
        assert_eq!(
            aliases,
            vec![("stamp".into(), "stamps".into()), ("word".into(), "words".into())],
            "{:?}",
            f.events
        );
    }

    #[test]
    fn enumerate_tuple_pattern_aliases_element() {
        let fns = parse(
            "fn f(&self) {\n    for (i, b) in self.buckets.iter().enumerate() {\n        b.load(Ordering::Relaxed);\n    }\n}\n",
        );
        let f = find(&fns, "f");
        assert!(f.events.iter().any(|e| matches!(
            e,
            Event::Alias { name, field } if name == "b" && field == "buckets"
        )), "{:?}", f.events);
    }

    #[test]
    fn iterator_closure_carries_chain_root_and_param() {
        let fns = parse(
            "fn f(&self) -> u64 {\n    self.words.iter().map(|w| w.load(Ordering::Acquire)).sum()\n}\n",
        );
        let f = find(&fns, "f");
        let enter = f.events.iter().find_map(|e| match e {
            Event::ClosureEnter { chain_root, params, .. } => {
                Some((chain_root.clone(), params.clone()))
            }
            _ => None,
        });
        assert_eq!(enter, Some((Some("words".into()), vec!["w".into()])), "{:?}", f.events);
    }

    #[test]
    fn chain_root_skips_index_and_call_groups() {
        let fns = parse(
            "fn f(&self) {\n    self.slots[..len].iter().for_each(|s| { s.load(Ordering::Acquire); });\n}\n",
        );
        let f = find(&fns, "f");
        let enter = f.events.iter().find_map(|e| match e {
            Event::ClosureEnter { chain_root, params, .. } => {
                Some((chain_root.clone(), params.clone()))
            }
            _ => None,
        });
        assert_eq!(enter, Some((Some("slots".into()), vec!["s".into()])), "{:?}", f.events);
    }

    #[test]
    fn multi_param_closure_has_no_alias_params() {
        let fns = parse("fn f(&self) { xs.iter().fold(0, |acc, x| acc + x); }\n");
        let f = find(&fns, "f");
        let enter = f.events.iter().find_map(|e| match e {
            Event::ClosureEnter { params, .. } => Some(params.clone()),
            _ => None,
        });
        assert_eq!(enter, Some(vec!["acc".into(), "x".into()]));
    }

    #[test]
    fn trait_declarations_have_no_events() {
        let fns = parse("trait T {\n    fn for_each(&self, v: u32, f: &mut dyn FnMut(u32));\n}\n");
        let f = find(&fns, "for_each");
        assert!(f.events.is_empty());
        assert_eq!(f.callback_params, vec!["f"]);
        assert_eq!(f.qual_name, "T::for_each");
    }
}
