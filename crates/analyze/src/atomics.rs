//! Atomics-protocol audit: groups atomic operations by `file_stem.field`
//! and checks publish/consume pairing per group. Subsumes the old xtask
//! `Ordering::Relaxed` listing (now the informational section of the
//! analyze report).

use std::collections::BTreeMap;

use crate::model::{AtomicSite, Model};
use crate::report::Finding;

/// Audit output: gating findings plus the informational Relaxed listing.
#[derive(Debug, Default)]
pub struct AtomicsAudit {
    /// Pairing violations.
    pub findings: Vec<Finding>,
    /// Every operation that uses `Relaxed` (informational, not gating).
    pub relaxed_sites: Vec<String>,
}

/// Ordering strength facts for one site.
struct OpFacts {
    is_load: bool,
    is_store: bool,
    is_rmw: bool,
    acquire_side: bool,
    release_side: bool,
    /// Ordering is exactly `Release` — a deliberate publish, as opposed
    /// to a SeqCst store whose intent is total order rather than pairing.
    explicit_release: bool,
    relaxed: bool,
}

fn facts(op: &AtomicSite) -> OpFacts {
    let is_load = op.method == "load";
    let is_store = op.method == "store";
    let is_rmw = !is_load && !is_store;
    // For compare-exchange the success ordering (first) carries both
    // sides; the failure ordering is load-only and can stay weaker.
    let success = op.orderings.first().map(String::as_str).unwrap_or("Relaxed");
    let acquire_side = matches!(success, "Acquire" | "AcqRel" | "SeqCst");
    let release_side = matches!(success, "Release" | "AcqRel" | "SeqCst");
    let explicit_release = success == "Release";
    let relaxed = op.orderings.iter().any(|o| o == "Relaxed");
    OpFacts {
        is_load,
        is_store,
        is_rmw,
        acquire_side,
        release_side,
        explicit_release,
        relaxed,
    }
}

/// Runs the audit over every non-test function's atomic sites.
pub fn check(model: &Model) -> AtomicsAudit {
    let mut audit = AtomicsAudit::default();
    let mut groups: BTreeMap<String, Vec<(&AtomicSite, String)>> = BTreeMap::new();
    for f in &model.fns {
        for op in &f.atomics {
            groups
                .entry(op.group.clone())
                .or_default()
                .push((op, format!("{}:{}", f.file, op.line)));
            if op.orderings.iter().any(|o| o == "Relaxed") {
                audit.relaxed_sites.push(format!(
                    "{}:{} {}.{}({})",
                    f.file,
                    op.line,
                    op.group,
                    op.method,
                    op.orderings.join(", ")
                ));
            }
        }
    }

    for (group, ops) in &groups {
        let has_release_store = ops
            .iter()
            .any(|(o, _)| facts(o).is_store && facts(o).release_side);
        // Only *explicit* Release stores demand a pairing partner; a
        // SeqCst store is a total-order statement, and pairing it with
        // Relaxed fast-path loads is a legitimate pattern.
        let has_explicit_release_store = ops
            .iter()
            .any(|(o, _)| facts(o).is_store && facts(o).explicit_release);
        let has_acquire_load = ops
            .iter()
            .any(|(o, _)| facts(o).is_load && facts(o).acquire_side);
        let has_acquire_rmw = ops
            .iter()
            .any(|(o, _)| facts(o).is_rmw && facts(o).acquire_side);
        let has_release_rmw = ops
            .iter()
            .any(|(o, _)| facts(o).is_rmw && facts(o).release_side);
        let has_relaxed_store = ops
            .iter()
            .any(|(o, _)| facts(o).is_store && facts(o).relaxed);
        let any_read = ops
            .iter()
            .any(|(o, _)| facts(o).is_load || (facts(o).is_rmw && !o.discarded));

        let sites = |pred: &dyn Fn(&OpFacts) -> bool| -> String {
            ops.iter()
                .filter(|(o, _)| pred(&facts(o)))
                .map(|(_, s)| s.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        };

        // Release store with no acquire-side consumer anywhere: the
        // publish ordering buys nothing, or the consumer is missing.
        if has_explicit_release_store && !has_acquire_load && !has_acquire_rmw {
            audit.findings.push(Finding {
                key: format!("atomic:release-no-acquire:{group}"),
                message: format!(
                    "`{group}` has Release store(s) [{}] but no Acquire-side load or RMW pairs with them",
                    sites(&|f| f.is_store && f.explicit_release)
                ),
            });
        }
        // Acquire load with no release-side producer: the consume
        // ordering synchronizes with nothing in this group.
        if has_acquire_load && !has_release_store && !has_release_rmw {
            audit.findings.push(Finding {
                key: format!("atomic:acquire-no-release:{group}"),
                message: format!(
                    "`{group}` has Acquire load(s) [{}] but no Release-side store or RMW pairs with them",
                    sites(&|f| f.is_load && f.acquire_side)
                ),
            });
        }
        // Relaxed publish: a plain Relaxed store into a group whose
        // readers expect Acquire — the store should be Release (or the
        // loads weakened). Pure-Relaxed counter groups stay quiet.
        if has_relaxed_store && has_acquire_load {
            audit.findings.push(Finding {
                key: format!("atomic:relaxed-publish:{group}"),
                message: format!(
                    "`{group}` mixes Relaxed store(s) [{}] with Acquire load(s) [{}]; the publish side should be Release",
                    sites(&|f| f.is_store && f.relaxed),
                    sites(&|f| f.is_load && f.acquire_side)
                ),
            });
        }
        // Write-only atomic: every operation discards the old value and
        // nothing ever loads it — dead synchronization state.
        if !any_read && !ops.is_empty() {
            audit.findings.push(Finding {
                key: format!("atomic:write-only:{group}"),
                message: format!(
                    "`{group}` is written [{}] but never read — dead atomic or missing consumer",
                    ops.iter().map(|(_, s)| s.as_str()).collect::<Vec<_>>().join(", ")
                ),
            });
        }
    }
    audit.findings.sort_by(|a, b| a.key.cmp(&b.key));
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, SourceFile};

    fn audit_of(src: &str) -> AtomicsAudit {
        check(&Model::build(&[SourceFile::new("crates/x/src/cell.rs", src)]))
    }

    #[test]
    fn paired_release_acquire_is_clean() {
        let a = audit_of(
            "impl C {\n    fn w(&self) { self.head.store(1, Ordering::Release); }\n    fn r(&self) -> u64 { self.head.load(Ordering::Acquire) }\n}\n",
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn release_store_without_acquire_is_flagged() {
        let a = audit_of("impl C {\n    fn w(&self) { self.head.store(1, Ordering::Release); }\n}\n");
        assert!(a.findings.iter().any(|f| f.key == "atomic:release-no-acquire:cell.head"));
    }

    #[test]
    fn acquire_load_without_release_is_flagged() {
        let a = audit_of(
            "impl C {\n    fn r(&self) -> u64 { self.head.load(Ordering::Acquire) }\n    fn w(&self) { self.head.store(1, Ordering::Relaxed); }\n}\n",
        );
        assert!(a.findings.iter().any(|f| f.key == "atomic:acquire-no-release:cell.head"));
        assert!(a.findings.iter().any(|f| f.key == "atomic:relaxed-publish:cell.head"));
    }

    #[test]
    fn acqrel_rmw_satisfies_both_sides() {
        let a = audit_of(
            "impl C {\n    fn add(&self) { let old = self.words.fetch_or(1, Ordering::AcqRel); }\n    fn r(&self) -> u64 { self.words.load(Ordering::Acquire) }\n}\n",
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn pure_relaxed_counter_is_quiet_but_listed() {
        let a = audit_of(
            "impl C {\n    fn bump(&self) { let n = self.hits.fetch_add(1, Ordering::Relaxed); }\n    fn r(&self) -> u64 { self.hits.load(Ordering::Relaxed) }\n}\n",
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.relaxed_sites.len(), 2);
    }

    #[test]
    fn write_only_atomic_is_flagged() {
        let a = audit_of("impl C {\n    fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n}\n");
        assert!(a.findings.iter().any(|f| f.key == "atomic:write-only:cell.hits"));
    }

    #[test]
    fn seqcst_store_with_relaxed_loads_is_quiet() {
        // Control-plane writes at SeqCst, hot-path reads at Relaxed —
        // the probe/budget pattern. Not a pairing violation.
        let a = audit_of(
            "impl C {\n    fn set(&self) { self.budget.store(9, Ordering::SeqCst); }\n    fn hot(&self) -> u64 { self.budget.load(Ordering::Relaxed) }\n}\n",
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn compare_exchange_success_ordering_counts() {
        let a = audit_of(
            "impl C {\n    fn cas(&self) { let _ = self.stamp.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed); }\n    fn r(&self) -> u64 { self.stamp.load(Ordering::Acquire) }\n}\n",
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }
}
