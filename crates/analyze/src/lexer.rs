//! A total, span-tiling Rust lexer.
//!
//! "Total" means [`lex`] never fails: any input (including non-Rust text)
//! produces a token stream, with unrecognized characters emitted as
//! [`TokenKind::Unknown`]. "Span-tiling" means the token spans partition
//! the input exactly: non-overlapping, in-bounds, on `char` boundaries,
//! and concatenating the spanned slices reproduces the source byte for
//! byte (property-tested in `tests/proptest_lexer.rs`). Trivia
//! (whitespace and comments) is kept as tokens so the tiling holds; the
//! parser filters it out.
//!
//! Coverage is the subset of Rust the workspace uses: nested block
//! comments, string/raw-string/byte-string/char literals, lifetimes,
//! numbers with exponents and suffixes, identifiers (any alphabetic
//! start, so non-ASCII text degrades to ident tokens rather than
//! errors), and single-character punctuation.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace characters.
    Whitespace,
    /// `// ...` to end of line (newline not included).
    LineComment,
    /// `/* ... */`, nesting honored; unterminated runs to end of input.
    BlockComment,
    /// Identifier or keyword (`r#ident` raw identifiers included).
    Ident,
    /// `'lifetime` (including `'_`).
    Lifetime,
    /// Integer or float literal, suffixes included.
    Number,
    /// `"..."` / `b"..."` string literal with escapes.
    Str,
    /// `r"..."` / `r#"..."#` / `br#"..."#` raw string literal.
    RawStr,
    /// `'x'` character or byte literal.
    Char,
    /// A single punctuation character (`.`, `(`, `::` is two tokens, …).
    Punct,
    /// Any character the lexer has no rule for (totality fallback).
    Unknown,
}

/// One token: a [`TokenKind`] plus its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
}

impl Token {
    /// The token's text within `source` (the source it was lexed from).
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

/// True for characters that may continue an identifier.
fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// True for characters that may start an identifier.
fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

/// Lexes `source` into a token stream that tiles it exactly.
pub fn lex(source: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut cursor = Cursor {
        source,
        chars: source.char_indices().peekable(),
    };
    while let Some(token) = cursor.next_token() {
        tokens.push(token);
    }
    tokens
}

struct Cursor<'s> {
    source: &'s str,
    chars: std::iter::Peekable<std::str::CharIndices<'s>>,
}

impl Cursor<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    /// Byte offset the next character starts at (source length at EOF).
    fn pos(&mut self) -> usize {
        self.chars
            .peek()
            .map_or(self.source.len(), |&(i, _)| i)
    }

    fn bump(&mut self) -> Option<char> {
        self.chars.next().map(|(_, c)| c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }

    fn next_token(&mut self) -> Option<Token> {
        let start = self.pos();
        let first = self.bump()?;
        let kind = match first {
            c if c.is_whitespace() => {
                self.eat_while(char::is_whitespace);
                TokenKind::Whitespace
            }
            '/' => match self.peek() {
                Some('/') => {
                    self.eat_while(|c| c != '\n');
                    TokenKind::LineComment
                }
                Some('*') => {
                    self.bump();
                    self.block_comment();
                    TokenKind::BlockComment
                }
                _ => TokenKind::Punct,
            },
            '\'' => self.lifetime_or_char(),
            '"' => {
                self.string_body();
                TokenKind::Str
            }
            'r' | 'b' | 'c' => self.prefixed_or_ident(first, start),
            c if is_ident_start(c) => {
                self.eat_while(is_ident_continue);
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => {
                self.number_body();
                TokenKind::Number
            }
            c if c.is_ascii_punctuation() => TokenKind::Punct,
            _ => TokenKind::Unknown,
        };
        Some(Token {
            kind,
            start,
            end: self.pos(),
        })
    }

    /// Consumes a (possibly nested) block comment body after `/*`.
    fn block_comment(&mut self) {
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some('/') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some(_) => {}
                None => break, // unterminated: runs to EOF, still total
            }
        }
    }

    /// After a `'`: a lifetime (`'a`, `'_`) or a char literal (`'x'`,
    /// `'\n'`). A lone quote degrades to punctuation.
    fn lifetime_or_char(&mut self) -> TokenKind {
        match self.peek() {
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped character
                // Multi-char escapes (`\x41`, `\u{..}`) run to the quote.
                self.eat_while(|c| c != '\'' && c != '\n');
                if self.peek() == Some('\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char, `'a` (no closing quote after one ident
                // char) is a lifetime; `'static` is a lifetime.
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                    TokenKind::Char
                } else {
                    self.eat_while(is_ident_continue);
                    TokenKind::Lifetime
                }
            }
            Some(c) if c != '\'' && c != '\n' => {
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            _ => TokenKind::Punct,
        }
    }

    /// Consumes a string body after the opening `"` (escapes honored;
    /// unterminated runs to EOF).
    fn string_body(&mut self) {
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('"') | None => break,
                Some(_) => {}
            }
        }
    }

    /// After `r`/`b`/`c`: a raw string, a prefixed string (`b"…"`), a raw
    /// identifier (`r#ident`), or a plain identifier starting with that
    /// letter.
    fn prefixed_or_ident(&mut self, first: char, start: usize) -> TokenKind {
        // `br"` / `rb"` style two-letter prefixes.
        if (first == 'b' && self.peek() == Some('r'))
            && matches!(self.source[start..].chars().nth(2), Some('"' | '#'))
        {
            self.bump();
            return self.raw_string_or_ident();
        }
        match self.peek() {
            Some('"') => {
                self.bump();
                if first == 'r' {
                    // `r"…"`: no-hash raw string — no escape processing.
                    self.eat_while(|c| c != '"');
                    self.bump();
                    TokenKind::RawStr
                } else {
                    self.string_body();
                    TokenKind::Str
                }
            }
            Some('#') if first == 'r' => self.raw_string_or_ident(),
            Some('\'') if first == 'b' => {
                self.bump();
                self.lifetime_or_char();
                TokenKind::Char
            }
            _ => {
                self.eat_while(is_ident_continue);
                TokenKind::Ident
            }
        }
    }

    /// After the prefix letters of a raw string: `#…#"…"#…#` (or a raw
    /// identifier `r#ident`, which has no quote after the hashes).
    fn raw_string_or_ident(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        if self.peek() != Some('"') {
            // `r#ident` raw identifier (exactly one hash, then ident).
            self.eat_while(is_ident_continue);
            return TokenKind::Ident;
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return TokenKind::RawStr;
                    }
                }
                None => return TokenKind::RawStr, // unterminated: total anyway
                Some(_) => {}
            }
        }
    }

    /// Consumes a number body after its first digit: digits, `_`, type
    /// suffixes, `.` only when a digit follows (so `1..2` stays a range),
    /// and `e±`/`E±` exponents.
    fn number_body(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                    self.bump();
                    if (c == 'e' || c == 'E') && matches!(self.peek(), Some('+' | '-')) {
                        self.bump();
                    }
                }
                Some('.') => {
                    // A second `char_indices` clone peeks past the dot.
                    let mut ahead = self.chars.clone();
                    ahead.next();
                    if ahead.next().is_some_and(|(_, c)| c.is_ascii_digit()) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|t| t.kind)
            .collect()
    }

    fn tiles(src: &str) {
        let tokens = lex(src);
        let mut pos = 0;
        for t in &tokens {
            assert_eq!(t.start, pos, "gap or overlap at {pos} in {src:?}");
            assert!(t.end > t.start, "empty token in {src:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "trailing gap in {src:?}");
    }

    #[test]
    fn tiles_basic_rust() {
        for src in [
            "fn f(x: &str) -> usize { x.len() }",
            "let s = \"he\\\"llo\"; // done\n/* multi\nline */ let r = r#\"raw\"#;",
            "let c = 'x'; let l: &'static str = \"\"; let n = 1.5e-3_f64;",
            "g.lock().push(1..2); b\"bytes\"; r\"raw2\"; 'a: loop { break 'a; }",
            "/* nested /* deeper */ still */ ok",
            "unterminated \"string goes on",
        ] {
            tiles(src);
        }
    }

    #[test]
    fn classifies_lifetime_vs_char() {
        assert_eq!(kinds("'a"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'\\n'"), vec![TokenKind::Char]);
    }

    #[test]
    fn classifies_raw_strings_and_idents() {
        assert_eq!(kinds("r#\"x\"#"), vec![TokenKind::RawStr]);
        assert_eq!(kinds("r\"x\""), vec![TokenKind::RawStr]);
        assert_eq!(kinds("r#match"), vec![TokenKind::Ident]);
        assert_eq!(kinds("rust"), vec![TokenKind::Ident]);
        assert_eq!(kinds("b\"x\""), vec![TokenKind::Str]);
    }

    #[test]
    fn number_does_not_eat_range_dots() {
        let toks = kinds("0..batch.len()");
        assert_eq!(toks[0], TokenKind::Number);
        assert_eq!(toks[1], TokenKind::Punct); // first dot
    }

    #[test]
    fn totality_on_garbage() {
        tiles("\u{1F980} émoji 中文 \0 \x7f ~~@@``");
        tiles("");
        tiles("'");
    }
}
