//! Report assembly: findings, allowlist filtering, and the text artifact.

use std::collections::BTreeSet;

/// One analyzer finding with a stable allowlist key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable key (`lock-cycle:…`, `callback:…`, `atomic:<rule>:…`) the
    /// allowlist matches against.
    pub key: String,
    /// Human-readable description with file:line witnesses.
    pub message: String,
}

/// A parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Finding key this entry suppresses.
    pub key: String,
    /// Required one-line justification.
    pub justification: String,
    /// 1-based line in the allowlist file (for diagnostics).
    pub line: usize,
}

/// Parses an `analyze.allow` file: one `key # justification` per line,
/// blank lines and `#`-leading comment lines ignored. Entries without a
/// justification are themselves violations, so the list stays honest.
pub fn parse_allowlist(text: &str) -> (Vec<AllowEntry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once('#') {
            Some((key, why)) if !why.trim().is_empty() => entries.push(AllowEntry {
                key: key.trim().to_string(),
                justification: why.trim().to_string(),
                line: i + 1,
            }),
            _ => errors.push(format!(
                "analyze.allow:{}: entry `{line}` has no `# justification`",
                i + 1
            )),
        }
    }
    (entries, errors)
}

/// The final report after allowlist application.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by the allowlist — these gate CI.
    pub violations: Vec<Finding>,
    /// Findings suppressed by an allowlist entry (shown, not gating).
    pub allowed: Vec<(Finding, String)>,
    /// Allowlist entries that matched nothing — stale, and gating, so
    /// the list cannot rot.
    pub stale_allows: Vec<String>,
    /// Malformed allowlist lines (gating).
    pub allow_errors: Vec<String>,
    /// Informational `Relaxed` ordering sites.
    pub relaxed_sites: Vec<String>,
    /// Lock-order graph in DOT form (the CI artifact).
    pub dot: String,
    /// One-line stats (files, functions, classes, edges).
    pub stats: String,
}

impl Report {
    /// Splits raw findings into violations and allowed per the allowlist.
    pub fn apply_allowlist(&mut self, findings: Vec<Finding>, entries: &[AllowEntry]) {
        let mut used: BTreeSet<usize> = BTreeSet::new();
        for f in findings {
            match entries.iter().position(|e| e.key == f.key) {
                Some(i) => {
                    used.insert(i);
                    self.allowed.push((f, entries[i].justification.clone()));
                }
                None => self.violations.push(f),
            }
        }
        for (i, e) in entries.iter().enumerate() {
            if !used.contains(&i) {
                self.stale_allows.push(format!(
                    "analyze.allow:{}: `{}` matched no finding (stale entry)",
                    e.line, e.key
                ));
            }
        }
    }

    /// True when nothing gates.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty() && self.allow_errors.is_empty()
    }

    /// Renders the text report (stdout and the CI artifact file).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("saga-analyze report — {}\n\n", self.stats));
        if self.violations.is_empty() {
            out.push_str("VIOLATIONS: none\n");
        } else {
            out.push_str(&format!("VIOLATIONS ({}):\n", self.violations.len()));
            for f in &self.violations {
                out.push_str(&format!("  [{}]\n    {}\n", f.key, f.message));
            }
        }
        for e in self.allow_errors.iter().chain(self.stale_allows.iter()) {
            out.push_str(&format!("  ALLOWLIST ERROR: {e}\n"));
        }
        if !self.allowed.is_empty() {
            out.push_str(&format!("\nallowed ({}):\n", self.allowed.len()));
            for (f, why) in &self.allowed {
                out.push_str(&format!("  [{}] — {why}\n", f.key));
            }
        }
        out.push_str(&format!("\nrelaxed-ordering sites ({}):\n", self.relaxed_sites.len()));
        for s in &self.relaxed_sites {
            out.push_str(&format!("  {s}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_rejects_missing_justification() {
        let (entries, errors) = parse_allowlist(
            "# comment\n\nlock-cycle:a.x,b.y # intentional, index-ordered\natomic:write-only:c.z\n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, "lock-cycle:a.x,b.y");
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn stale_entries_and_matches_are_tracked() {
        let (entries, _) = parse_allowlist("k1 # fine\nk2 # stale\n");
        let mut r = Report::default();
        r.apply_allowlist(
            vec![Finding { key: "k1".into(), message: "m".into() }],
            &entries,
        );
        assert!(r.violations.is_empty());
        assert_eq!(r.allowed.len(), 1);
        assert_eq!(r.stale_allows.len(), 1);
        assert!(!r.clean());
    }

    #[test]
    fn unallowed_finding_is_a_violation() {
        let mut r = Report::default();
        r.apply_allowlist(
            vec![Finding { key: "k".into(), message: "m".into() }],
            &[],
        );
        assert_eq!(r.violations.len(), 1);
        assert!(!r.clean());
        assert!(r.render().contains("VIOLATIONS (1)"));
    }
}
