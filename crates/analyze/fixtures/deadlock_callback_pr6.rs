//! Seeded violation: the PR-6 AC chunk-lock self-deadlock, pre-fix shape.
//!
//! PR 6's direction-optimizing BFS summed scout degrees *inside* the
//! neighbor-scan callback. `for_each_out_neighbor` holds the chunk lock
//! across the callback, and `out_degree` re-acquires the same chunk lock
//! (`v % chunks` ownership means the callback's vertex can hash to the
//! chunk already held) — a self-deadlock with non-reentrant locks. The
//! shipped fix collects the frontier first and queries degrees after the
//! scan (see `callback_clean_postfix.rs` for that shape).
//!
//! This file is analyzed in isolation and must produce exactly:
//~ EXPECT: callback:deadlock_callback_pr6.hybrid_step:deadlock_callback_pr6.chunks

use parking_lot::Mutex;

/// Chunk-locked adjacency lists: vertex `v` lives in chunk `v % chunks`.
pub struct ChunkedLists {
    chunks: Vec<Mutex<Vec<Vec<u32>>>>,
}

impl ChunkedLists {
    /// Out-degree of `v`: locks the owning chunk.
    pub fn out_degree(&self, v: u32) -> usize {
        let chunk = self.chunks[v as usize % self.chunks.len()].lock();
        chunk[v as usize / self.chunks.len()].len()
    }

    /// Invokes `f` for every out-neighbor of `v` — while holding the
    /// owning chunk's lock (the provider side of the bug).
    pub fn for_each_out_neighbor(&self, v: u32, f: &mut dyn FnMut(u32)) {
        let chunk = self.chunks[v as usize % self.chunks.len()].lock();
        for &dst in chunk[v as usize / self.chunks.len()].iter() {
            f(dst);
        }
    }
}

/// The pre-fix BFS step: sums scout degrees inside the neighbor scan,
/// so `out_degree` runs under the chunk lock the scan already holds.
pub fn hybrid_step(g: &ChunkedLists, frontier: &[u32]) -> usize {
    let mut scout = 0usize;
    for &u in frontier {
        g.for_each_out_neighbor(u, &mut |v| {
            scout += g.out_degree(v);
        });
    }
    scout
}
