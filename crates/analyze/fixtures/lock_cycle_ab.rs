//! Seeded violation: a classic AB/BA lock-order cycle between two
//! mutexes — thread one runs `transfer`, thread two runs `audit`, each
//! holds its first lock while waiting for the other's.
//~ EXPECT: lock-cycle:lock_cycle_ab.accounts,lock_cycle_ab.journal

use parking_lot::Mutex;

/// Two independently locked pieces of state.
pub struct Ledger {
    accounts: Mutex<Vec<i64>>,
    journal: Mutex<Vec<String>>,
}

impl Ledger {
    /// Locks `accounts` then `journal`.
    pub fn transfer(&self, from: usize, to: usize, amount: i64) {
        let mut accounts = self.accounts.lock();
        accounts[from] -= amount;
        accounts[to] += amount;
        let mut journal = self.journal.lock();
        journal.push(format!("{from}->{to}: {amount}"));
    }

    /// Locks `journal` then `accounts` — the opposite order.
    pub fn audit(&self) -> usize {
        let journal = self.journal.lock();
        let accounts = self.accounts.lock();
        journal.len() + accounts.len()
    }
}
