//! Seeded violation: an atomic that is only ever written (discarded
//! RMWs), never read — dead synchronization state, or a consumer that
//! was never wired up.
//~ EXPECT: atomic:write-only:write_only.retries

use std::sync::atomic::{AtomicU64, Ordering};

/// A retry counter nothing reads.
pub struct Stats {
    retries: AtomicU64,
}

impl Stats {
    /// Bumps the counter and discards the old value; no load anywhere.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }
}
