//! Seeded violation: a Relaxed store into a group whose readers load
//! Acquire. The happy path publishes with Release, but the reset path
//! stores Relaxed — readers that synchronize on the Acquire load can
//! miss the writes the reset was supposed to order.
//~ EXPECT: atomic:relaxed-publish:relaxed_publish.snapshot

use std::sync::atomic::{AtomicUsize, Ordering};

/// Pointer-sized snapshot index readers consume with Acquire.
pub struct SnapshotCell {
    snapshot: AtomicUsize,
}

impl SnapshotCell {
    /// Correct publish path.
    pub fn publish(&self, idx: usize) {
        self.snapshot.store(idx, Ordering::Release);
    }

    /// The bug: the reset path skips the Release ordering.
    pub fn reset(&self) {
        self.snapshot.store(0, Ordering::Relaxed);
    }

    /// Consumer pairs with `publish` — and silently not with `reset`.
    pub fn current(&self) -> usize {
        self.snapshot.load(Ordering::Acquire)
    }
}
