//! Seeded violation: same-class nested acquisition. Per-vertex locks
//! taken for both endpoints of an edge without index ordering: when two
//! threads insert (a,b) and (b,a), each holds one vertex lock while
//! waiting for the other — and `src == dst` self-loops deadlock alone.
//~ EXPECT: lock-cycle:self_nest.lists

use parking_lot::Mutex;

/// Per-vertex adjacency lists, one mutex per vertex.
pub struct SharedLists {
    lists: Vec<Mutex<Vec<u32>>>,
}

impl SharedLists {
    /// Inserts an undirected edge by holding both endpoint locks at once,
    /// in argument order rather than index order.
    pub fn insert_undirected(&self, src: u32, dst: u32) {
        let mut fwd = self.lists[src as usize].lock();
        let mut bwd = self.lists[dst as usize].lock();
        fwd.push(dst);
        bwd.push(src);
    }
}
