//! Seeded violation: an Acquire load with no Release-side producer in
//! the group — the counter is only ever bumped Relaxed, so the Acquire
//! ordering synchronizes with nothing (and suggests a missing Release).
//~ EXPECT: atomic:acquire-no-release:acquire_no_release.epoch

use std::sync::atomic::{AtomicU64, Ordering};

/// An epoch counter consumers treat as a publication marker.
pub struct Epoch {
    epoch: AtomicU64,
}

impl Epoch {
    /// Producer bumps the epoch Relaxed…
    pub fn bump(&self) -> u64 {
        let prev = self.epoch.fetch_add(1, Ordering::Relaxed);
        prev
    }

    /// …while the consumer expects Acquire semantics from it.
    pub fn wait_for(&self, target: u64) -> bool {
        self.epoch.load(Ordering::Acquire) >= target
    }
}
