//! Seeded violation: the PR-6 shape routed through a guard-returning
//! helper — the provider acquires via `lock_list` (which returns a
//! `MutexGuard`), so the analyzer must credit the acquisition to the
//! caller to see that the lock is held across the callback.
//~ EXPECT: callback:guard_helper.collect_degrees:guard_helper.lists

use parking_lot::{Mutex, MutexGuard};

/// Per-vertex lists behind a locking helper.
pub struct SharedLists {
    lists: Vec<Mutex<Vec<u32>>>,
}

impl SharedLists {
    /// Guard-returning helper: the acquisition happens here, the guard
    /// lives at the caller.
    fn lock_list(&self, v: u32) -> MutexGuard<'_, Vec<u32>> {
        self.lists[v as usize].lock()
    }

    /// Degree via the helper.
    pub fn degree(&self, v: u32) -> usize {
        let list = self.lock_list(v);
        list.len()
    }

    /// Provider: holds the helper-acquired guard across the callback.
    pub fn for_each(&self, v: u32, f: &mut dyn FnMut(u32)) {
        let list = self.lock_list(v);
        for &dst in list.iter() {
            f(dst);
        }
    }
}

/// Re-enters `degree` (which re-acquires `lists`) from inside the scan.
pub fn collect_degrees(g: &SharedLists, v: u32) -> usize {
    let mut total = 0usize;
    g.for_each(v, &mut |dst| {
        total += g.degree(dst);
    });
    total
}
