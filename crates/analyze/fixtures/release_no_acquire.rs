//! Seeded violation: a Release publish whose consumers all load Relaxed
//! — the release fence synchronizes with nothing, so readers can observe
//! the new index before the data it guards.
//~ EXPECT: atomic:release-no-acquire:release_no_acquire.head

use std::sync::atomic::{AtomicUsize, Ordering};

/// Single-producer ring: `head` publishes how far the buffer is valid.
pub struct Ring {
    head: AtomicUsize,
}

impl Ring {
    /// Producer: publishes the new head with Release…
    pub fn publish(&self, new_head: usize) {
        self.head.store(new_head, Ordering::Release);
    }

    /// …but the consumer reads it Relaxed, so the pairing is broken.
    pub fn readable(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }
}
