//! Clean counterpart of `deadlock_callback_pr6.rs`: the shipped PR-6
//! fix. The callback only collects the frontier into a scratch vector;
//! degree queries run *after* the scan, when no chunk lock is held.
//! Must analyze clean.
//~ CLEAN

use parking_lot::Mutex;

/// Chunk-locked adjacency lists: vertex `v` lives in chunk `v % chunks`.
pub struct ChunkedLists {
    chunks: Vec<Mutex<Vec<Vec<u32>>>>,
}

impl ChunkedLists {
    /// Out-degree of `v`: locks the owning chunk.
    pub fn out_degree(&self, v: u32) -> usize {
        let chunk = self.chunks[v as usize % self.chunks.len()].lock();
        chunk[v as usize / self.chunks.len()].len()
    }

    /// Invokes `f` for every out-neighbor of `v` — while holding the
    /// owning chunk's lock.
    pub fn for_each_out_neighbor(&self, v: u32, f: &mut dyn FnMut(u32)) {
        let chunk = self.chunks[v as usize % self.chunks.len()].lock();
        for &dst in chunk[v as usize / self.chunks.len()].iter() {
            f(dst);
        }
    }
}

/// The post-fix BFS step: two-phase collect-then-query, so no topology
/// call re-enters the chunk lock held by the scan.
pub fn hybrid_step(g: &ChunkedLists, frontier: &[u32]) -> usize {
    let mut discovered = Vec::new();
    for &u in frontier {
        g.for_each_out_neighbor(u, &mut |v| {
            discovered.push(v);
        });
    }
    let mut scout = 0usize;
    for &v in &discovered {
        scout += g.out_degree(v);
    }
    scout
}
