//! Clean fixture: consistent lock order, scoped guards, paired atomics.
//! Exercises every check's negative path — must analyze clean.
//~ CLEAN

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// State with a documented alpha-before-beta lock order and a properly
/// paired publish counter.
pub struct Engine {
    alpha: Mutex<Vec<u32>>,
    beta: Mutex<Vec<u32>>,
    published: AtomicUsize,
}

impl Engine {
    /// Same order everywhere: alpha, then beta.
    pub fn ingest(&self, v: u32) {
        let mut alpha = self.alpha.lock();
        alpha.push(v);
        let mut beta = self.beta.lock();
        beta.push(v);
    }

    /// Scoped re-use: the alpha guard dies before beta is taken again.
    pub fn rebalance(&self) {
        {
            let mut alpha = self.alpha.lock();
            alpha.sort();
        }
        let mut beta = self.beta.lock();
        beta.dedup();
    }

    /// Release publish…
    pub fn publish(&self, n: usize) {
        self.published.store(n, Ordering::Release);
    }

    /// …paired with an Acquire consumer, plus a Relaxed stats read that
    /// is fine alongside the pairing.
    pub fn published(&self) -> usize {
        self.published.load(Ordering::Acquire)
    }

    /// Relaxed fast-path peek (informational listing only).
    pub fn published_hint(&self) -> usize {
        self.published.load(Ordering::Relaxed)
    }
}
