//! Loader for SNAP-style edge-list text files.
//!
//! The paper's real datasets come from the SNAP collection (§IV-C), which
//! cannot be redistributed here — but the loader can: point it at any SNAP
//! `.txt` edge list (`# comment` lines, whitespace-separated
//! `src dst [weight]` rows) and it produces the same [`EdgeStream`] the
//! synthetic profiles do, with vertex ids densely remapped, deterministic
//! weights derived for unweighted edges, and the §IV-B shuffle applied.
//!
//! ```no_run
//! use saga_stream::loader::load_snap_text;
//!
//! let stream = load_snap_text("soc-LiveJournal1.txt", true, 42)?;
//! println!("{} vertices, {} edges", stream.num_nodes, stream.edges.len());
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::batching::shuffle_edges;
use crate::{edge_weight, Edge, EdgeOp, EdgeStream, Node};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// One parsed line of an edge-list file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawEdge {
    /// Source id as it appears in the file.
    pub src: u64,
    /// Destination id as it appears in the file.
    pub dst: u64,
    /// Optional explicit weight.
    pub weight: Option<f32>,
    /// Operation: `Insert` for plain rows, `Delete` for rows with a
    /// `-`/`d` op column or a fused `-src` first token.
    pub op: EdgeOp,
}

/// Parses one line of a SNAP edge list. Returns `None` for comments and
/// blank lines; malformed lines — including rows whose weight column is
/// not a number — yield `None` too (SNAP files occasionally carry
/// headers).
///
/// Rows may carry a leading op column (`+`/`a`/`i` insert, `-`/`d`
/// delete, case-insensitive) or fuse the sign onto the source id
/// (`-12 34` deletes edge 12→34); plain `src dst [weight]` rows are
/// insertions.
///
/// # Examples
///
/// ```
/// use saga_stream::loader::parse_edge_line;
/// use saga_stream::EdgeOp;
///
/// assert_eq!(parse_edge_line("# FromNodeId ToNodeId"), None);
/// let e = parse_edge_line("12\t34").unwrap();
/// assert_eq!((e.src, e.dst, e.weight, e.op), (12, 34, None, EdgeOp::Insert));
/// let w = parse_edge_line("1 2 0.5").unwrap();
/// assert_eq!(w.weight, Some(0.5));
/// let d = parse_edge_line("- 12 34").unwrap();
/// assert_eq!((d.src, d.dst, d.op), (12, 34, EdgeOp::Delete));
/// assert_eq!(parse_edge_line("-12 34").unwrap().op, EdgeOp::Delete);
/// // A non-numeric weight column rejects the whole line rather than
/// // silently keeping the edge unweighted.
/// assert_eq!(parse_edge_line("1 2 abc"), None);
/// ```
pub fn parse_edge_line(line: &str) -> Option<RawEdge> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
        return None;
    }
    let mut parts = line.split_whitespace();
    let mut first = parts.next()?;
    let op = match first {
        "+" | "a" | "A" | "i" | "I" => {
            first = parts.next()?;
            EdgeOp::Insert
        }
        "-" | "d" | "D" => {
            first = parts.next()?;
            EdgeOp::Delete
        }
        _ => match first.strip_prefix(['+', '-']) {
            Some(rest) => {
                let op = if first.starts_with('-') { EdgeOp::Delete } else { EdgeOp::Insert };
                first = rest;
                op
            }
            None => EdgeOp::Insert,
        },
    };
    let src: u64 = first.parse().ok()?;
    let dst: u64 = parts.next()?.parse().ok()?;
    let weight: Option<f32> = match parts.next() {
        Some(tok) => Some(tok.parse().ok()?),
        None => None,
    };
    Some(RawEdge { src, dst, weight, op })
}

/// Renders one edge as a canonical edge-list line: deletes carry a
/// leading `-` op column, inserts none, and the weight is always explicit
/// (shortest round-tripping float form) so re-parsing never has to
/// re-derive it. [`parse_edge_line`] accepts every line this produces.
///
/// # Examples
///
/// ```
/// use saga_stream::loader::{parse_edge_line, render_edge_line};
/// use saga_stream::{Edge, EdgeOp};
///
/// let line = render_edge_line(&Edge::new(1, 2, 2.5), EdgeOp::Delete);
/// assert_eq!(line, "- 1 2 2.5");
/// let raw = parse_edge_line(&line).unwrap();
/// assert_eq!((raw.src, raw.dst, raw.weight, raw.op), (1, 2, Some(2.5), EdgeOp::Delete));
/// ```
pub fn render_edge_line(edge: &Edge, op: EdgeOp) -> String {
    match op {
        EdgeOp::Insert => format!("{} {} {}", edge.src, edge.dst, edge.weight),
        EdgeOp::Delete => format!("- {} {} {}", edge.src, edge.dst, edge.weight),
    }
}

/// Serializes an edge list to the canonical text form read back by
/// [`read_edge_list_with`]: one [`render_edge_line`] row per edge, ops
/// taken from `ops` (empty means insert-only). Because vertex ids are
/// emitted as-is and re-reading remaps by first appearance, a serialized
/// dense stream round-trips to identical edges, ops, and node count.
///
/// # Panics
///
/// Panics if `ops` is neither empty nor parallel to `edges`.
pub fn serialize_edge_list(edges: &[Edge], ops: &[EdgeOp]) -> String {
    assert!(
        ops.is_empty() || ops.len() == edges.len(),
        "ops must be empty or carry one op per edge"
    );
    let mut out = String::new();
    for (i, edge) in edges.iter().enumerate() {
        let op = ops.get(i).copied().unwrap_or(EdgeOp::Insert);
        out.push_str(&render_edge_line(edge, op));
        out.push('\n');
    }
    out
}

/// Reads an edge list from any reader, densely remapping vertex ids in
/// first-appearance order. Unweighted edges get deterministic
/// direction-sensitive weights; see [`read_edge_list_with`] for undirected
/// inputs. The returned op vector is empty when every row is an insertion.
pub fn read_edge_list<R: Read>(reader: R) -> std::io::Result<(Vec<Edge>, Vec<EdgeOp>, usize)> {
    read_edge_list_with(reader, true)
}

/// [`read_edge_list`] with explicit directedness: undirected inputs weigh
/// both orientations of a pair identically.
pub fn read_edge_list_with<R: Read>(
    reader: R,
    directed: bool,
) -> std::io::Result<(Vec<Edge>, Vec<EdgeOp>, usize)> {
    let mut remap: HashMap<u64, Node> = HashMap::new();
    let mut edges = Vec::new();
    let mut ops = Vec::new();
    let mut any_delete = false;
    let buf = BufReader::new(reader);
    for line in buf.lines() {
        let line = line?;
        let Some(raw) = parse_edge_line(&line) else {
            continue;
        };
        let next_src = remap.len() as Node;
        let src = *remap.entry(raw.src).or_insert(next_src);
        let next_dst = remap.len() as Node;
        let dst = *remap.entry(raw.dst).or_insert(next_dst);
        let weight = raw
            .weight
            .unwrap_or_else(|| edge_weight(src, dst, directed));
        edges.push(Edge::new(src, dst, weight));
        ops.push(raw.op);
        any_delete |= raw.op == EdgeOp::Delete;
    }
    if !any_delete {
        ops.clear(); // normalized form: empty ops ⇒ insert-only stream
    }
    Ok((edges, ops, remap.len()))
}

/// Loads a SNAP text edge list into an [`EdgeStream`], batched at the
/// paper's ratio (one batch per ~500K paper-edges worth, at least 10
/// batches). Insert-only files are shuffled with `seed` (§IV-B); files
/// carrying an op column keep their order, since shuffling could move a
/// delete ahead of the insert it targets.
///
/// # Errors
///
/// Returns any I/O error from opening or reading the file.
pub fn load_snap_text<P: AsRef<Path>>(
    path: P,
    directed: bool,
    seed: u64,
) -> std::io::Result<EdgeStream> {
    let file = std::fs::File::open(&path)?;
    let (mut edges, ops, num_nodes) = read_edge_list_with(file, directed)?;
    if ops.is_empty() {
        shuffle_edges(&mut edges, seed);
    }
    let name = path
        .as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snap".to_string());
    let suggested_batch_size = (edges.len() / 10).clamp(1, 500_000);
    Ok(EdgeStream {
        name,
        num_nodes,
        directed,
        edges,
        ops,
        boundaries: Vec::new(),
        suggested_batch_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weight_for;

    const SAMPLE: &str = "\
# Directed graph (each unordered pair of nodes is saved once)
# FromNodeId\tToNodeId
100\t200
100\t300
200\t100

300\t400\t2.5
not a line
";

    #[test]
    fn parses_comments_blanks_and_weights() {
        assert_eq!(parse_edge_line(""), None);
        assert_eq!(parse_edge_line("# x"), None);
        assert_eq!(parse_edge_line("% matrix-market style"), None);
        assert_eq!(parse_edge_line("abc def"), None);
        let e = parse_edge_line("  7   9  ").unwrap();
        assert_eq!((e.src, e.dst), (7, 9));
    }

    #[test]
    fn non_numeric_weight_rejects_the_line() {
        assert_eq!(parse_edge_line("1 2 abc"), None);
        assert_eq!(parse_edge_line("1 2 1.5e"), None);
        // A parseable weight still goes through.
        assert_eq!(parse_edge_line("1 2 1.5").unwrap().weight, Some(1.5));
    }

    #[test]
    fn op_columns_parse_in_every_spelling() {
        for (line, op) in [
            ("+ 1 2", EdgeOp::Insert),
            ("a 1 2", EdgeOp::Insert),
            ("I 1 2", EdgeOp::Insert),
            ("- 1 2", EdgeOp::Delete),
            ("d 1 2", EdgeOp::Delete),
            ("D 1 2 3.5", EdgeOp::Delete),
            ("+1 2", EdgeOp::Insert),
            ("-1 2", EdgeOp::Delete),
        ] {
            let e = parse_edge_line(line).unwrap_or_else(|| panic!("{line:?}"));
            assert_eq!((e.src, e.dst), (1, 2), "{line:?}");
            assert_eq!(e.op, op, "{line:?}");
        }
        // A bare op token with nothing after it is malformed.
        assert_eq!(parse_edge_line("-"), None);
        assert_eq!(parse_edge_line("- 1"), None);
    }

    #[test]
    fn op_streams_keep_file_order_and_carry_ops() {
        let sample = "1 2\n2 3\n- 1 2\n";
        let (edges, ops, n) = read_edge_list(sample.as_bytes()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(ops, vec![EdgeOp::Insert, EdgeOp::Insert, EdgeOp::Delete]);
        // The delete row targets the same remapped endpoints as its insert.
        assert_eq!((edges[2].src, edges[2].dst), (edges[0].src, edges[0].dst));

        let dir = std::env::temp_dir().join("saga-loader-ops-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("churn.txt");
        std::fs::write(&path, sample).unwrap();
        let stream = load_snap_text(&path, true, 9).unwrap();
        assert!(stream.has_deletions());
        // No shuffle for op streams: order is exactly the file order.
        assert_eq!(stream.edges, edges);
        assert_eq!(stream.ops, ops);
    }

    #[test]
    fn dense_remap_preserves_structure() {
        let (edges, ops, n) = read_edge_list(SAMPLE.as_bytes()).unwrap();
        assert_eq!(n, 4, "ids 100, 200, 300, 400");
        assert_eq!(edges.len(), 4);
        assert!(ops.is_empty(), "insert-only input normalizes to empty ops");
        // 100 -> 0, 200 -> 1, 300 -> 2, 400 -> 3 (first-appearance order).
        assert_eq!((edges[0].src, edges[0].dst), (0, 1));
        assert_eq!((edges[1].src, edges[1].dst), (0, 2));
        assert_eq!((edges[2].src, edges[2].dst), (1, 0));
        assert_eq!((edges[3].src, edges[3].dst), (2, 3));
        assert_eq!(edges[3].weight, 2.5, "explicit weight kept");
        // Unweighted edges get the deterministic pair weight.
        assert_eq!(edges[0].weight, weight_for(0, 1));
    }

    #[test]
    fn load_snap_text_roundtrip() {
        let dir = std::env::temp_dir().join("saga-loader-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, SAMPLE).unwrap();
        let stream = load_snap_text(&path, true, 1).unwrap();
        assert_eq!(stream.name, "tiny");
        assert_eq!(stream.num_nodes, 4);
        assert_eq!(stream.edges.len(), 4);
        assert!(stream.directed);
        // Same seed, same shuffle.
        let again = load_snap_text(&path, true, 1).map(|s| s.edges).unwrap();
        assert_eq!(stream.edges, again);
    }
}
