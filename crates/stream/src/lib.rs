//! Edge-stream generation, batching, and batch statistics.
//!
//! Streaming graph analytics consumes a stream of edges in fixed-size
//! batches (500K edges in the paper, §IV-B). This crate provides:
//!
//! - [`profiles`] — seeded synthetic stand-ins for the paper's five
//!   datasets (Table II), preserving each dataset's directedness,
//!   edge/vertex ratio, and — crucially — its per-batch degree-distribution
//!   tail (Table IV).
//! - [`rmat`] — the R-MAT generator with the paper's parameters.
//! - [`zipf`] — the power-law endpoint samplers behind the profiles.
//! - [`batching`] — seeded shuffling (the paper randomizes input order) and
//!   batch iteration.
//! - [`loader`] — SNAP-format edge-list files, for running the suite on
//!   the paper's real datasets when available.
//! - [`batch_stats`] — per-batch max in/out degree and the short- vs
//!   heavy-tailed classification of §V-B.

#![warn(missing_docs)]

pub mod batch_stats;
pub mod batching;
pub mod loader;
pub mod profiles;
pub mod rmat;
pub mod zipf;

pub use saga_graph::{Edge, Node, Weight};

use saga_utils::hash::hash_edge;

/// Deterministic weight for an edge, as a pure function of its endpoints.
///
/// Streams may carry the same `(src, dst)` pair many times (duplicates are
/// ingested once, §III-A); deriving the weight from the pair guarantees
/// every occurrence agrees, so the surviving topology is identical across
/// data structures regardless of which concurrent insert wins.
///
/// Weights are quantized into `[1.0, 8.875]`.
///
/// # Examples
///
/// ```
/// use saga_stream::weight_for;
///
/// assert_eq!(weight_for(3, 5), weight_for(3, 5));
/// assert!(weight_for(3, 5) >= 1.0);
/// ```
pub fn weight_for(src: Node, dst: Node) -> Weight {
    1.0 + (hash_edge(src, dst) % 64) as Weight / 8.0
}

/// Deterministic weight for an edge of a graph with the given
/// directedness. Undirected graphs must weigh `(a, b)` and `(b, a)`
/// identically — otherwise, when a stream carries both orientations,
/// whichever concurrent insert wins would decide the surviving weight —
/// so the pair is canonicalized first.
///
/// # Examples
///
/// ```
/// use saga_stream::edge_weight;
///
/// assert_eq!(edge_weight(5, 3, false), edge_weight(3, 5, false));
/// ```
pub fn edge_weight(src: Node, dst: Node, directed: bool) -> Weight {
    if directed || src <= dst {
        weight_for(src, dst)
    } else {
        weight_for(dst, src)
    }
}

/// Operation carried by one stream edge: mixed insert/delete streams are
/// an **extension** beyond the paper's v1 benchmark (footnote 1), which
/// streams insertions only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EdgeOp {
    /// Insert the edge (the paper's only operation).
    #[default]
    Insert,
    /// Delete the edge (weights are ignored when matching).
    Delete,
}

/// A generated edge stream plus the metadata the driver needs.
#[derive(Debug, Clone)]
pub struct EdgeStream {
    /// Dataset name (paper naming: LJ, Orkut, RMAT, Wiki, Talk).
    pub name: String,
    /// Vertex-id universe `0..num_nodes`.
    pub num_nodes: usize,
    /// Whether edges are directed (all paper datasets except Orkut).
    pub directed: bool,
    /// The shuffled stream, in arrival order.
    pub edges: Vec<Edge>,
    /// Per-edge operations. Empty means the whole stream is insertions
    /// (the paper's v1 model); otherwise one op per edge.
    pub ops: Vec<EdgeOp>,
    /// Explicit batch end-offsets into `edges` (strictly increasing, last
    /// one `edges.len()`). Empty means uniform fixed-size batching. Churn
    /// transforms such as [`EdgeStream::into_sliding_window`] use this to
    /// keep each insert batch aligned with its matching eviction batch.
    pub boundaries: Vec<usize>,
    /// Batch size giving this dataset its intended batch count.
    pub suggested_batch_size: usize,
}

impl EdgeStream {
    /// Iterates the stream in batches of `batch_size` edges (the final
    /// batch may be short). Ignores per-edge ops and explicit boundaries —
    /// use [`EdgeStream::op_batches`] for deletion-aware consumption.
    pub fn batches(&self, batch_size: usize) -> batching::BatchIter<'_> {
        batching::BatchIter::new(&self.edges, batch_size)
    }

    /// Iterates the stream as op-aware [`batching::StreamBatch`]es. When
    /// the stream carries explicit [`boundaries`](Self::boundaries) they
    /// define the batches and `batch_size` is ignored; otherwise edges are
    /// chunked uniformly exactly like [`EdgeStream::batches`].
    ///
    /// # Panics
    ///
    /// Panics if `ops` is non-empty but not edge-aligned, or if
    /// `boundaries` is not strictly increasing and ending at `edges.len()`.
    pub fn op_batches(&self, batch_size: usize) -> batching::OpBatchIter<'_> {
        assert!(
            self.ops.is_empty() || self.ops.len() == self.edges.len(),
            "ops must be empty or carry one op per edge"
        );
        batching::OpBatchIter::new(&self.edges, &self.ops, &self.boundaries, batch_size)
    }

    /// Whether any edge in the stream is a deletion.
    pub fn has_deletions(&self) -> bool {
        self.ops.contains(&EdgeOp::Delete)
    }

    /// Number of batches at the suggested batch size.
    pub fn suggested_batch_count(&self) -> usize {
        if self.boundaries.is_empty() {
            self.edges.len().div_ceil(self.suggested_batch_size.max(1))
        } else {
            self.boundaries.len()
        }
    }

    /// Turns an insert-only stream into a sliding-window churn stream:
    /// batch `i` carries the original batch `i`'s insertions plus, once
    /// the window is full (`i >= window_batches`), deletions of the edges
    /// that arrived `window_batches` batches ago. Batch alignment is
    /// recorded in [`boundaries`](Self::boundaries), so mixed batches of
    /// unequal length stay aligned with their evictions.
    ///
    /// Within one batch the driver applies insertions before deletions,
    /// which matches the window semantics: an arriving batch is ingested,
    /// then the expired batch is evicted.
    ///
    /// # Panics
    ///
    /// Panics if the stream already carries ops, or if `window_batches`
    /// or `batch_size` is zero.
    #[must_use]
    pub fn into_sliding_window(self, window_batches: usize, batch_size: usize) -> EdgeStream {
        assert!(self.ops.is_empty(), "stream already carries ops");
        assert!(window_batches > 0, "window must be at least one batch");
        assert!(batch_size > 0, "batch size must be positive");
        let base: Vec<&[Edge]> = self.batches(batch_size).collect();
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        let mut ops = Vec::with_capacity(self.edges.len() * 2);
        let mut boundaries = Vec::with_capacity(base.len());
        for (i, batch) in base.iter().enumerate() {
            edges.extend_from_slice(batch);
            ops.extend(std::iter::repeat_n(EdgeOp::Insert, batch.len()));
            if i >= window_batches {
                let expired = base[i - window_batches];
                edges.extend_from_slice(expired);
                ops.extend(std::iter::repeat_n(EdgeOp::Delete, expired.len()));
            }
            boundaries.push(edges.len());
        }
        EdgeStream {
            name: self.name,
            num_nodes: self.num_nodes,
            directed: self.directed,
            edges,
            ops,
            boundaries,
            suggested_batch_size: batch_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_deterministic_and_in_range() {
        for s in 0..50u32 {
            for d in 0..50u32 {
                let w = weight_for(s, d);
                assert!((1.0..=8.875).contains(&w));
                assert_eq!(w, weight_for(s, d));
            }
        }
    }

    #[test]
    fn weights_vary_across_pairs() {
        use std::collections::HashSet;
        let distinct: HashSet<u32> = (0..100u32)
            .map(|i| weight_for(i, i + 1).to_bits())
            .collect();
        assert!(distinct.len() > 10, "weights should spread across the range");
    }

    #[test]
    fn stream_batches_cover_all_edges() {
        let stream = EdgeStream {
            name: "test".into(),
            num_nodes: 10,
            directed: true,
            edges: (0..25).map(|i| Edge::new(i % 10, (i + 1) % 10, 1.0)).collect(),
            ops: Vec::new(),
            boundaries: Vec::new(),
            suggested_batch_size: 10,
        };
        let sizes: Vec<usize> = stream.batches(10).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
        assert_eq!(stream.suggested_batch_count(), 3);
    }

    fn toy_stream(n: usize) -> EdgeStream {
        EdgeStream {
            name: "toy".into(),
            num_nodes: 10,
            directed: true,
            edges: (0..n).map(|i| Edge::new((i % 10) as Node, ((i + 1) % 10) as Node, 1.0)).collect(),
            ops: Vec::new(),
            boundaries: Vec::new(),
            suggested_batch_size: 4,
        }
    }

    #[test]
    fn op_batches_match_plain_batches_for_insert_only_streams() {
        let stream = toy_stream(11);
        let plain: Vec<&[Edge]> = stream.batches(4).collect();
        let op: Vec<_> = stream.op_batches(4).collect();
        assert_eq!(plain.len(), op.len());
        for (p, o) in plain.iter().zip(op.iter()) {
            assert_eq!(*p, o.edges);
            assert!(o.ops.is_empty());
            let (ins, del) = o.split();
            assert_eq!(ins.as_ref(), *p);
            assert!(del.is_empty());
        }
        assert!(!stream.has_deletions());
    }

    #[test]
    fn sliding_window_evicts_each_batch_after_the_window_fills() {
        let stream = toy_stream(12).into_sliding_window(2, 4);
        assert!(stream.has_deletions());
        assert_eq!(stream.suggested_batch_count(), 3);
        let batches: Vec<_> = stream.op_batches(0).collect();
        assert_eq!(batches.len(), 3);
        // Batches 0 and 1 are pure inserts; batch 2 inserts its 4 edges and
        // evicts batch 0's.
        for b in &batches[..2] {
            let (ins, del) = b.split();
            assert_eq!(ins.len(), 4);
            assert!(del.is_empty());
        }
        let (ins, del) = batches[2].split();
        assert_eq!(ins.len(), 4);
        assert_eq!(del.len(), 4);
        assert_eq!(del.as_ref(), batches[0].edges);
    }

    #[test]
    fn explicit_boundaries_override_uniform_chunking() {
        let mut stream = toy_stream(10);
        stream.boundaries = vec![3, 10];
        let sizes: Vec<usize> = stream.op_batches(4).map(|b| b.edges.len()).collect();
        assert_eq!(sizes, vec![3, 7]);
        assert_eq!(stream.suggested_batch_count(), 2);
    }
}
