//! Edge-stream generation, batching, and batch statistics.
//!
//! Streaming graph analytics consumes a stream of edges in fixed-size
//! batches (500K edges in the paper, §IV-B). This crate provides:
//!
//! - [`profiles`] — seeded synthetic stand-ins for the paper's five
//!   datasets (Table II), preserving each dataset's directedness,
//!   edge/vertex ratio, and — crucially — its per-batch degree-distribution
//!   tail (Table IV).
//! - [`rmat`] — the R-MAT generator with the paper's parameters.
//! - [`zipf`] — the power-law endpoint samplers behind the profiles.
//! - [`batching`] — seeded shuffling (the paper randomizes input order) and
//!   batch iteration.
//! - [`loader`] — SNAP-format edge-list files, for running the suite on
//!   the paper's real datasets when available.
//! - [`batch_stats`] — per-batch max in/out degree and the short- vs
//!   heavy-tailed classification of §V-B.

#![warn(missing_docs)]

pub mod batch_stats;
pub mod batching;
pub mod loader;
pub mod profiles;
pub mod rmat;
pub mod zipf;

pub use saga_graph::{Edge, Node, Weight};

use saga_utils::hash::hash_edge;

/// Deterministic weight for an edge, as a pure function of its endpoints.
///
/// Streams may carry the same `(src, dst)` pair many times (duplicates are
/// ingested once, §III-A); deriving the weight from the pair guarantees
/// every occurrence agrees, so the surviving topology is identical across
/// data structures regardless of which concurrent insert wins.
///
/// Weights are quantized into `[1.0, 8.875]`.
///
/// # Examples
///
/// ```
/// use saga_stream::weight_for;
///
/// assert_eq!(weight_for(3, 5), weight_for(3, 5));
/// assert!(weight_for(3, 5) >= 1.0);
/// ```
pub fn weight_for(src: Node, dst: Node) -> Weight {
    1.0 + (hash_edge(src, dst) % 64) as Weight / 8.0
}

/// Deterministic weight for an edge of a graph with the given
/// directedness. Undirected graphs must weigh `(a, b)` and `(b, a)`
/// identically — otherwise, when a stream carries both orientations,
/// whichever concurrent insert wins would decide the surviving weight —
/// so the pair is canonicalized first.
///
/// # Examples
///
/// ```
/// use saga_stream::edge_weight;
///
/// assert_eq!(edge_weight(5, 3, false), edge_weight(3, 5, false));
/// ```
pub fn edge_weight(src: Node, dst: Node, directed: bool) -> Weight {
    if directed || src <= dst {
        weight_for(src, dst)
    } else {
        weight_for(dst, src)
    }
}

/// A generated edge stream plus the metadata the driver needs.
#[derive(Debug, Clone)]
pub struct EdgeStream {
    /// Dataset name (paper naming: LJ, Orkut, RMAT, Wiki, Talk).
    pub name: String,
    /// Vertex-id universe `0..num_nodes`.
    pub num_nodes: usize,
    /// Whether edges are directed (all paper datasets except Orkut).
    pub directed: bool,
    /// The shuffled stream, in arrival order.
    pub edges: Vec<Edge>,
    /// Batch size giving this dataset its intended batch count.
    pub suggested_batch_size: usize,
}

impl EdgeStream {
    /// Iterates the stream in batches of `batch_size` edges (the final
    /// batch may be short).
    pub fn batches(&self, batch_size: usize) -> batching::BatchIter<'_> {
        batching::BatchIter::new(&self.edges, batch_size)
    }

    /// Number of batches at the suggested batch size.
    pub fn suggested_batch_count(&self) -> usize {
        self.edges.len().div_ceil(self.suggested_batch_size.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_deterministic_and_in_range() {
        for s in 0..50u32 {
            for d in 0..50u32 {
                let w = weight_for(s, d);
                assert!((1.0..=8.875).contains(&w));
                assert_eq!(w, weight_for(s, d));
            }
        }
    }

    #[test]
    fn weights_vary_across_pairs() {
        use std::collections::HashSet;
        let distinct: HashSet<u32> = (0..100u32)
            .map(|i| weight_for(i, i + 1).to_bits())
            .collect();
        assert!(distinct.len() > 10, "weights should spread across the range");
    }

    #[test]
    fn stream_batches_cover_all_edges() {
        let stream = EdgeStream {
            name: "test".into(),
            num_nodes: 10,
            directed: true,
            edges: (0..25).map(|i| Edge::new(i % 10, (i + 1) % 10, 1.0)).collect(),
            suggested_batch_size: 10,
        };
        let sizes: Vec<usize> = stream.batches(10).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
        assert_eq!(stream.suggested_batch_count(), 3);
    }
}
