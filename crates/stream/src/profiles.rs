//! Synthetic stand-ins for the paper's datasets (Table II / Table IV).
//!
//! The paper evaluates on four SNAP graphs (LiveJournal, Orkut,
//! wiki-topcats, wiki-Talk) and one synthetic RMAT graph. The SNAP files
//! are not redistributable here, so each profile generates a seeded
//! synthetic stream that preserves what the paper shows actually matters:
//!
//! - **directedness** (all directed except Orkut, §IV-C),
//! - the **edge/vertex ratio** of Table II,
//! - the **per-batch degree-distribution tail** of Table IV: LJ, Orkut and
//!   RMAT are *short-tailed* (per-batch max degree ~10–150 at 500K-edge
//!   batches), while Wiki has an extreme in-degree hub (4174 updates of one
//!   vertex per batch) and Talk an extreme out-degree hub (9957).
//!
//! Default sizes are laptop-scale (~1/30 of the paper); per-batch hub
//! *fractions* for Wiki/Talk are raised above the paper's exact values
//! (in-hub 12% for Wiki, out-hub 15% for Talk) because the update
//! contention that drives the paper's AS-vs-DAH flip scales with
//! `(hub edges per batch) x (hub degree)` — quadratically in stream size —
//! and would vanish at laptop scale with the paper's exact 0.8-2%
//! fractions (see DESIGN.md, *Substitutions*, and the `tail_sweep`
//! ablation, which sweeps the hub mass and locates the crossover).
//! [`DatasetProfile::with_paper_tails`] switches to the paper's exact hub
//! fractions for full-scale runs.

use crate::batching::shuffle_edges;
use crate::rmat::Rmat;
use crate::zipf::EndpointDist;
use crate::{edge_weight, Edge, EdgeOp, EdgeStream};
use rand_xoshiro::rand_core::{RngCore, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;

/// Statistics of the *paper's* dataset (Table II), kept for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperStats {
    /// Vertex count reported in Table II.
    pub vertices: u64,
    /// Edge count reported in Table II.
    pub edges: u64,
    /// Batch count at 500K-edge batches reported in Table II.
    pub batch_count: u64,
}

/// How a profile draws edges.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ProfileKind {
    /// R-MAT with the paper's parameters.
    Rmat,
    /// Independent power-law endpoints with optional hub mass.
    PowerLaw {
        out_exponent: f64,
        in_exponent: f64,
        /// Fraction of edges whose source is the out-hub vertex.
        out_hub: f64,
        /// Fraction of edges whose destination is the in-hub vertex.
        in_hub: f64,
    },
}

/// A generator profile for one of the paper's five datasets.
///
/// # Examples
///
/// ```
/// use saga_stream::profiles::DatasetProfile;
///
/// let wiki = DatasetProfile::wiki().scaled(2_000, 20_000);
/// let stream = wiki.generate(42);
/// assert_eq!(stream.edges.len(), 20_000);
/// assert!(stream.directed);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    name: &'static str,
    paper: PaperStats,
    num_nodes: usize,
    num_edges: usize,
    directed: bool,
    kind: ProfileKind,
    batch_count_target: usize,
    churn: f64,
}

impl DatasetProfile {
    /// LiveJournal-like: directed social network, short-tailed batches.
    pub fn livejournal() -> Self {
        Self {
            name: "LJ",
            paper: PaperStats {
                vertices: 4_847_571,
                edges: 68_993_773,
                batch_count: 138,
            },
            num_nodes: 50_000,
            num_edges: 700_000,
            directed: true,
            kind: ProfileKind::PowerLaw {
                out_exponent: 0.5,
                in_exponent: 0.5,
                out_hub: 0.0,
                in_hub: 0.0,
            },
            batch_count_target: 35,
            churn: 0.0,
        }
    }

    /// Orkut-like: the one undirected dataset, short-tailed batches.
    pub fn orkut() -> Self {
        Self {
            name: "Orkut",
            paper: PaperStats {
                vertices: 3_072_441,
                edges: 117_185_083,
                batch_count: 235,
            },
            num_nodes: 26_000,
            num_edges: 990_000,
            directed: false,
            kind: ProfileKind::PowerLaw {
                out_exponent: 0.5,
                in_exponent: 0.5,
                out_hub: 0.0,
                in_hub: 0.0,
            },
            batch_count_target: 40,
            churn: 0.0,
        }
    }

    /// The paper's synthetic RMAT dataset (its largest graph).
    pub fn rmat() -> Self {
        Self {
            name: "RMAT",
            paper: PaperStats {
                vertices: 32_118_308,
                edges: 500_000_000,
                batch_count: 1000,
            },
            num_nodes: 130_000,
            num_edges: 2_000_000,
            directed: true,
            kind: ProfileKind::Rmat,
            batch_count_target: 50,
            churn: 0.0,
        }
    }

    /// wiki-topcats-like: directed hyperlink graph with an extreme
    /// **in-degree** hub in every batch (Table IV: max in-degree 4174 per
    /// 500K batch vs 70 out).
    pub fn wiki() -> Self {
        Self {
            name: "Wiki",
            paper: PaperStats {
                vertices: 1_791_489,
                edges: 28_511_807,
                batch_count: 58,
            },
            num_nodes: 16_000,
            num_edges: 250_000,
            directed: true,
            kind: ProfileKind::PowerLaw {
                out_exponent: 0.5,
                in_exponent: 0.5,
                out_hub: 0.0,
                in_hub: 0.12,
            },
            batch_count_target: 15,
            churn: 0.0,
        }
    }

    /// wiki-Talk-like: directed communication graph with an extreme
    /// **out-degree** hub in every batch (Table IV: max out-degree 9957 per
    /// 500K batch vs 330 in).
    pub fn talk() -> Self {
        Self {
            name: "Talk",
            paper: PaperStats {
                vertices: 2_394_385,
                edges: 5_021_410,
                batch_count: 11,
            },
            num_nodes: 43_000,
            num_edges: 90_000,
            directed: true,
            kind: ProfileKind::PowerLaw {
                out_exponent: 0.5,
                in_exponent: 0.5,
                out_hub: 0.15,
                in_hub: 0.003,
            },
            batch_count_target: 11,
            churn: 0.0,
        }
    }

    /// All five profiles in the paper's order (Table II).
    pub fn all() -> Vec<DatasetProfile> {
        vec![
            Self::livejournal(),
            Self::orkut(),
            Self::rmat(),
            Self::wiki(),
            Self::talk(),
        ]
    }

    /// The short-tailed profiles (the paper's *STail* group, §VI).
    pub fn short_tailed() -> Vec<DatasetProfile> {
        vec![Self::livejournal(), Self::orkut(), Self::rmat()]
    }

    /// The heavy-tailed profiles (the paper's *HTail* group, §VI).
    pub fn heavy_tailed() -> Vec<DatasetProfile> {
        vec![Self::wiki(), Self::talk()]
    }

    /// Dataset name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The paper's full-scale statistics for this dataset (Table II).
    pub fn paper_stats(&self) -> PaperStats {
        self.paper
    }

    /// Vertex count of the generated stream.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Edge count of the generated stream.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the stream is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether the profile injects hub mass (Wiki/Talk).
    pub fn is_heavy_tailed(&self) -> bool {
        matches!(
            self.kind,
            ProfileKind::PowerLaw { out_hub, in_hub, .. } if out_hub > 0.005 || in_hub > 0.005
        )
    }

    /// Returns a copy resized to `num_nodes` / `num_edges` (for tests and
    /// scale sweeps). Batch-count target is preserved.
    #[must_use]
    pub fn scaled(mut self, num_nodes: usize, num_edges: usize) -> Self {
        assert!(num_nodes > 0 && num_edges > 0, "scaled sizes must be positive");
        self.num_nodes = num_nodes;
        self.num_edges = num_edges;
        self
    }

    /// Multiplies nodes and edges by `factor` (for `--scale` sweeps).
    #[must_use]
    pub fn scaled_by(self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let nodes = ((self.num_nodes as f64 * factor) as usize).max(16);
        let edges = ((self.num_edges as f64 * factor) as usize).max(16);
        self.scaled(nodes, edges)
    }

    /// Overrides the number of batches the stream should be consumed in.
    #[must_use]
    pub fn with_batch_target(mut self, batches: usize) -> Self {
        assert!(batches > 0, "batch target must be positive");
        self.batch_count_target = batches;
        self
    }

    /// Switches Wiki/Talk to the paper's *exact* per-batch hub fractions
    /// (4174/500K and 9957/500K) instead of the contrast-preserving
    /// defaults. Use for full-scale runs.
    #[must_use]
    pub fn with_paper_tails(mut self) -> Self {
        if let ProfileKind::PowerLaw {
            out_hub, in_hub, ..
        } = &mut self.kind
        {
            if *in_hub > 0.005 {
                *in_hub = 4174.0 / 500_000.0; // wiki-topcats' exact in-tail
            } else if *in_hub > 0.0 {
                *in_hub = 330.0 / 500_000.0; // wiki-Talk's exact in-tail
            }
            if *out_hub > 0.005 {
                *out_hub = 9957.0 / 500_000.0; // wiki-Talk's exact out-tail
            }
        }
        self
    }

    /// Interleaves deletions into the generated stream: after every
    /// insertion, with probability `fraction` a previously inserted edge
    /// (uniform over the live set) is deleted. The stream grows by
    /// roughly `fraction * num_edges` deletion records; batch boundaries
    /// stay uniform, so most batches mix both ops. A deletion may target
    /// an edge whose earlier insert was a duplicate — those count as
    /// `missing` in `DeleteStats`, like real churn feeds.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0.0, 1.0)`.
    #[must_use]
    pub fn with_churn(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "churn fraction must be in [0.0, 1.0)"
        );
        self.churn = fraction;
        self
    }

    /// Batch size that yields the profile's target batch count.
    pub fn suggested_batch_size(&self) -> usize {
        let total = (self.num_edges as f64 * (1.0 + self.churn)) as usize;
        (total / self.batch_count_target).max(1)
    }

    /// Generates the stream: sample edges, derive deterministic weights,
    /// and shuffle (§IV-B). With [`DatasetProfile::with_churn`] the
    /// shuffled insert stream is then threaded with deletions of
    /// previously arrived edges.
    pub fn generate(&self, seed: u64) -> EdgeStream {
        let mut edges = match self.kind {
            ProfileKind::Rmat => Rmat::paper(self.num_nodes).generate(self.num_edges, seed),
            ProfileKind::PowerLaw {
                out_exponent,
                in_exponent,
                out_hub,
                in_hub,
            } => {
                let out_dist =
                    EndpointDist::zipf(self.num_nodes, out_exponent, out_hub, seed ^ 0xA5A5);
                let in_dist =
                    EndpointDist::zipf(self.num_nodes, in_exponent, in_hub, seed ^ 0x5A5A);
                let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
                (0..self.num_edges)
                    .map(|_| {
                        let src = out_dist.sample(&mut rng);
                        let dst = in_dist.sample(&mut rng);
                        Edge::new(src, dst, edge_weight(src, dst, self.directed))
                    })
                    .collect()
            }
        };
        shuffle_edges(&mut edges, seed.wrapping_add(1));
        let (edges, ops) = if self.churn > 0.0 {
            self.thread_churn(edges, seed.wrapping_add(2))
        } else {
            (edges, Vec::new())
        };
        EdgeStream {
            name: self.name.to_string(),
            num_nodes: self.num_nodes,
            directed: self.directed,
            edges,
            ops,
            boundaries: Vec::new(),
            suggested_batch_size: self.suggested_batch_size(),
        }
    }

    /// Weaves seeded deletions of live edges into a shuffled insert
    /// stream (see [`DatasetProfile::with_churn`]).
    fn thread_churn(&self, inserts: Vec<Edge>, seed: u64) -> (Vec<Edge>, Vec<EdgeOp>) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let threshold = (self.churn * u64::MAX as f64) as u64;
        let mut edges = Vec::with_capacity(inserts.len() * 2);
        let mut ops = Vec::with_capacity(inserts.len() * 2);
        let mut live: Vec<Edge> = Vec::with_capacity(inserts.len());
        for edge in inserts {
            edges.push(edge);
            ops.push(EdgeOp::Insert);
            live.push(edge);
            if rng.next_u64() <= threshold && !live.is_empty() {
                let victim = live.swap_remove((rng.next_u64() % live.len() as u64) as usize);
                edges.push(victim);
                ops.push(EdgeOp::Delete);
            }
        }
        (edges, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch_stats::degree_stats;

    #[test]
    fn all_profiles_generate_their_advertised_sizes() {
        for profile in DatasetProfile::all() {
            let p = profile.clone().scaled(2_000, 10_000);
            let stream = p.generate(1);
            assert_eq!(stream.edges.len(), 10_000, "{}", p.name());
            assert_eq!(stream.num_nodes, 2_000);
            assert_eq!(stream.directed, p.is_directed());
            assert!(stream
                .edges
                .iter()
                .all(|e| (e.src as usize) < 2_000 && (e.dst as usize) < 2_000));
        }
    }

    #[test]
    fn only_orkut_is_undirected() {
        let flags: Vec<bool> = DatasetProfile::all()
            .iter()
            .map(|p| p.is_directed())
            .collect();
        assert_eq!(flags, vec![true, false, true, true, true]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = DatasetProfile::wiki().scaled(1_000, 5_000);
        assert_eq!(p.generate(3).edges, p.generate(3).edges);
        assert_ne!(p.generate(3).edges, p.generate(4).edges);
    }

    #[test]
    fn wiki_batches_have_an_in_degree_hub() {
        let p = DatasetProfile::wiki().scaled(4_000, 40_000);
        let stream = p.generate(7);
        let batch: Vec<Edge> = stream.edges[..10_000].to_vec();
        let stats = degree_stats(&batch, stream.num_nodes);
        // 3% in-hub mass -> ~300 updates of one vertex per 10K batch.
        assert!(stats.max_in > 200, "wiki max in {}", stats.max_in);
        assert!(stats.max_in > 4 * stats.max_out, "in {} out {}", stats.max_in, stats.max_out);
    }

    #[test]
    fn talk_batches_have_an_out_degree_hub() {
        let p = DatasetProfile::talk().scaled(4_000, 40_000);
        let stream = p.generate(7);
        let batch: Vec<Edge> = stream.edges[..10_000].to_vec();
        let stats = degree_stats(&batch, stream.num_nodes);
        assert!(stats.max_out > 350, "talk max out {}", stats.max_out);
        assert!(stats.max_out > 4 * stats.max_in, "out {} in {}", stats.max_out, stats.max_in);
    }

    #[test]
    fn livejournal_batches_are_short_tailed() {
        let p = DatasetProfile::livejournal().scaled(10_000, 40_000);
        let stream = p.generate(7);
        let batch: Vec<Edge> = stream.edges[..10_000].to_vec();
        let stats = degree_stats(&batch, stream.num_nodes);
        assert!(stats.max_in < 120, "lj max in {}", stats.max_in);
        assert!(stats.max_out < 120, "lj max out {}", stats.max_out);
    }

    #[test]
    fn heavy_tail_classification_matches_groups() {
        assert!(!DatasetProfile::livejournal().is_heavy_tailed());
        assert!(!DatasetProfile::orkut().is_heavy_tailed());
        assert!(!DatasetProfile::rmat().is_heavy_tailed());
        assert!(DatasetProfile::wiki().is_heavy_tailed());
        assert!(DatasetProfile::talk().is_heavy_tailed());
    }

    #[test]
    fn paper_tails_reduce_default_hub_mass() {
        let wiki = DatasetProfile::wiki().with_paper_tails();
        match wiki.kind {
            ProfileKind::PowerLaw { in_hub, .. } => {
                assert!((in_hub - 4174.0 / 500_000.0).abs() < 1e-12);
            }
            _ => panic!("wiki should be power-law"),
        }
    }

    #[test]
    fn suggested_batch_size_hits_target_count() {
        let p = DatasetProfile::talk().scaled(1_000, 11_000);
        let stream = p.generate(1);
        assert_eq!(stream.suggested_batch_count(), 11);
    }

    #[test]
    fn churn_threads_deletions_of_previously_inserted_edges() {
        let p = DatasetProfile::livejournal().scaled(500, 5_000).with_churn(0.3);
        let stream = p.generate(11);
        assert!(stream.has_deletions());
        assert_eq!(stream.ops.len(), stream.edges.len());
        let deletes = stream.ops.iter().filter(|o| **o == EdgeOp::Delete).count();
        let inserts = stream.ops.len() - deletes;
        assert_eq!(inserts, 5_000, "churn adds deletes, never drops inserts");
        let expected = (0.3 * 5_000.0) as usize;
        assert!(
            deletes.abs_diff(expected) < expected / 2,
            "expected ~{expected} deletes, got {deletes}"
        );
        // Every delete targets an edge inserted earlier in the stream and
        // not already deleted since.
        use std::collections::HashMap;
        let mut live: HashMap<(u32, u32), usize> = HashMap::new();
        for (edge, op) in stream.edges.iter().zip(&stream.ops) {
            let key = (edge.src, edge.dst);
            match op {
                EdgeOp::Insert => *live.entry(key).or_insert(0) += 1,
                EdgeOp::Delete => {
                    let count = live.get_mut(&key).expect("delete of never-inserted edge");
                    *count = count.checked_sub(1).expect("delete exceeded inserts");
                }
            }
        }
        // Determinism.
        assert_eq!(p.generate(11).edges, stream.edges);
        assert_eq!(p.generate(11).ops, stream.ops);
    }

    #[test]
    fn churn_keeps_the_batch_count_target() {
        let p = DatasetProfile::talk().scaled(1_000, 11_000).with_churn(0.25);
        let stream = p.generate(5);
        let batches = stream.suggested_batch_count();
        assert!(
            (10..=13).contains(&batches),
            "target 11 batches, got {batches}"
        );
    }
}
