//! R-MAT recursive-matrix graph generator (Chakrabarti et al., SDM 2004).
//!
//! The paper's fifth dataset is a synthetic RMAT graph with parameters
//! `a = 0.55, b = 0.15, c = 0.15, d = 0.25` (§IV-C); this module implements
//! the generator itself, so the RMAT rows of every table and figure are
//! produced by exactly the paper's workload.

use rand::Rng;
use rand_xoshiro::rand_core::SeedableRng;
use rand_xoshiro::Xoshiro256PlusPlus;

use crate::{weight_for, Edge, Node};

/// R-MAT generator configuration.
///
/// # Examples
///
/// ```
/// use saga_stream::rmat::Rmat;
///
/// let edges = Rmat::paper(1 << 10).generate(5_000, 42);
/// assert_eq!(edges.len(), 5_000);
/// assert!(edges.iter().all(|e| (e.src as usize) < (1 << 10)));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Rmat {
    num_nodes: usize,
    a: f64,
    b: f64,
    c: f64,
    /// `d` is implied: `1 - a - b - c`.
    levels: u32,
}

impl Rmat {
    /// Creates a generator over `num_nodes` vertices (rounded up to a power
    /// of two internally; emitted ids are clamped into range by rejection).
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero or the probabilities are invalid.
    pub fn new(num_nodes: usize, a: f64, b: f64, c: f64) -> Self {
        assert!(num_nodes > 0, "rmat needs at least one vertex");
        assert!(a > 0.0 && b >= 0.0 && c >= 0.0, "invalid rmat quadrant probabilities");
        assert!(a + b + c < 1.0 + 1e-9, "rmat quadrant probabilities exceed 1");
        let levels = (num_nodes.next_power_of_two()).trailing_zeros().max(1);
        Self {
            num_nodes,
            a,
            b,
            c,
            levels,
        }
    }

    /// The paper's parameters: `a=0.55, b=0.15, c=0.15, d=0.25`.
    pub fn paper(num_nodes: usize) -> Self {
        Self::new(num_nodes, 0.55, 0.15, 0.15)
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Samples one edge by recursive quadrant descent.
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> (Node, Node) {
        loop {
            let mut src = 0usize;
            let mut dst = 0usize;
            for _ in 0..self.levels {
                src <<= 1;
                dst <<= 1;
                let r: f64 = rng.gen();
                if r < self.a {
                    // top-left
                } else if r < self.a + self.b {
                    dst |= 1;
                } else if r < self.a + self.b + self.c {
                    src |= 1;
                } else {
                    src |= 1;
                    dst |= 1;
                }
            }
            if src < self.num_nodes && dst < self.num_nodes {
                return (src as Node, dst as Node);
            }
            // Rejected: the padded power-of-two grid overshot the vertex
            // count; resample.
        }
    }

    /// Generates `num_edges` edges with deterministic per-pair weights.
    pub fn generate(&self, num_edges: usize, seed: u64) -> Vec<Edge> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..num_edges)
            .map(|_| {
                let (src, dst) = self.sample(&mut rng);
                Edge::new(src, dst, weight_for(src, dst))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_in_range() {
        let g = Rmat::paper(1000); // non-power-of-two: exercises rejection
        let edges = g.generate(20_000, 1);
        assert_eq!(edges.len(), 20_000);
        assert!(edges.iter().all(|e| (e.src as usize) < 1000 && (e.dst as usize) < 1000));
    }

    #[test]
    fn is_deterministic_per_seed() {
        let g = Rmat::paper(1 << 12);
        assert_eq!(g.generate(1000, 7), g.generate(1000, 7));
        assert_ne!(g.generate(1000, 7), g.generate(1000, 8));
    }

    #[test]
    fn paper_parameters_skew_toward_low_ids() {
        let g = Rmat::paper(1 << 14);
        let edges = g.generate(50_000, 3);
        let low_half = edges
            .iter()
            .filter(|e| (e.src as usize) < (1 << 13))
            .count();
        // a + b = 0.70 of the mass goes to the low-src half.
        let frac = low_half as f64 / edges.len() as f64;
        assert!((0.65..0.75).contains(&frac), "low-src fraction {frac}");
    }

    #[test]
    fn duplicate_pairs_carry_identical_weights() {
        let g = Rmat::paper(64); // tiny id space forces duplicate pairs
        let edges = g.generate(10_000, 9);
        use std::collections::HashMap;
        let mut seen: HashMap<(Node, Node), f32> = HashMap::new();
        for e in &edges {
            let w = seen.entry((e.src, e.dst)).or_insert(e.weight);
            assert_eq!(*w, e.weight, "weight must be a function of (src, dst)");
        }
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn zero_nodes_panics() {
        let _ = Rmat::paper(0);
    }
}
