//! R-MAT recursive-matrix graph generator (Chakrabarti et al., SDM 2004).
//!
//! The paper's fifth dataset is a synthetic RMAT graph with parameters
//! `a = 0.55, b = 0.15, c = 0.15, d = 0.25` (§IV-C); this module implements
//! the generator itself, so the RMAT rows of every table and figure are
//! produced by exactly the paper's workload.

use rand::Rng;
use rand_xoshiro::rand_core::SeedableRng;
use rand_xoshiro::Xoshiro256PlusPlus;

use crate::{weight_for, Edge, Node};

/// R-MAT generator configuration.
///
/// # Examples
///
/// ```
/// use saga_stream::rmat::Rmat;
///
/// let edges = Rmat::paper(1 << 10).generate(5_000, 42);
/// assert_eq!(edges.len(), 5_000);
/// assert!(edges.iter().all(|e| (e.src as usize) < (1 << 10)));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Rmat {
    num_nodes: usize,
    a: f64,
    b: f64,
    c: f64,
    /// `d` is implied: `1 - a - b - c`.
    levels: u32,
}

impl Rmat {
    /// Creates a generator over `num_nodes` vertices (rounded up to a power
    /// of two internally; emitted ids are clamped into range by rejection).
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero or the probabilities are invalid.
    pub fn new(num_nodes: usize, a: f64, b: f64, c: f64) -> Self {
        assert!(num_nodes > 0, "rmat needs at least one vertex");
        assert!(a > 0.0 && b >= 0.0 && c >= 0.0, "invalid rmat quadrant probabilities");
        assert!(a + b + c < 1.0 + 1e-9, "rmat quadrant probabilities exceed 1");
        let levels = (num_nodes.next_power_of_two()).trailing_zeros().max(1);
        Self {
            num_nodes,
            a,
            b,
            c,
            levels,
        }
    }

    /// The paper's parameters: `a=0.55, b=0.15, c=0.15, d=0.25`.
    pub fn paper(num_nodes: usize) -> Self {
        Self::new(num_nodes, 0.55, 0.15, 0.15)
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Samples one edge by recursive quadrant descent.
    fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> (Node, Node) {
        loop {
            let mut src = 0usize;
            let mut dst = 0usize;
            for _ in 0..self.levels {
                src <<= 1;
                dst <<= 1;
                let r: f64 = rng.gen();
                if r < self.a {
                    // top-left
                } else if r < self.a + self.b {
                    dst |= 1;
                } else if r < self.a + self.b + self.c {
                    src |= 1;
                } else {
                    src |= 1;
                    dst |= 1;
                }
            }
            if src < self.num_nodes && dst < self.num_nodes {
                return (src as Node, dst as Node);
            }
            // Rejected: the padded power-of-two grid overshot the vertex
            // count; resample.
        }
    }

    /// Generates `num_edges` edges with deterministic per-pair weights.
    pub fn generate(&self, num_edges: usize, seed: u64) -> Vec<Edge> {
        let mut out = Vec::with_capacity(num_edges);
        self.generate_into(num_edges, seed, &mut out);
        out
    }

    /// Appends `num_edges` edges to `out` without allocating an
    /// intermediate vector — the chunked entry point for callers that
    /// stream generation through a reusable batch buffer instead of
    /// materializing the whole edge list. Produces exactly the edges
    /// [`generate`](Self::generate) would for the same `seed`.
    pub fn generate_into(&self, num_edges: usize, seed: u64, out: &mut Vec<Edge>) {
        out.reserve(num_edges);
        out.extend(self.edges(seed).take(num_edges));
    }

    /// An unbounded edge iterator seeded at `seed`: pull as many edges as
    /// needed, in arbitrary chunk sizes, without materializing anything.
    /// The first `k` items equal `generate(k, seed)` for every `k` — the
    /// iterator owns the RNG, so chunk boundaries cannot perturb the
    /// sequence.
    pub fn edges(&self, seed: u64) -> RmatIter {
        RmatIter {
            rmat: *self,
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
        }
    }
}

/// Streaming R-MAT edge iterator (see [`Rmat::edges`]). Infinite: bound it
/// with [`Iterator::take`].
#[derive(Debug, Clone)]
pub struct RmatIter {
    rmat: Rmat,
    rng: Xoshiro256PlusPlus,
}

impl Iterator for RmatIter {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        let (src, dst) = self.rmat.sample(&mut self.rng);
        Some(Edge::new(src, dst, weight_for(src, dst)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_in_range() {
        let g = Rmat::paper(1000); // non-power-of-two: exercises rejection
        let edges = g.generate(20_000, 1);
        assert_eq!(edges.len(), 20_000);
        assert!(edges.iter().all(|e| (e.src as usize) < 1000 && (e.dst as usize) < 1000));
    }

    #[test]
    fn is_deterministic_per_seed() {
        let g = Rmat::paper(1 << 12);
        assert_eq!(g.generate(1000, 7), g.generate(1000, 7));
        assert_ne!(g.generate(1000, 7), g.generate(1000, 8));
    }

    #[test]
    fn paper_parameters_skew_toward_low_ids() {
        let g = Rmat::paper(1 << 14);
        let edges = g.generate(50_000, 3);
        let low_half = edges
            .iter()
            .filter(|e| (e.src as usize) < (1 << 13))
            .count();
        // a + b = 0.70 of the mass goes to the low-src half.
        let frac = low_half as f64 / edges.len() as f64;
        assert!((0.65..0.75).contains(&frac), "low-src fraction {frac}");
    }

    #[test]
    fn duplicate_pairs_carry_identical_weights() {
        let g = Rmat::paper(64); // tiny id space forces duplicate pairs
        let edges = g.generate(10_000, 9);
        use std::collections::HashMap;
        let mut seen: HashMap<(Node, Node), f32> = HashMap::new();
        for e in &edges {
            let w = seen.entry((e.src, e.dst)).or_insert(e.weight);
            assert_eq!(*w, e.weight, "weight must be a function of (src, dst)");
        }
    }

    #[test]
    fn chunked_generation_matches_full_materialization() {
        let g = Rmat::paper(1000);
        let full = g.generate(5_000, 21);

        // generate_into appends, and pulls from the same RNG sequence.
        let mut appended = vec![Edge::new(7, 7, 0.5)];
        g.generate_into(5_000, 21, &mut appended);
        assert_eq!(appended.len(), 5_001);
        assert_eq!(&appended[1..], &full[..]);

        // Arbitrary chunk boundaries over one iterator concatenate to the
        // same sequence: the iterator owns the RNG.
        let mut iter = g.edges(21);
        let mut chunked = Vec::new();
        for chunk in [1usize, 999, 2500, 1500] {
            chunked.extend(iter.by_ref().take(chunk));
        }
        assert_eq!(chunked, full);
    }

    #[test]
    fn rejection_sampling_matches_conditioned_padded_grid() {
        // Rejection on the padded 1024-grid is exactly conditioning: the
        // accepted-edge distribution of paper(1000) must match paper(1024)
        // edges filtered to both endpoints < 1000. Compare the low-src-half
        // mass, which is where the a+b skew concentrates.
        let n = 1000usize;
        let rejecting = Rmat::paper(n).generate(60_000, 5);
        let padded: Vec<Edge> = Rmat::paper(1024)
            .edges(5)
            .filter(|e| (e.src as usize) < n && (e.dst as usize) < n)
            .take(60_000)
            .collect();

        let low_frac = |edges: &[Edge]| {
            edges.iter().filter(|e| (e.src as usize) < n / 2).count() as f64 / edges.len() as f64
        };
        let a = low_frac(&rejecting);
        let b = low_frac(&padded);
        assert!(
            (a - b).abs() < 0.02,
            "rejection skewed the accepted distribution: {a} vs conditioned {b}"
        );
        // And the skew itself still tracks a + b = 0.70 (ids ≥ 512 are
        // pruned from the top half, so the low-512 mass only grows).
        assert!(a > 0.65, "low-src fraction {a} lost the R-MAT skew");
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn zero_nodes_panics() {
        let _ = Rmat::paper(0);
    }
}
