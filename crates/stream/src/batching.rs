//! Seeded shuffling and batch iteration.
//!
//! The paper first randomly shuffles each input file "to ensure the
//! realistic scenario that streaming edges are not likely to come in any
//! pre-defined order", then reads it in 500K-edge batches (§IV-B). The
//! shuffle here is a seeded Fisher–Yates so experiments are reproducible.

use rand_xoshiro::rand_core::{RngCore, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;

use crate::Edge;

/// Shuffles edges in place with a seeded Fisher–Yates permutation.
///
/// # Examples
///
/// ```
/// use saga_stream::batching::shuffle_edges;
/// use saga_stream::Edge;
///
/// let mut a: Vec<Edge> = (0..100).map(|i| Edge::new(i, i + 1, 1.0)).collect();
/// let mut b = a.clone();
/// shuffle_edges(&mut a, 7);
/// shuffle_edges(&mut b, 7);
/// assert_eq!(a, b); // same seed, same order
/// ```
pub fn shuffle_edges(edges: &mut [Edge], seed: u64) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    for i in (1..edges.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        edges.swap(i, j);
    }
}

/// Iterator over consecutive fixed-size batches of a stream; the final
/// batch may be short.
#[derive(Debug, Clone)]
pub struct BatchIter<'a> {
    edges: &'a [Edge],
    batch_size: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates a batch iterator.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(edges: &'a [Edge], batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self { edges, batch_size }
    }
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = &'a [Edge];

    fn next(&mut self) -> Option<Self::Item> {
        if self.edges.is_empty() {
            return None;
        }
        let take = self.batch_size.min(self.edges.len());
        let (batch, rest) = self.edges.split_at(take);
        self.edges = rest;
        Some(batch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.edges.len().div_ceil(self.batch_size);
        (n, Some(n))
    }
}

impl ExactSizeIterator for BatchIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(n: u32) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, i + 1, i as f32)).collect()
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let original = edges(500);
        let mut shuffled = original.clone();
        shuffle_edges(&mut shuffled, 42);
        assert_ne!(original, shuffled);
        let mut o: Vec<u32> = original.iter().map(|e| e.src).collect();
        let mut s: Vec<u32> = shuffled.iter().map(|e| e.src).collect();
        o.sort_unstable();
        s.sort_unstable();
        assert_eq!(o, s);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = edges(200);
        let mut b = edges(200);
        shuffle_edges(&mut a, 1);
        shuffle_edges(&mut b, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn batches_partition_the_stream() {
        let es = edges(23);
        let batches: Vec<&[Edge]> = BatchIter::new(&es, 5).collect();
        assert_eq!(batches.len(), 5);
        assert!(batches[..4].iter().all(|b| b.len() == 5));
        assert_eq!(batches[4].len(), 3);
        let flat: Vec<Edge> = batches.concat();
        assert_eq!(flat, es);
    }

    #[test]
    fn exact_size_hint() {
        let es = edges(10);
        let it = BatchIter::new(&es, 4);
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let it = BatchIter::new(&[], 4);
        assert_eq!(it.count(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let es = edges(3);
        let _ = BatchIter::new(&es, 0);
    }
}
