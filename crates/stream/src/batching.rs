//! Seeded shuffling and batch iteration.
//!
//! The paper first randomly shuffles each input file "to ensure the
//! realistic scenario that streaming edges are not likely to come in any
//! pre-defined order", then reads it in 500K-edge batches (§IV-B). The
//! shuffle here is a seeded Fisher–Yates so experiments are reproducible.

use std::borrow::Cow;

use rand_xoshiro::rand_core::{RngCore, SeedableRng};
use rand_xoshiro::Xoshiro256PlusPlus;

use crate::{Edge, EdgeOp};

/// Shuffles edges in place with a seeded Fisher–Yates permutation.
///
/// # Examples
///
/// ```
/// use saga_stream::batching::shuffle_edges;
/// use saga_stream::Edge;
///
/// let mut a: Vec<Edge> = (0..100).map(|i| Edge::new(i, i + 1, 1.0)).collect();
/// let mut b = a.clone();
/// shuffle_edges(&mut a, 7);
/// shuffle_edges(&mut b, 7);
/// assert_eq!(a, b); // same seed, same order
/// ```
pub fn shuffle_edges(edges: &mut [Edge], seed: u64) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    for i in (1..edges.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        edges.swap(i, j);
    }
}

/// Iterator over consecutive fixed-size batches of a stream; the final
/// batch may be short.
#[derive(Debug, Clone)]
pub struct BatchIter<'a> {
    edges: &'a [Edge],
    batch_size: usize,
}

impl<'a> BatchIter<'a> {
    /// Creates a batch iterator.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(edges: &'a [Edge], batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self { edges, batch_size }
    }
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = &'a [Edge];

    fn next(&mut self) -> Option<Self::Item> {
        if self.edges.is_empty() {
            return None;
        }
        let take = self.batch_size.min(self.edges.len());
        let (batch, rest) = self.edges.split_at(take);
        self.edges = rest;
        Some(batch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.edges.len().div_ceil(self.batch_size);
        (n, Some(n))
    }
}

impl ExactSizeIterator for BatchIter<'_> {}

/// One batch of an op-aware stream: a slice of edges plus (when the
/// stream mixes operations) a parallel slice of per-edge ops.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBatch<'a> {
    /// Edges of this batch, in arrival order.
    pub edges: &'a [Edge],
    /// Per-edge ops, parallel to `edges`. Empty means every edge is an
    /// insertion (the common, paper-faithful case).
    pub ops: &'a [EdgeOp],
}

impl<'a> StreamBatch<'a> {
    /// Splits the batch into its insertion and deletion edges, preserving
    /// arrival order within each class. Insert-only batches borrow the
    /// original slice — no allocation on the paper's insertion-only path.
    ///
    /// The driver applies the insert half before the delete half, giving
    /// each batch set-operation semantics: a delete in batch `i` removes
    /// the edge even when its insert arrived earlier *in the same batch*.
    pub fn split(&self) -> (Cow<'a, [Edge]>, Cow<'a, [Edge]>) {
        if self.ops.is_empty() {
            return (Cow::Borrowed(self.edges), Cow::Borrowed(&[]));
        }
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for (edge, op) in self.edges.iter().zip(self.ops) {
            match op {
                EdgeOp::Insert => inserts.push(*edge),
                EdgeOp::Delete => deletes.push(*edge),
            }
        }
        (Cow::Owned(inserts), Cow::Owned(deletes))
    }

    /// Number of edges (of either op) in the batch.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the batch carries no edges at all.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Iterator over op-aware batches of a stream. Honors explicit batch
/// boundaries when present; otherwise chunks uniformly like [`BatchIter`].
#[derive(Debug, Clone)]
pub struct OpBatchIter<'a> {
    edges: &'a [Edge],
    ops: &'a [EdgeOp],
    boundaries: &'a [usize],
    consumed: usize,
    batch_size: usize,
}

impl<'a> OpBatchIter<'a> {
    /// Creates an op-aware batch iterator. `ops` must be empty or parallel
    /// to `edges`; `boundaries`, when non-empty, must be strictly
    /// increasing and end at `edges.len()` (then `batch_size` is ignored).
    ///
    /// # Panics
    ///
    /// Panics on a malformed `ops`/`boundaries` combination, or when
    /// `boundaries` is empty and `batch_size` is zero.
    pub fn new(
        edges: &'a [Edge],
        ops: &'a [EdgeOp],
        boundaries: &'a [usize],
        batch_size: usize,
    ) -> Self {
        assert!(
            ops.is_empty() || ops.len() == edges.len(),
            "ops must be empty or parallel to edges"
        );
        if boundaries.is_empty() {
            assert!(batch_size > 0, "batch size must be positive");
        } else {
            assert!(
                boundaries.windows(2).all(|w| w[0] < w[1]),
                "boundaries must be strictly increasing"
            );
            assert_eq!(
                *boundaries.last().unwrap(),
                edges.len(),
                "last boundary must cover the stream"
            );
        }
        Self { edges, ops, boundaries, consumed: 0, batch_size }
    }
}

impl<'a> Iterator for OpBatchIter<'a> {
    type Item = StreamBatch<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.edges.is_empty() {
            return None;
        }
        let take = match self.boundaries.split_first() {
            Some((&end, rest)) => {
                self.boundaries = rest;
                end - self.consumed
            }
            None => self.batch_size.min(self.edges.len()),
        };
        let (edges, rest) = self.edges.split_at(take);
        self.edges = rest;
        let ops = if self.ops.is_empty() {
            &[]
        } else {
            let (ops, rest) = self.ops.split_at(take);
            self.ops = rest;
            ops
        };
        self.consumed += take;
        Some(StreamBatch { edges, ops })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = if self.boundaries.is_empty() {
            self.edges.len().div_ceil(self.batch_size.max(1))
        } else {
            self.boundaries.len()
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for OpBatchIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(n: u32) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, i + 1, i as f32)).collect()
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let original = edges(500);
        let mut shuffled = original.clone();
        shuffle_edges(&mut shuffled, 42);
        assert_ne!(original, shuffled);
        let mut o: Vec<u32> = original.iter().map(|e| e.src).collect();
        let mut s: Vec<u32> = shuffled.iter().map(|e| e.src).collect();
        o.sort_unstable();
        s.sort_unstable();
        assert_eq!(o, s);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = edges(200);
        let mut b = edges(200);
        shuffle_edges(&mut a, 1);
        shuffle_edges(&mut b, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn batches_partition_the_stream() {
        let es = edges(23);
        let batches: Vec<&[Edge]> = BatchIter::new(&es, 5).collect();
        assert_eq!(batches.len(), 5);
        assert!(batches[..4].iter().all(|b| b.len() == 5));
        assert_eq!(batches[4].len(), 3);
        let flat: Vec<Edge> = batches.concat();
        assert_eq!(flat, es);
    }

    #[test]
    fn exact_size_hint() {
        let es = edges(10);
        let it = BatchIter::new(&es, 4);
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let it = BatchIter::new(&[], 4);
        assert_eq!(it.count(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let es = edges(3);
        let _ = BatchIter::new(&es, 0);
    }

    #[test]
    fn insert_only_split_borrows_without_allocating() {
        let es = edges(6);
        let batch = StreamBatch { edges: &es, ops: &[] };
        let (ins, del) = batch.split();
        assert!(matches!(ins, Cow::Borrowed(_)));
        assert!(del.is_empty());
        assert_eq!(ins.as_ref(), &es[..]);
    }

    #[test]
    fn mixed_split_preserves_arrival_order_per_class() {
        let es = edges(5);
        let ops = [
            EdgeOp::Insert,
            EdgeOp::Delete,
            EdgeOp::Insert,
            EdgeOp::Delete,
            EdgeOp::Insert,
        ];
        let batch = StreamBatch { edges: &es, ops: &ops };
        let (ins, del) = batch.split();
        assert_eq!(ins.iter().map(|e| e.src).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(del.iter().map(|e| e.src).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn op_batches_honor_boundaries() {
        let es = edges(9);
        let ops = vec![EdgeOp::Insert; 9];
        let bounds = [2, 3, 9];
        let sizes: Vec<usize> =
            OpBatchIter::new(&es, &ops, &bounds, 500).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![2, 1, 6]);
        let it = OpBatchIter::new(&es, &ops, &bounds, 500);
        assert_eq!(it.len(), 3);
    }

    #[test]
    #[should_panic(expected = "last boundary must cover the stream")]
    fn short_boundaries_panic() {
        let es = edges(9);
        let _ = OpBatchIter::new(&es, &[], &[2, 3], 500);
    }

    #[test]
    #[should_panic(expected = "ops must be empty or parallel to edges")]
    fn misaligned_ops_panic() {
        let es = edges(9);
        let ops = vec![EdgeOp::Delete; 3];
        let _ = OpBatchIter::new(&es, &ops, &[], 4);
    }
}
