//! Per-batch degree statistics and tail classification.
//!
//! §V-B of the paper defines *short (heavy)-tailed graphs* as graphs whose
//! batches contain a low (high) maximum degree, and shows this single
//! property decides the best data structure. Table IV reports the max
//! in/out degree of each dataset over the entire stream and within one
//! 500K-edge batch; this module computes both.

use crate::{Edge, Node};

/// Degree statistics of a set of edges (counting multiplicity: a duplicate
/// edge still costs an update attempt).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegreeStats {
    /// Largest number of edges sharing one destination.
    pub max_in: usize,
    /// Largest number of edges sharing one source.
    pub max_out: usize,
    /// Vertex achieving `max_in`.
    pub argmax_in: Node,
    /// Vertex achieving `max_out`.
    pub argmax_out: Node,
    /// Distinct source vertices.
    pub distinct_sources: usize,
    /// Distinct destination vertices.
    pub distinct_destinations: usize,
}

/// Tail class of a batch (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailClass {
    /// Low per-batch maximum degree (LJ, Orkut, RMAT).
    Short,
    /// High per-batch maximum degree (Wiki, Talk).
    Heavy,
}

impl std::fmt::Display for TailClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailClass::Short => f.write_str("STail"),
            TailClass::Heavy => f.write_str("HTail"),
        }
    }
}

/// Fraction of a batch concentrated on one vertex beyond which the batch
/// counts as heavy-tailed. The paper's heavy datasets sit at 0.8–2% of the
/// batch on one vertex, its short ones at ≤0.03%; 0.5% separates both the
/// paper-scale fractions and the scaled default profiles.
pub const HEAVY_TAIL_THRESHOLD: f64 = 0.005;

/// Computes degree statistics over `edges` (typically one batch).
///
/// # Panics
///
/// Panics if any endpoint is `>= num_nodes`.
///
/// # Examples
///
/// ```
/// use saga_stream::batch_stats::degree_stats;
/// use saga_stream::Edge;
///
/// let batch = vec![Edge::new(0, 1, 1.0), Edge::new(2, 1, 1.0), Edge::new(0, 2, 1.0)];
/// let stats = degree_stats(&batch, 3);
/// assert_eq!(stats.max_in, 2);   // vertex 1
/// assert_eq!(stats.max_out, 2);  // vertex 0
/// ```
pub fn degree_stats(edges: &[Edge], num_nodes: usize) -> DegreeStats {
    let mut in_deg = vec![0u32; num_nodes];
    let mut out_deg = vec![0u32; num_nodes];
    for e in edges {
        out_deg[e.src as usize] += 1;
        in_deg[e.dst as usize] += 1;
    }
    let mut stats = DegreeStats::default();
    for (v, (&i, &o)) in in_deg.iter().zip(out_deg.iter()).enumerate() {
        if (i as usize) > stats.max_in {
            stats.max_in = i as usize;
            stats.argmax_in = v as Node;
        }
        if (o as usize) > stats.max_out {
            stats.max_out = o as usize;
            stats.argmax_out = v as Node;
        }
        stats.distinct_sources += (o > 0) as usize;
        stats.distinct_destinations += (i > 0) as usize;
    }
    stats
}

/// Classifies a batch by the fraction of it concentrated on the hottest
/// vertex.
pub fn classify(stats: &DegreeStats, batch_len: usize) -> TailClass {
    if batch_len == 0 {
        return TailClass::Short;
    }
    let peak = stats.max_in.max(stats.max_out) as f64 / batch_len as f64;
    if peak >= HEAVY_TAIL_THRESHOLD {
        TailClass::Heavy
    } else {
        TailClass::Short
    }
}

/// One dataset's row of Table IV: max in/out degree over the entire stream
/// and within its first batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table4Row {
    /// Whole-stream statistics.
    pub entire: DegreeStats,
    /// First-batch statistics.
    pub one_batch: DegreeStats,
    /// The batch size used for the one-batch column.
    pub batch_size: usize,
    /// Tail classification of the batch.
    pub tail: TailClass,
}

/// Computes a Table IV row for a stream.
pub fn table4_row(edges: &[Edge], num_nodes: usize, batch_size: usize) -> Table4Row {
    let entire = degree_stats(edges, num_nodes);
    let first = &edges[..batch_size.min(edges.len())];
    let one_batch = degree_stats(first, num_nodes);
    let tail = classify(&one_batch, first.len());
    Table4Row {
        entire,
        one_batch,
        batch_size: first.len(),
        tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DatasetProfile;

    #[test]
    fn empty_batch_is_short_tailed() {
        let stats = degree_stats(&[], 4);
        assert_eq!(stats, DegreeStats::default());
        assert_eq!(classify(&stats, 0), TailClass::Short);
    }

    #[test]
    fn counts_multiplicity() {
        let batch = vec![Edge::new(0, 1, 1.0); 10];
        let stats = degree_stats(&batch, 2);
        assert_eq!(stats.max_out, 10);
        assert_eq!(stats.max_in, 10);
        assert_eq!(stats.argmax_out, 0);
        assert_eq!(stats.argmax_in, 1);
        assert_eq!(stats.distinct_sources, 1);
        assert_eq!(stats.distinct_destinations, 1);
    }

    #[test]
    fn hub_batch_classifies_heavy() {
        let mut batch: Vec<Edge> = (0..990).map(|i| Edge::new(i % 100, (i + 1) % 100, 1.0)).collect();
        batch.extend((0..10).map(|i| Edge::new(7, 200 + i, 1.0)));
        let stats = degree_stats(&batch, 300);
        // Vertex 7 sources ~20 of 1000 edges -> 2% > threshold.
        assert_eq!(classify(&stats, batch.len()), TailClass::Heavy);
    }

    #[test]
    fn uniform_batch_classifies_short() {
        let batch: Vec<Edge> =
            (0..10_000).map(|i| Edge::new(i % 9973, (i * 7) % 9973, 1.0)).collect();
        let stats = degree_stats(&batch, 9973);
        assert_eq!(classify(&stats, batch.len()), TailClass::Short);
    }

    #[test]
    fn table4_shape_matches_the_paper() {
        // The qualitative Table IV claim: Wiki/Talk heavy, others short.
        // Node universes stay at profile defaults: shrinking them inflates
        // the Zipf head fraction and would not represent the datasets.
        for (profile, expected) in [
            (DatasetProfile::livejournal(), TailClass::Short),
            (DatasetProfile::orkut(), TailClass::Short),
            (DatasetProfile::rmat(), TailClass::Short),
            (DatasetProfile::wiki(), TailClass::Heavy),
            (DatasetProfile::talk(), TailClass::Heavy),
        ] {
            let p = profile.clone().scaled(profile.num_nodes(), 30_000);
            let stream = p.generate(11);
            let row = table4_row(&stream.edges, stream.num_nodes, 10_000);
            assert_eq!(row.tail, expected, "{}", p.name());
        }
    }

    #[test]
    fn wiki_hub_direction_is_in_talk_is_out() {
        let wiki = DatasetProfile::wiki().scaled(4_000, 30_000).generate(5);
        let row = table4_row(&wiki.edges, wiki.num_nodes, 10_000);
        assert!(row.one_batch.max_in > row.one_batch.max_out);

        let talk = DatasetProfile::talk().scaled(4_000, 30_000).generate(5);
        let row = table4_row(&talk.edges, talk.num_nodes, 10_000);
        assert!(row.one_batch.max_out > row.one_batch.max_in);
    }
}
