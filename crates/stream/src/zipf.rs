//! Discrete power-law endpoint samplers.
//!
//! The SNAP datasets of the paper (Table II) cannot be redistributed with
//! this repository, so `saga-stream` substitutes seeded synthetic
//! generators whose *per-batch degree distribution* — the property the
//! paper shows drives every software-level finding (§V-B) — matches each
//! dataset's shape. Endpoints are drawn from a Zipf distribution via a
//! Walker alias table (exact, O(1) per sample), optionally mixed with
//! explicit *hub mass*: a fixed probability of hitting a designated hub
//! vertex, which is what makes wiki-topcats (in-degree) and wiki-Talk
//! (out-degree) heavy-tailed in every batch (Table IV).

use rand::Rng;
use rand_xoshiro::rand_core::RngCore;
use rand_xoshiro::Xoshiro256PlusPlus;

use crate::Node;

/// Walker alias table for O(1) sampling from an arbitrary discrete
/// distribution.
///
/// # Examples
///
/// ```
/// use saga_stream::zipf::AliasTable;
/// use rand_xoshiro::rand_core::SeedableRng;
///
/// let table = AliasTable::new(&[1.0, 1.0, 2.0]);
/// let mut rng = rand_xoshiro::Xoshiro256PlusPlus::seed_from_u64(1);
/// let x = table.sample(&mut rng);
/// assert!(x < 3);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table weights must not all be zero");
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers are probability-1 slots.
        for &s in small.iter().chain(large.iter()) {
            prob[s as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has no outcomes.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome.
    pub fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> usize {
        let i = (rng.next_u64() % self.prob.len() as u64) as usize;
        let coin: f64 = rng.gen::<f64>();
        if coin < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// An endpoint distribution over `0..n` vertices: a Zipf body plus optional
/// hub mass.
#[derive(Debug, Clone)]
pub struct EndpointDist {
    table: AliasTable,
    /// Rank → vertex-id permutation (decorrelates in- and out-hubs).
    permutation: Vec<Node>,
    /// Probability of redirecting a sample to the hub vertex.
    hub_mass: f64,
    hub: Node,
}

impl EndpointDist {
    /// Builds a Zipf(`exponent`) distribution over `n` vertices, permuted
    /// by `perm_seed`, with `hub_mass` probability concentrated on a single
    /// hub vertex.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hub_mass` is outside `[0, 1)`.
    pub fn zipf(n: usize, exponent: f64, hub_mass: f64, perm_seed: u64) -> Self {
        assert!(n > 0, "endpoint distribution needs at least one vertex");
        assert!((0.0..1.0).contains(&hub_mass), "hub mass must be in [0, 1)");
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(exponent)).collect();
        let table = AliasTable::new(&weights);
        let permutation = permutation(n, perm_seed);
        let hub = permutation[0];
        Self {
            table,
            permutation,
            hub_mass,
            hub,
        }
    }

    /// A uniform distribution over `n` vertices.
    pub fn uniform(n: usize, perm_seed: u64) -> Self {
        Self::zipf(n, 0.0, 0.0, perm_seed)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.permutation.len()
    }

    /// Whether the distribution covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.permutation.is_empty()
    }

    /// The designated hub vertex (receives the hub mass, and is also the
    /// most likely Zipf outcome).
    pub fn hub(&self) -> Node {
        self.hub
    }

    /// Draws one endpoint.
    pub fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> Node {
        if self.hub_mass > 0.0 && rng.gen::<f64>() < self.hub_mass {
            return self.hub;
        }
        self.permutation[self.table.sample(rng)]
    }
}

/// Seeded Fisher–Yates permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<Node> {
    use rand_xoshiro::rand_core::SeedableRng;
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut perm: Vec<Node> = (0..n as Node).collect();
    for i in (1..n).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_xoshiro::rand_core::SeedableRng;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn alias_table_matches_weights() {
        let table = AliasTable::new(&[1.0, 2.0, 7.0]);
        let mut counts = [0usize; 3];
        let mut r = rng(7);
        let n = 100_000;
        for _ in 0..n {
            counts[table.sample(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.7).abs() < 0.01);
    }

    #[test]
    fn alias_table_single_outcome() {
        let table = AliasTable::new(&[3.0]);
        let mut r = rng(1);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut r), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn alias_table_empty_panics() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation(1000, 42);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &v)| v == i as Node));
        // And actually permutes.
        assert_ne!(p, sorted);
    }

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let d = EndpointDist::zipf(1000, 0.8, 0.0, 3);
        let mut counts = vec![0usize; 1000];
        let mut r = rng(5);
        for _ in 0..50_000 {
            counts[d.sample(&mut r) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(max > 500, "zipf head should be hot, got {max}");
        assert!(nonzero > 300, "zipf tail should be broad, got {nonzero}");
        // Determinism across fresh instances.
        let d2 = EndpointDist::zipf(1000, 0.8, 0.0, 3);
        let (mut r1, mut r2) = (rng(9), rng(9));
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r1), d2.sample(&mut r2));
        }
    }

    #[test]
    fn hub_mass_concentrates_on_one_vertex() {
        let d = EndpointDist::zipf(10_000, 0.5, 0.2, 11);
        let mut r = rng(13);
        let n = 20_000;
        let hits = (0..n).filter(|_| d.sample(&mut r) == d.hub()).count();
        let frac = hits as f64 / n as f64;
        assert!(frac > 0.2, "hub fraction {frac} should exceed the mass");
        assert!(frac < 0.3, "hub fraction {frac} unexpectedly large");
    }

    #[test]
    fn uniform_covers_everything() {
        let d = EndpointDist::uniform(50, 1);
        let mut r = rng(2);
        let mut seen = [false; 50];
        for _ in 0..5000 {
            seen[d.sample(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
