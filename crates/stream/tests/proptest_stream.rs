//! Property-based tests for stream generation and batching.

use proptest::prelude::*;
use saga_stream::batch_stats::degree_stats;
use saga_stream::batching::{shuffle_edges, BatchIter};
use saga_stream::profiles::DatasetProfile;
use saga_stream::zipf::{permutation, AliasTable};
use saga_stream::{weight_for, Edge};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shuffle_is_a_seeded_permutation(n in 0usize..500, seed in any::<u64>()) {
        let original: Vec<Edge> = (0..n as u32).map(|i| Edge::new(i, i, 1.0)).collect();
        let mut a = original.clone();
        let mut b = original.clone();
        shuffle_edges(&mut a, seed);
        shuffle_edges(&mut b, seed);
        prop_assert_eq!(&a, &b, "same seed, same order");
        let mut sorted: Vec<u32> = a.iter().map(|e| e.src).collect();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(sorted, expected, "shuffle must be a permutation");
    }

    #[test]
    fn batches_partition_exactly(n in 0usize..1000, batch in 1usize..200) {
        let edges: Vec<Edge> = (0..n as u32).map(|i| Edge::new(i, i, 1.0)).collect();
        let batches: Vec<&[Edge]> = BatchIter::new(&edges, batch).collect();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, n);
        for (i, b) in batches.iter().enumerate() {
            if i + 1 < batches.len() {
                prop_assert_eq!(b.len(), batch);
            } else {
                prop_assert!(b.len() <= batch && !b.is_empty());
            }
        }
        let flat: Vec<Edge> = batches.concat();
        prop_assert_eq!(flat, edges, "order preserved");
    }

    #[test]
    fn permutation_is_bijective(n in 1usize..2000, seed in any::<u64>()) {
        let p = permutation(n, seed);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        prop_assert!(sorted.iter().enumerate().all(|(i, &v)| v as usize == i));
    }

    #[test]
    fn alias_table_only_emits_valid_indices(
        weights in prop::collection::vec(0.01f64..100.0, 1..64),
        seed in any::<u64>(),
    ) {
        use rand_xoshiro::rand_core::SeedableRng;
        let table = AliasTable::new(&weights);
        let mut rng = rand_xoshiro::Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..200 {
            let x = table.sample(&mut rng);
            prop_assert!(x < weights.len());
        }
    }

    #[test]
    fn weights_are_pure_functions(s in any::<u32>(), d in any::<u32>()) {
        prop_assert_eq!(weight_for(s, d), weight_for(s, d));
        let w = weight_for(s, d);
        prop_assert!((1.0..=8.875).contains(&w));
    }

    #[test]
    fn degree_stats_matches_naive_count(
        edges in prop::collection::vec((0u32..50, 0u32..50), 0..300),
    ) {
        let batch: Vec<Edge> = edges.iter().map(|&(s, d)| Edge::new(s, d, 1.0)).collect();
        let stats = degree_stats(&batch, 50);
        let mut in_deg = [0usize; 50];
        let mut out_deg = [0usize; 50];
        for &(s, d) in &edges {
            out_deg[s as usize] += 1;
            in_deg[d as usize] += 1;
        }
        prop_assert_eq!(stats.max_in, in_deg.iter().copied().max().unwrap());
        prop_assert_eq!(stats.max_out, out_deg.iter().copied().max().unwrap());
        prop_assert_eq!(stats.distinct_sources, out_deg.iter().filter(|&&d| d > 0).count());
        prop_assert_eq!(stats.distinct_destinations, in_deg.iter().filter(|&&d| d > 0).count());
    }

    #[test]
    fn profiles_generate_in_range_edges(
        nodes in 16usize..400,
        edges in 16usize..2000,
        seed in any::<u64>(),
    ) {
        for profile in DatasetProfile::all() {
            let p = profile.scaled(nodes, edges);
            let stream = p.generate(seed);
            prop_assert_eq!(stream.edges.len(), edges);
            let in_range = stream
                .edges
                .iter()
                .all(|e| (e.src as usize) < nodes && (e.dst as usize) < nodes);
            prop_assert!(in_range);
        }
    }
}
