//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! `lint` is a SAFETY-invariant pass over every `.rs` file in the
//! workspace that enforces the conventions the compiler cannot (see
//! DESIGN.md §7):
//!
//! 1. every `unsafe` block and `unsafe impl` is annotated with a
//!    `// SAFETY:` comment (immediately above, or trailing on the line);
//! 2. every `unsafe fn` declaration carries a `# Safety` section in its
//!    doc comment;
//! 3. `std::thread::spawn` / `std::thread::Builder` appear only inside the
//!    pool (`crates/utils/src/parallel.rs`), the sync facade
//!    (`crates/utils/src/sync.rs`), and the model checker (`crates/loom/`)
//!    — all other code must go through `saga_utils::parallel`;
//! 4. `std::sync::atomic` is imported only by the sync facade, the model
//!    checker, and the trace layer (which sits *below* the facade) — all
//!    other code must use `saga_utils::sync::atomic` so that `--cfg loom`
//!    swaps in the model-checked types everywhere;
//! 5. `parking_lot` is imported only by the sync facade (the analyzer's
//!    seeded fixtures, which are not compiled, keep the raw idiom so the
//!    fixture shapes match real pre-facade code) — all other code takes
//!    locks from `saga_utils::sync` for the same `--cfg loom` swap;
//! 6. `println!` / `eprintln!` are banned in library code (any `src/`
//!    file outside `src/bin/`) — library output must route through the
//!    `saga_trace::progress!` facade or `saga_core::report`, so that
//!    binaries own stdout and progress chatter is greppable in one place;
//! 7. hardware prefetch intrinsics (`_mm_prefetch`, or any `core::arch` /
//!    `std::arch` path) live only in `crates/utils/src/prefetch.rs` — hot
//!    paths call `saga_utils::prefetch` / the property arrays' `prefetch`
//!    helpers, so the per-target gating (and its SAFETY argument) stays in
//!    one audited file.
//!
//! The old informational `Ordering::Relaxed` listing moved to
//! `cargo xtask analyze`, whose atomics-protocol audit groups sites by
//! field and checks publish/consume pairing instead of just listing them.
//!
//! `check-trace <file>` validates an exported Chrome trace-event JSON file
//! (shape + strict per-track span nesting) via `saga_check::tracecheck` —
//! CI runs it against the trace-smoke artifact.
//!
//! `analyze-trace <file>` decodes such a file back into events and prints
//! the offline analyzer's report (span statistics, stitched per-request
//! trace trees, critical paths) via `saga_trace::analyze`.
//!
//! `check-metrics <file>` validates a Prometheus text-exposition file
//! (grammar + histogram invariants) via `saga_trace::expose` — CI's
//! obs-smoke job runs it against the live `/metrics` scrape.
//!
//! The scanner is deliberately line-based (no full parser is available
//! offline): block comments, line comments, and string literals are
//! stripped before matching, which is exact enough for the workspace's
//! code style and errs on the side of flagging.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("analyze") => analyze(),
        Some("check-trace") => check_trace(args.next()),
        Some("analyze-trace") => analyze_trace(args.next()),
        Some("check-metrics") => check_metrics(args.next()),
        Some(other) => {
            eprintln!(
                "unknown task `{other}`; available tasks: lint, analyze, check-trace, \
                 analyze-trace, check-metrics"
            );
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask <task>\n\ntasks:\n  lint                 \
                 SAFETY-invariant pass\n  analyze              static \
                 lock-order & atomics-protocol analysis\n  check-trace <file>   \
                 validate an exported Chrome trace-event JSON file\n  \
                 analyze-trace <file>  span stats + stitched trace trees of an \
                 exported trace\n  check-metrics <file>  validate a Prometheus \
                 text-exposition scrape"
            );
            ExitCode::FAILURE
        }
    }
}

/// Decodes an exported Chrome trace and prints the offline analyzer's
/// report: span statistics and, per stitched request trace, the root and
/// critical path. The obs-smoke CI job runs this over the downloaded
/// `/debug/flight` capture.
fn analyze_trace(path: Option<String>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("usage: cargo xtask analyze-trace <file.trace.json>");
        return ExitCode::FAILURE;
    };
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask analyze-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match saga_check::tracecheck::decode_events(&doc) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("xtask analyze-trace: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", saga_trace::analyze::render_report(&events));
    ExitCode::SUCCESS
}

/// Validates a Prometheus text-exposition file with the same in-tree
/// parser the proptest round-trip pins against the renderer.
fn check_metrics(path: Option<String>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("usage: cargo xtask check-metrics <file.prom>");
        return ExitCode::FAILURE;
    };
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask check-metrics: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match saga_trace::expose::parse_prometheus(&doc) {
        Ok(families) => {
            let samples: usize = families.iter().map(|f| f.samples.len()).sum();
            println!(
                "xtask check-metrics: OK ({path}: {} families, {samples} samples)",
                families.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask check-metrics: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates an exported Chrome trace-event JSON file (CI's trace-smoke
/// step runs this against the artifact the `pipelined` binary writes).
fn check_trace(path: Option<String>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("usage: cargo xtask check-trace <file.trace.json>");
        return ExitCode::FAILURE;
    };
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask check-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match saga_check::tracecheck::validate(&doc) {
        Ok(stats) => {
            println!("xtask check-trace: OK ({path}: {stats})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask check-trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the static analyzer (`saga-analyze`) as a gate: first the
/// seeded-violation fixture corpus must be flagged exactly (the analyzer
/// proving it still catches the PR-6 deadlock shape and friends), then
/// the production tree must be clean modulo the justified `analyze.allow`
/// entries. The text report and lock-order DOT graph are written to
/// `target/analyze/` for the CI artifact.
fn analyze() -> ExitCode {
    let root = workspace_root();

    // 1. Fixture self-check: every seeded violation must be flagged.
    match saga_analyze::check_fixtures(&root.join("crates/analyze/fixtures")) {
        Ok(summary) => println!("xtask analyze: {summary}"),
        Err(e) => {
            eprintln!("xtask analyze: fixture self-check FAILED:\n{e}");
            return ExitCode::FAILURE;
        }
    }

    // 2. Whole-repo analysis, filtered by the allowlist.
    let allow = std::fs::read_to_string(root.join("analyze.allow")).unwrap_or_default();
    let report = match saga_analyze::run_repo(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: cannot read sources: {e}");
            return ExitCode::FAILURE;
        }
    };

    // 3. Artifacts.
    let out_dir = root.join("target/analyze");
    let rendered = report.render();
    if let Err(e) = std::fs::create_dir_all(&out_dir)
        .and_then(|()| std::fs::write(out_dir.join("report.txt"), &rendered))
        .and_then(|()| std::fs::write(out_dir.join("lock_order.dot"), &report.dot))
    {
        eprintln!("xtask analyze: cannot write artifacts: {e}");
        return ExitCode::FAILURE;
    }

    print!("{rendered}");
    println!("\nartifacts: target/analyze/report.txt, target/analyze/lock_order.dot");
    if report.clean() {
        println!("xtask analyze: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask analyze: FAILED (see violations above)");
        ExitCode::FAILURE
    }
}

/// Workspace root, derived from this crate's manifest directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["crates", "src", "benches", "tests"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("warning: skipping unreadable {}: {e}", path.display());
                continue;
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let report = scan_file(&rel, &source);
        violations.extend(report.violations);
    }

    println!("xtask lint: scanned {} files", files.len());
    if violations.is_empty() {
        println!("\nxtask lint: OK (no SAFETY-invariant violations)");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nxtask lint: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Result of scanning one file.
#[derive(Debug, Default)]
struct Report {
    /// Convention violations (fail the lint).
    violations: Vec<String>,
}

/// Files allowed to spawn OS threads directly.
const THREAD_ALLOWLIST: &[&str] = &["crates/utils/src/parallel.rs", "crates/utils/src/sync.rs"];

/// Files allowed to name `std::sync::atomic` directly.
const ATOMIC_ALLOWLIST: &[&str] = &["crates/utils/src/sync.rs"];

/// The one compiled file allowed to import `parking_lot` directly: the
/// sync facade, which re-exports its primitives (or the loom-modeled
/// versions) to the rest of the workspace.
const PARKING_LOT_ALLOWLIST: &[&str] = &["crates/utils/src/sync.rs"];

/// The one file allowed to name hardware prefetch intrinsics (or any
/// `core::arch` / `std::arch` path): the per-target facade everything else
/// calls through.
const PREFETCH_ALLOWLIST: &[&str] = &["crates/utils/src/prefetch.rs"];

/// Directory prefixes exempt from the facade bans: the model checker IS
/// the other side of the facade, and the trace layer sits *below*
/// `saga-utils` (the pool emits spans), so neither can route through
/// `saga_utils::sync` — both use the real primitives. The analyzer's
/// seeded-violation fixtures are never compiled and deliberately keep the
/// raw idiom so their shapes match real pre-facade code.
const FACADE_EXEMPT_DIRS: &[&str] =
    &["crates/loom/", "crates/trace/", "crates/analyze/fixtures/"];

/// Library files allowed to call `println!` / `eprintln!` directly: the
/// bench reporting facade (`emit*` / `finish_trace` own stdout for the
/// figure binaries) — everything else goes through `saga_trace::progress!`.
const PRINT_ALLOWLIST: &[&str] = &["crates/bench/src/lib.rs"];

/// Directory prefixes exempt from the print ban: xtask is a terminal tool
/// (its reports ARE its output) and `crates/trace/` defines the
/// `progress!` facade itself, which expands to `eprintln!`.
const PRINT_EXEMPT_DIRS: &[&str] = &["crates/xtask/", "crates/trace/"];

/// True for library source: a file under some `src/` that is not a binary
/// target (`src/bin/`, or the crate's `src/main.rs`). Integration tests
/// (`tests/`) and benches own their stdout and are not library code.
fn is_library_source(rel_path: &str) -> bool {
    let in_src = rel_path.starts_with("src/") || rel_path.contains("/src/");
    in_src && !rel_path.contains("/bin/") && !rel_path.ends_with("/main.rs")
}

/// One source line after comment/string stripping.
struct Line {
    /// Code with comments and string-literal contents removed.
    code: String,
    /// Comment text on the line (contents after `//`, or inside `/* */`).
    comment: String,
    /// True when the line holds only a comment (and/or whitespace).
    pure_comment: bool,
}

/// Scans one file's source and reports violations. Pure function of its
/// inputs so the unit tests can seed violations from string literals.
fn scan_file(rel_path: &str, source: &str) -> Report {
    let mut report = Report::default();
    let exempt = FACADE_EXEMPT_DIRS.iter().any(|d| rel_path.starts_with(d));
    let lines = strip(source);

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();

        if !exempt {
            if (contains_token_path(code, "std::thread::spawn")
                || contains_token_path(code, "std::thread::Builder"))
                && !THREAD_ALLOWLIST.contains(&rel_path)
            {
                report.violations.push(format!(
                    "{rel_path}:{lineno}: direct OS-thread spawn outside \
                     saga_utils::parallel (use the pool or the sync facade)"
                ));
            }
            if code.contains("std::sync::atomic") && !ATOMIC_ALLOWLIST.contains(&rel_path) {
                report.violations.push(format!(
                    "{rel_path}:{lineno}: direct `std::sync::atomic` use outside the sync \
                     facade (use `saga_utils::sync::atomic` so `--cfg loom` applies)"
                ));
            }
            if contains_token_path(code, "parking_lot")
                && !PARKING_LOT_ALLOWLIST.contains(&rel_path)
            {
                report.violations.push(format!(
                    "{rel_path}:{lineno}: direct `parking_lot` use outside the sync \
                     facade (take locks from `saga_utils::sync` so `--cfg loom` applies)"
                ));
            }
        }

        if (code.contains("_mm_prefetch")
            || contains_token_path(code, "core::arch")
            || contains_token_path(code, "std::arch"))
            && !PREFETCH_ALLOWLIST.contains(&rel_path)
        {
            report.violations.push(format!(
                "{rel_path}:{lineno}: arch intrinsic outside the prefetch facade \
                 (route through `saga_utils::prefetch` so target gating stays in one file)"
            ));
        }

        if is_library_source(rel_path)
            && !PRINT_ALLOWLIST.contains(&rel_path)
            && !PRINT_EXEMPT_DIRS.iter().any(|d| rel_path.starts_with(d))
        {
            for mac in ["eprintln!", "println!"] {
                if contains_macro_call(code, mac) {
                    report.violations.push(format!(
                        "{rel_path}:{lineno}: direct `{mac}` in library code (route \
                         progress through `saga_trace::progress!` or results through \
                         `saga_core::report`)"
                    ));
                }
            }
        }

        for site in unsafe_sites(code) {
            match site {
                UnsafeSite::Fn => {
                    if !doc_block_above(&lines, idx).contains("# Safety") {
                        report.violations.push(format!(
                            "{rel_path}:{lineno}: `unsafe fn` without a `# Safety` doc section"
                        ));
                    }
                }
                UnsafeSite::Impl | UnsafeSite::Block => {
                    let here = line.comment.contains("SAFETY:");
                    let above = comment_block_above(&lines, idx).contains("SAFETY:");
                    if !here && !above {
                        let what = if site == UnsafeSite::Impl { "impl" } else { "block" };
                        report.violations.push(format!(
                            "{rel_path}:{lineno}: `unsafe {what}` without a `// SAFETY:` comment"
                        ));
                    }
                }
            }
        }
    }
    report
}

/// Kind of `unsafe` occurrence found on a line.
#[derive(Debug, PartialEq, Eq)]
enum UnsafeSite {
    /// `unsafe fn name(...)` declaration (fn-pointer types don't count).
    Fn,
    /// `unsafe impl Trait for T`.
    Impl,
    /// `unsafe { ... }` block (or any other `unsafe` use).
    Block,
}

/// Finds every `unsafe` keyword on a stripped code line and classifies it.
fn unsafe_sites(code: &str) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find("unsafe") {
        let at = start + pos;
        start = at + "unsafe".len();
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = &code[at + "unsafe".len()..];
        let after_ok = after.is_empty() || !is_ident_byte(after.as_bytes()[0]);
        if !(before_ok && after_ok) {
            continue; // part of an identifier like `unsafe_op_in_unsafe_fn`
        }
        let rest = after.trim_start();
        if let Some(rest) = rest.strip_prefix("fn") {
            // `unsafe fn(` is a function-pointer *type*; a declaration has
            // an identifier (or generics) after `fn`.
            let is_decl = rest
                .trim_start()
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if is_decl {
                sites.push(UnsafeSite::Fn);
            }
        } else if rest.starts_with("impl") || rest.starts_with("extern") {
            sites.push(UnsafeSite::Impl);
        } else {
            sites.push(UnsafeSite::Block);
        }
    }
    sites
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Macro-invocation match with an identifier boundary on the left, so that
/// `println!` does not fire inside `eprintln!` (a `::`-qualified path like
/// `std::println!` still counts). The needle ends in `!`, which bounds the
/// right side by itself.
fn contains_macro_call(code: &str, needle: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        start = at + needle.len();
        if at == 0 || !is_ident_byte(bytes[at - 1]) {
            return true;
        }
    }
    false
}

/// `std::thread::spawn`-style path match with identifier boundaries, so
/// that e.g. `my_std::thread::spawner` doesn't count.
fn contains_token_path(code: &str, needle: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        start = at + needle.len();
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !is_ident_byte(b) && b != b':'
        };
        let end = at + needle.len();
        let after_ok = end == code.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Concatenated comment text of the contiguous pure-comment lines directly
/// above `idx` (attribute lines like `#[inline]` are skipped).
fn comment_block_above(lines: &[Line], idx: usize) -> String {
    let mut text = String::new();
    for line in lines[..idx].iter().rev() {
        let code = line.code.trim();
        if line.pure_comment {
            text.push_str(&line.comment);
            text.push('\n');
        } else if code.starts_with("#[") || code.starts_with("#![") {
            continue; // attributes sit between the comment and the item
        } else {
            break;
        }
    }
    text
}

/// Doc-comment text above `idx`: same walk as [`comment_block_above`], but
/// callers match `# Safety` inside `///` docs (which land in `comment`).
fn doc_block_above(lines: &[Line], idx: usize) -> String {
    comment_block_above(lines, idx)
}

/// Splits source into [`Line`]s with comments and string contents removed.
///
/// Handles `//` line comments, nested-free `/* */` block comments, and
/// double-quoted string literals with backslash escapes. Char literals and
/// raw strings are not special-cased; the workspace doesn't put `"` or
/// `//` inside them.
fn strip(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    for raw in source.lines() {
        let mut code = String::new();
        let mut comment = String::new();
        let mut chars = raw.chars().peekable();
        let mut in_string = false;
        // Distinguishes a bare `///` (empty comment text, still a comment
        // line) from a genuinely blank line, which ends a comment block.
        let mut saw_comment = in_block_comment;
        while let Some(c) = chars.next() {
            if in_block_comment {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment = false;
                } else {
                    comment.push(c);
                }
                continue;
            }
            if in_string {
                if c == '\\' {
                    chars.next(); // skip the escaped character
                } else if c == '"' {
                    in_string = false;
                    code.push('"');
                }
                continue;
            }
            match c {
                '"' => {
                    in_string = true;
                    code.push('"');
                }
                '/' if chars.peek() == Some(&'/') => {
                    saw_comment = true;
                    comment.push_str(chars.collect::<String>().trim_start_matches('/'));
                    break;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment = true;
                    saw_comment = true;
                }
                _ => code.push(c),
            }
        }
        let pure_comment = code.trim().is_empty() && saw_comment;
        out.push(Line {
            code,
            comment,
            pure_comment,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_unsafe_block_passes() {
        let src = "fn f() {\n    // SAFETY: pointer is valid.\n    unsafe { g() };\n}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).violations.is_empty());
    }

    #[test]
    fn trailing_safety_comment_passes() {
        let src = "fn f() {\n    unsafe { g() }; // SAFETY: pointer is valid.\n}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).violations.is_empty());
    }

    #[test]
    fn seeded_unannotated_unsafe_block_fails() {
        let src = "fn f() {\n    unsafe { g() };\n}\n";
        let report = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("`unsafe block`"), "{report:?}");
        assert!(report.violations[0].contains(":2:"), "{report:?}");
    }

    #[test]
    fn seeded_unannotated_unsafe_impl_fails() {
        let src = "struct S;\nunsafe impl Send for S {}\n";
        let report = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("`unsafe impl`"), "{report:?}");
    }

    #[test]
    fn safety_comment_above_attribute_passes() {
        let src = "// SAFETY: disjoint rows.\n#[allow(dead_code)]\nunsafe impl Send for S {}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).violations.is_empty());
    }

    #[test]
    fn unsafe_fn_without_safety_docs_fails() {
        let src = "/// Does a thing.\nunsafe fn f() {}\n";
        let report = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("# Safety"), "{report:?}");
    }

    #[test]
    fn unsafe_fn_with_safety_docs_passes() {
        let src = "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller checks x.\n#[inline]\nunsafe fn f() {}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).violations.is_empty());
    }

    #[test]
    fn fn_pointer_type_is_not_a_declaration() {
        let src = "struct J {\n    call: unsafe fn(*const ()),\n}\n";
        // The field *type* needs no docs; the bare `unsafe` is not a block
        // either, so nothing is flagged.
        let report = scan_file("crates/demo/src/lib.rs", src);
        assert!(
            report.violations.iter().all(|v| !v.contains("# Safety")),
            "{report:?}"
        );
    }

    #[test]
    fn unsafe_inside_string_or_comment_is_ignored() {
        let src = "fn f() {\n    let s = \"unsafe { nope }\";\n    // unsafe impl in prose\n    let _ = s;\n}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).violations.is_empty());
    }

    #[test]
    fn thread_spawn_outside_pool_fails_and_allowlist_passes() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        let report = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("OS-thread"), "{report:?}");
        assert!(scan_file("crates/utils/src/parallel.rs", src)
            .violations
            .is_empty());
        assert!(scan_file("crates/loom/src/rt.rs", src).violations.is_empty());
    }

    #[test]
    fn atomic_import_outside_facade_fails_and_facade_passes() {
        let src = "use std::sync::atomic::{AtomicUsize, Ordering};\n";
        let report = scan_file("crates/graph/src/lib.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("sync facade"), "{report:?}");
        assert!(scan_file("crates/utils/src/sync.rs", src).violations.is_empty());
        assert!(scan_file("crates/loom/src/sync.rs", src).violations.is_empty());
    }

    #[test]
    fn prefetch_intrinsic_outside_facade_fails_and_facade_passes() {
        let src = "fn f(p: *const u8) {\n    unsafe { core::arch::x86_64::_mm_prefetch::<0>(p as *const i8) }; // SAFETY: no deref.\n}\n";
        let report = scan_file("crates/graph/src/csr.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("prefetch facade"), "{report:?}");
        assert!(scan_file("crates/utils/src/prefetch.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn arch_path_in_string_or_comment_is_ignored() {
        let src = "fn f() {\n    let s = \"core::arch::x86_64\";\n    // _mm_prefetch in prose\n    let _ = s;\n}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).violations.is_empty());
    }

    #[test]
    fn relaxed_ordering_is_not_a_lint_violation() {
        // The Relaxed audit lives in `cargo xtask analyze` now.
        let src = "fn f(c: &saga_utils::sync::atomic::AtomicUsize) {\n    c.load(Ordering::Relaxed);\n}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).violations.is_empty());
    }

    #[test]
    fn parking_lot_outside_facade_fails_and_facade_passes() {
        let src = "use parking_lot::{Mutex, RwLock};\n";
        let report = scan_file("crates/graph/src/lib.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("`parking_lot`"), "{report:?}");
        assert!(scan_file("crates/utils/src/sync.rs", src).violations.is_empty());
        assert!(scan_file("crates/loom/src/sync.rs", src).violations.is_empty());
        assert!(scan_file("crates/analyze/fixtures/clean.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn seeded_println_in_library_code_fails() {
        let src = "fn f() {\n    println!(\"{}\", 1);\n}\n";
        let report = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("`println!`"), "{report:?}");
        assert!(report.violations[0].contains(":2:"), "{report:?}");
    }

    #[test]
    fn seeded_eprintln_reports_its_own_name_once() {
        let src = "fn f() {\n    eprintln!(\"x\");\n}\n";
        let report = scan_file("crates/demo/src/lib.rs", src);
        // `println!` is a substring of `eprintln!`; the identifier-boundary
        // check must not double-report.
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("`eprintln!`"), "{report:?}");
    }

    #[test]
    fn print_ban_spares_binaries_tests_and_facades() {
        let src = "fn main() {\n    println!(\"ok\");\n}\n";
        for rel in [
            "crates/bench/src/bin/fig6.rs", // binary target
            "crates/demo/src/main.rs",      // crate root binary
            "crates/xtask/src/main.rs",     // terminal tool
            "crates/trace/src/lib.rs",      // defines the progress! facade
            "crates/bench/src/lib.rs",      // emit*/finish_trace facade
            "tests/pipeline.rs",            // integration test, not library
        ] {
            assert!(
                scan_file(rel, src).violations.is_empty(),
                "{rel} should be exempt from the print ban"
            );
        }
    }

    #[test]
    fn println_inside_string_or_comment_is_ignored() {
        let src = "fn f() {\n    let s = \"println!(1)\";\n    // eprintln! in prose\n    let _ = s;\n}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).violations.is_empty());
    }

    #[test]
    fn block_comment_spanning_lines_is_stripped() {
        let src = "/* unsafe impl Send for S {}\n   still comment */\nfn f() {}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).violations.is_empty());
    }
}
