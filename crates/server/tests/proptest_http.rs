//! Totality property tests for the HTTP/1.1 request parser (the same
//! contract the analyzer's lexer pins in `proptest_lexer.rs`): arbitrary
//! byte soup must never panic, and over a real socket a malformed request
//! must get a 4xx/5xx status line and a closed connection — never a hung
//! one.

use proptest::prelude::*;
use saga_server::http::{parse_request, Limits, Parsed};
use saga_server::server::{Server, ServerConfig};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

/// Arbitrary bytes, occasionally long enough to cross the head limit.
fn byte_soup() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512)
}

/// Fragments biased toward HTTP grammar trouble: half-valid start lines,
/// header separators, stray control bytes, conflicting lengths.
fn http_ish() -> impl Strategy<Value = Vec<u8>> {
    let fragment = prop_oneof![
        Just(b"GET / HTTP/1.1\r\n".to_vec()),
        Just(b"GET  /two-spaces HTTP/1.1\r\n".to_vec()),
        Just(b"POST /tenants HTTP/2.0\r\n".to_vec()),
        Just(b"get / http/1.1\r\n".to_vec()),
        Just(b"GET noslash HTTP/1.1\r\n".to_vec()),
        Just(b"content-length: 5\r\n".to_vec()),
        Just(b"content-length: 7\r\n".to_vec()),
        Just(b"content-length: banana\r\n".to_vec()),
        Just(b"transfer-encoding: chunked\r\n".to_vec()),
        Just(b"connection: keep-alive\r\n".to_vec()),
        Just(b": no-name\r\n".to_vec()),
        Just(b"no-colon\r\n".to_vec()),
        Just(b"\r\n".to_vec()),
        Just(b"\n".to_vec()),
        Just(b"\x00\x01\x02".to_vec()),
        Just(b"\xff\xfe".to_vec()),
        proptest::collection::vec(any::<u8>(), 0..16),
    ];
    proptest::collection::vec(fragment, 0..12).prop_map(|v| v.concat())
}

proptest! {
    /// Raw totality: any input yields Incomplete, a head, or an error
    /// whose status is a well-formed 4xx/5xx — never a panic.
    #[test]
    fn parser_is_total_on_byte_soup(buf in byte_soup()) {
        check_total(&buf);
    }

    /// Same, on inputs shaped like broken HTTP.
    #[test]
    fn parser_is_total_on_http_ish_soup(buf in http_ish()) {
        check_total(&buf);
    }

    /// Adding bytes to an incomplete head never flips it to a *different*
    /// error class arbitrarily: a prefix that already parsed to a head
    /// keeps parsing to the same head (incremental reads are how `Conn`
    /// feeds this parser).
    #[test]
    fn complete_heads_are_stable_under_suffixes(buf in http_ish(), extra in byte_soup()) {
        let limits = Limits::default();
        if let Ok(Parsed::Head { request, consumed, content_length }) =
            parse_request(&buf, &limits)
        {
            let mut longer = buf.clone();
            longer.extend_from_slice(&extra);
            match parse_request(&longer, &limits) {
                Ok(Parsed::Head { request: r2, consumed: c2, content_length: l2 }) => {
                    prop_assert_eq!(request, r2);
                    prop_assert_eq!(consumed, c2);
                    prop_assert_eq!(content_length, l2);
                }
                other => prop_assert!(false, "head became {other:?} after suffix"),
            }
        }
    }
}

fn check_total(buf: &[u8]) {
    let limits = Limits::default();
    match parse_request(buf, &limits) {
        Ok(Parsed::Incomplete) | Ok(Parsed::Head { .. }) => {}
        Err(e) => {
            assert!(
                (400..=599).contains(&e.status),
                "error status {} out of range",
                e.status
            );
        }
    }
}

/// The socket-level half of the satellite: every malformed request sent
/// to a live server gets a status line back and the connection closes.
/// Deterministic adversarial corpus rather than proptest here — each case
/// costs a real TCP round trip.
#[test]
fn malformed_requests_get_4xx_not_a_hang() {
    let server = Server::start(ServerConfig {
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    })
    .expect("bind");
    let cases: &[&[u8]] = &[
        b"\x01\x02\x03\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET /\r\n\r\n",
        b"GET / HTTP/3.0\r\n\r\n",
        b"G\x00T / HTTP/1.1\r\n\r\n",
        b"GET noslash HTTP/1.1\r\n\r\n",
        b"GET / HTTP/1.1\r\nno-colon\r\n\r\n",
        b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
        b"GET / HTTP/1.1\r\ncontent-length: zebra\r\n\r\n",
        b"GET / HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 6\r\n\r\n",
        b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        b"POST /t HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n",
        b"\xff\xfe\xfd\n\n",
    ];
    for (i, case) in cases.iter().enumerate() {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(case).expect("send");
        let mut out = Vec::new();
        // read_to_end returning proves the server closed the connection —
        // the "no hung connection" half of the property. The 10s client
        // timeout (vs the server's 500ms) turns a hang into a test error.
        stream.read_to_end(&mut out).expect("server closed cleanly");
        let text = String::from_utf8_lossy(&out);
        assert!(
            text.starts_with("HTTP/1.1 4") || text.starts_with("HTTP/1.1 5"),
            "case {i}: expected 4xx/5xx, got {text:?}"
        );
    }
    // An unterminated head (no blank line at all) must also resolve via
    // the read timeout rather than waiting forever.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(b"GET / HTTP/1.1\r\nhalf-a-head").expect("send");
    let mut out = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.read_to_end(&mut out).expect("server closed after timeout");
    server.shutdown();
}
