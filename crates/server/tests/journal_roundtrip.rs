//! Round-trip property tests for the server's batch journal format,
//! extending the loader-serializer property (PR-4, `saga-stream`) to the
//! journal layer: `serialize ∘ parse` is the identity on structured
//! batches, and `parse` accepts every op spelling the loader does —
//! normalizing all of them to the same canonical text.

use proptest::prelude::*;
use saga_server::journal::{journal_root, parse_journal, serialize_journal, JournalBatch};
use saga_stream::{edge_weight, Edge, EdgeOp};

const CAPACITY: u32 = 48;

/// One op with a canonical edge (explicit quantized weight, directedness
/// passed separately so undirected weights canonicalize).
fn op(directed: bool) -> impl Strategy<Value = (EdgeOp, Edge)> {
    (any::<bool>(), 0..CAPACITY, 0..CAPACITY).prop_map(move |(ins, s, d)| {
        let op = if ins { EdgeOp::Insert } else { EdgeOp::Delete };
        (op, Edge::new(s, d, edge_weight(s, d, directed)))
    })
}

/// Batches as the tenant worker journals them: consecutive seqs, 1..=12
/// ops each.
fn batches(directed: bool) -> impl Strategy<Value = Vec<JournalBatch>> {
    proptest::collection::vec(proptest::collection::vec(op(directed), 1..12), 0..8).prop_map(
        |groups| {
            groups
                .into_iter()
                .enumerate()
                .map(|(seq, ops)| JournalBatch { seq, ops })
                .collect()
        },
    )
}

/// Renders one op in a randomly chosen *foreign* spelling: any of the
/// insert/delete op columns the loader accepts, fused `-src`, with or
/// without the explicit weight.
fn foreign_line(op: EdgeOp, e: &Edge, spelling: u8, with_weight: bool) -> String {
    let w = if with_weight { format!(" {}", e.weight) } else { String::new() };
    match op {
        EdgeOp::Insert => match spelling % 4 {
            0 => format!("{} {}{w}", e.src, e.dst),
            1 => format!("+ {} {}{w}", e.src, e.dst),
            2 => format!("a {} {}{w}", e.src, e.dst),
            _ => format!("I {} {}{w}", e.src, e.dst),
        },
        EdgeOp::Delete => match spelling % 4 {
            0 => format!("- {} {}{w}", e.src, e.dst),
            1 => format!("d {} {}{w}", e.src, e.dst),
            2 => format!("D {} {}{w}", e.src, e.dst),
            _ => format!("-{} {}{w}", e.src, e.dst),
        },
    }
}

proptest! {
    /// serialize ∘ parse is the identity on structured batches, for both
    /// directednesses.
    #[test]
    fn serialize_parse_identity(directed in any::<bool>(), batches in batches(true)) {
        // Re-derive weights for the chosen directedness so the canonical
        // weight rule holds (the generator above fixed directed=true).
        let batches: Vec<JournalBatch> = batches
            .into_iter()
            .map(|b| JournalBatch {
                seq: b.seq,
                ops: b
                    .ops
                    .into_iter()
                    .map(|(op, e)| (op, Edge::new(e.src, e.dst, edge_weight(e.src, e.dst, directed))))
                    .collect(),
            })
            .collect();
        let text = serialize_journal(&batches);
        let back = parse_journal(&text, directed).unwrap();
        prop_assert_eq!(&back, &batches);
        // And serialization is deterministic: a second round trip yields
        // byte-identical text.
        prop_assert_eq!(serialize_journal(&back), text);
    }

    /// Every foreign spelling of the same ops parses to the same batches
    /// as the canonical text — spelling never leaks into the journal's
    /// meaning.
    #[test]
    fn foreign_spellings_normalize(
        directed in any::<bool>(),
        batches in batches(true),
        spellings in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..96),
    ) {
        let batches: Vec<JournalBatch> = batches
            .into_iter()
            .map(|b| JournalBatch {
                seq: b.seq,
                ops: b
                    .ops
                    .into_iter()
                    .map(|(op, e)| (op, Edge::new(e.src, e.dst, edge_weight(e.src, e.dst, directed))))
                    .collect(),
            })
            .collect();
        let mut text = String::new();
        let mut spelling_iter = spellings.into_iter().chain(std::iter::repeat((0, true)));
        for b in &batches {
            for &(op, ref e) in &b.ops {
                let (spelling, with_weight) = spelling_iter.next().unwrap();
                // Fused `-src` only renders for nonzero src (the loader
                // reads a bare `-0` as op column + missing dst).
                let spelling = if op == EdgeOp::Delete && spelling % 4 == 3 && e.src == 0 {
                    0
                } else {
                    spelling
                };
                text.push_str(&foreign_line(op, e, spelling, with_weight));
                text.push('\n');
            }
            text.push_str(&format!("#batch {}\n", b.seq));
        }
        let parsed = parse_journal(&text, directed).unwrap();
        prop_assert_eq!(&parsed, &batches);
        // Normalization: re-serializing the foreign text gives canonical
        // text that round-trips to the same batches.
        let canonical = serialize_journal(&parsed);
        prop_assert_eq!(parse_journal(&canonical, directed).unwrap(), batches);
    }

    /// The replay root is a pure function of the journal text — the
    /// convention offline replay and the tenant worker must share.
    #[test]
    fn root_survives_the_round_trip(batches in batches(true)) {
        let text = serialize_journal(&batches);
        let back = parse_journal(&text, true).unwrap();
        prop_assert_eq!(journal_root(&back), journal_root(&batches));
    }
}
