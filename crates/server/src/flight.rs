//! Flight-recorder triggers and dump writing.
//!
//! [`Server::start`](crate::Server::start) switches `saga-trace` into
//! wrapping flight-recorder mode, so the per-thread rings always hold
//! the most recent `RING_CAPACITY` events per thread. This module is the
//! *dump* side: when something goes wrong, the capture is written to
//! disk **before** the evidence scrolls out of the rings, together with
//! a metrics-snapshot sidecar. Three triggers fire automatically:
//!
//! - **panic** — a chained `std::panic` hook dumps on any panic;
//! - **sustained shedding** — [`note_shed`] counts consecutive 429/503
//!   rejections; a run of `SAGA_FLIGHT_SHED` (default 32) without an
//!   intervening admission ([`note_admitted`]) dumps;
//! - **slow batch** — [`note_batch_latency`] dumps when a tenant batch
//!   exceeds `SAGA_FLIGHT_LATENCY_MS` (default 250ms).
//!
//! Dumps are rate-limited (one per [`MIN_DUMP_INTERVAL_NS`], at most
//! `SAGA_FLIGHT_MAX_DUMPS` per process, default 8) and written to
//! `SAGA_FLIGHT_DIR` (default `target/flight`) as
//! `flight-<seq>-<reason>.trace.json` (Chrome trace-event format,
//! validated by `cargo xtask check-trace`) plus
//! `flight-<seq>-<reason>.metrics.csv`. `GET /debug/flight` serves the
//! live capture over HTTP without touching disk; `?dump=1` also writes
//! an artifact. Every dump increments the `flight.dumps` counter, so
//! scrapes of `/metrics` notice post-mortem evidence exists.

use saga_utils::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::path::PathBuf;

/// Minimum spacing between dumps: a stuck tenant must not turn the dump
/// directory into a disk-filling loop.
pub const MIN_DUMP_INTERVAL_NS: u64 = 5_000_000_000;

static INSTALLED: AtomicBool = AtomicBool::new(false);
/// Slow-batch threshold in ns; 0 until [`init`] runs (trigger disabled).
static LATENCY_NS: AtomicU64 = AtomicU64::new(0);
/// Consecutive-shed threshold; 0 until [`init`] runs.
static SHED_LIMIT: AtomicU64 = AtomicU64::new(0);
/// Current run of consecutive sheds.
static SHED_RUN: AtomicU64 = AtomicU64::new(0);
/// Dumps written so far (also the artifact sequence number).
static DUMPS: AtomicU64 = AtomicU64::new(0);
/// Dump cap; 0 until [`init`] runs.
static MAX_DUMPS: AtomicU64 = AtomicU64::new(0);
/// `now_ns` of the last dump, for rate limiting.
static LAST_DUMP_NS: AtomicU64 = AtomicU64::new(0);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The dump directory (`SAGA_FLIGHT_DIR`, default `target/flight`).
pub fn dump_dir() -> PathBuf {
    PathBuf::from(std::env::var("SAGA_FLIGHT_DIR").unwrap_or_else(|_| "target/flight".to_string()))
}

/// Arms the triggers: reads the `SAGA_FLIGHT_*` thresholds and chains a
/// panic hook that dumps the rings before the process report. Idempotent
/// and process-global (the hook survives the `Server` that installed
/// it; a second server reuses it).
pub fn init() {
    LATENCY_NS.store(env_u64("SAGA_FLIGHT_LATENCY_MS", 250).saturating_mul(1_000_000), Ordering::Relaxed);
    SHED_LIMIT.store(env_u64("SAGA_FLIGHT_SHED", 32), Ordering::Relaxed);
    MAX_DUMPS.store(env_u64("SAGA_FLIGHT_MAX_DUMPS", 8), Ordering::Relaxed);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        // Dump first: the previous hook may abort the process.
        let _ = dump("panic");
        previous(info);
    }));
}

/// Records one shed rejection (accept-backlog 503 or admission 429).
/// A sustained run — `SAGA_FLIGHT_SHED` sheds with no admission in
/// between — triggers a dump and restarts the count.
pub fn note_shed() {
    let limit = SHED_LIMIT.load(Ordering::Relaxed);
    if limit == 0 {
        return;
    }
    let run = SHED_RUN.fetch_add(1, Ordering::Relaxed) + 1;
    if run >= limit {
        SHED_RUN.store(0, Ordering::Relaxed);
        let _ = dump("shed");
    }
}

/// Records a successful admission, breaking any shed run.
pub fn note_admitted() {
    SHED_RUN.store(0, Ordering::Relaxed);
}

/// Records one tenant batch's processing latency; exceeding the
/// threshold triggers a `slow-batch` dump.
pub fn note_batch_latency(elapsed_ns: u64) {
    let limit = LATENCY_NS.load(Ordering::Relaxed);
    if limit > 0 && elapsed_ns > limit {
        let _ = dump("slow-batch");
    }
}

/// Writes a flight dump (trace JSON + metrics CSV sidecar) named after
/// `reason`, subject to the rate limit and dump cap. Returns the trace
/// path, or `None` when suppressed or unwritable.
pub fn dump(reason: &str) -> Option<PathBuf> {
    // Rate limit: one CAS winner per interval; losers drop their dump
    // (the winner's capture covers the same window anyway).
    let now = saga_trace::now_ns();
    let last = LAST_DUMP_NS.load(Ordering::Relaxed);
    if last != 0 && now.saturating_sub(last) < MIN_DUMP_INTERVAL_NS {
        return None;
    }
    if LAST_DUMP_NS
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return None;
    }
    let seq = DUMPS.fetch_add(1, Ordering::Relaxed);
    let cap = MAX_DUMPS.load(Ordering::Relaxed);
    if cap != 0 && seq >= cap {
        DUMPS.store(cap, Ordering::Relaxed);
        return None;
    }
    write_dump(&dump_dir(), seq, reason)
}

/// The unconditional write path (no rate limit — [`dump`] applies it).
fn write_dump(dir: &std::path::Path, seq: u64, reason: &str) -> Option<PathBuf> {
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let trace_path = dir.join(format!("flight-{seq:03}-{reason}.trace.json"));
    let metrics_path = dir.join(format!("flight-{seq:03}-{reason}.metrics.csv"));
    let trace = saga_trace::chrome_trace();
    let metrics = saga_trace::metrics::snapshot().to_csv();
    if let Err(e) = std::fs::write(&trace_path, trace).and_then(|()| std::fs::write(&metrics_path, metrics)) {
        saga_trace::progress!("flight: cannot write dump {}: {e}", trace_path.display());
        return None;
    }
    saga_trace::metrics::counter("flight.dumps").incr();
    saga_trace::progress!("flight: dumped {} ({reason})", trace_path.display());
    Some(trace_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trigger state is process-global; serialize the tests that move it.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn flight_test() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn write_dump_produces_trace_and_metrics_sidecar() {
        let _guard = flight_test();
        let dir = std::env::temp_dir().join(format!("saga-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_dump(&dir, 0, "unit").expect("dump written");
        assert!(path.ends_with("flight-000-unit.trace.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"traceEvents\":["), "{body}");
        assert!(dir.join("flight-000-unit.metrics.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shed_runs_trigger_once_per_limit_and_reset_on_admission() {
        let _guard = flight_test();
        SHED_LIMIT.store(4, Ordering::Relaxed);
        SHED_RUN.store(0, Ordering::Relaxed);
        // Rate-limit dump() into a no-op so the trigger logic is isolated.
        LAST_DUMP_NS.store(saga_trace::now_ns(), Ordering::Relaxed);
        for _ in 0..3 {
            note_shed();
        }
        assert_eq!(SHED_RUN.load(Ordering::Relaxed), 3);
        note_admitted();
        assert_eq!(SHED_RUN.load(Ordering::Relaxed), 0);
        for _ in 0..4 {
            note_shed();
        }
        // The fourth shed fired the (suppressed) dump and reset the run.
        assert_eq!(SHED_RUN.load(Ordering::Relaxed), 0);
        SHED_LIMIT.store(0, Ordering::Relaxed);
    }

    #[test]
    fn rate_limit_suppresses_back_to_back_dumps() {
        let _guard = flight_test();
        MAX_DUMPS.store(8, Ordering::Relaxed);
        LAST_DUMP_NS.store(saga_trace::now_ns(), Ordering::Relaxed);
        assert!(dump("unit-rl").is_none(), "within the interval: suppressed");
        LAST_DUMP_NS.store(0, Ordering::Relaxed);
        MAX_DUMPS.store(0, Ordering::Relaxed);
    }
}
