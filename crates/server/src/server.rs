//! The service itself: a `std::net` TCP accept loop feeding an
//! admission-bounded connection queue drained by a reused
//! [`ThreadPool`](saga_utils::parallel::ThreadPool).
//!
//! Thread layout (DESIGN.md §13):
//!
//! - **accept** (`saga-server-accept`): blocking `accept()`; pushes each
//!   connection into a bounded queue, shedding with `503` when full.
//! - **dispatch** (`saga-server-dispatch`): parks inside
//!   [`ThreadPool::run_on_all`] for the server's lifetime — every pool
//!   worker loops popping connections and serving keep-alive requests.
//! - **tenants** (`saga-tenant-*`): one worker per tenant (see
//!   [`crate::tenant`]); connection workers only enqueue.
//!
//! Shutdown closes both queues, wakes the accept loop with a self-connect,
//! joins everything, then drains tenants.
//!
//! [`ThreadPool::run_on_all`]: saga_utils::parallel::ThreadPool::run_on_all

use crate::api::{handle, Registry};
use crate::http::{Conn, ConnError, Limits, Response};
use saga_trace::metrics::{counter, histogram};
use saga_utils::parallel::ThreadPool;
use saga_utils::queue::BoundedQueue;
use saga_utils::sync::atomic::{AtomicBool, Ordering};
use saga_utils::sync::{thread, Arc, Mutex};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Connection-serving workers (the reused pool's size).
    pub workers: usize,
    /// Bound on accepted-but-unserved connections; beyond it the accept
    /// loop sheds load with `503`.
    pub accept_backlog: usize,
    /// Per-connection socket read timeout (idle keep-alive connections are
    /// dropped after this, so workers can never be wedged by a silent
    /// peer).
    pub read_timeout: Duration,
    /// HTTP parser limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            accept_backlog: 32,
            read_timeout: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }
}

/// A running server: bound socket, accept/dispatch threads, tenant
/// registry. Dropping it shuts everything down.
pub struct Server {
    registry: Arc<Registry>,
    addr: SocketAddr,
    conns: Arc<BoundedQueue<TcpStream>>,
    stopping: Arc<AtomicBool>,
    accept_handle: Mutex<Option<thread::JoinHandle>>,
    dispatch_handle: Mutex<Option<thread::JoinHandle>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl Server {
    /// Binds and starts serving.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Observability is part of the service contract, not an opt-in:
        // tracing runs in wrapping flight-recorder mode (each thread's
        // ring always holds the newest events), the trigger thresholds
        // are armed, and the uptime epoch for `/metrics` is pinned.
        saga_trace::set_enabled(true);
        saga_trace::set_flight_recorder(true);
        saga_trace::expose::mark_started();
        crate::flight::init();
        let registry = Arc::new(Registry::new());
        let conns = Arc::new(BoundedQueue::new(config.accept_backlog));
        let stopping = Arc::new(AtomicBool::new(false));

        let accept_handle = {
            let conns = Arc::clone(&conns);
            let stopping = Arc::clone(&stopping);
            let read_timeout = config.read_timeout;
            thread::spawn_named("saga-server-accept".to_string(), move || {
                accept_loop(&listener, &conns, &stopping, read_timeout);
            })
        };

        let dispatch_handle = {
            let conns = Arc::clone(&conns);
            let registry = Arc::clone(&registry);
            let limits = config.limits;
            let workers = config.workers.max(1);
            thread::spawn_named("saga-server-dispatch".to_string(), move || {
                // The pool is the reused worker abstraction: run_on_all
                // parks this thread while every worker (itself included)
                // drains the connection queue until close.
                let pool = ThreadPool::new(workers);
                pool.run_on_all(|_worker| {
                    while let Some(stream) = conns.pop() {
                        serve_connection(&registry, stream, &limits);
                    }
                });
            })
        };

        Ok(Server {
            registry,
            addr,
            conns,
            stopping,
            accept_handle: Mutex::new(Some(accept_handle)),
            dispatch_handle: Mutex::new(Some(dispatch_handle)),
        })
    }

    /// The bound address (port resolved when `addr` used port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The tenant registry, for in-process inspection in tests.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Stops accepting, drains in-flight connections and queued tenant
    /// work, joins every thread. Idempotent.
    pub fn shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: it checks `stopping` after every
        // accept, so a throwaway self-connection gets it to exit.
        let _ = TcpStream::connect(self.addr);
        let accept = self.accept_handle.lock().take();
        if let Some(h) = accept {
            let _ = h.join();
        }
        self.conns.close();
        let dispatch = self.dispatch_handle.lock().take();
        if let Some(h) = dispatch {
            let _ = h.join();
        }
        self.registry.shutdown_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    conns: &BoundedQueue<TcpStream>,
    stopping: &AtomicBool,
    read_timeout: Duration,
) {
    let accepted = counter("server.connections_accepted");
    let shed = counter("server.connections_shed");
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) if stopping.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if stopping.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_nodelay(true);
        accepted.incr();
        if let Err(mut stream) = conns.try_push(stream) {
            // Backlog full: shed with 503 rather than let the kernel
            // queue grow unbounded behind a stalled worker pool.
            shed.incr();
            crate::flight::note_shed();
            let _ = Response::text(503, "server busy\n").write_to(&mut stream, false);
            let _ = stream.flush();
        }
    }
}

/// Serves one connection: keep-alive request loop, one response per
/// request. Malformed requests get their 4xx/5xx status and the
/// connection closes (no resynchronization attempts); timeouts and EOF
/// just close.
fn serve_connection(registry: &Registry, stream: TcpStream, limits: &Limits) {
    let requests = counter("server.requests");
    let errors = counter("server.http_errors");
    let latency = histogram("server.request_ns");
    let mut conn = Conn::new(stream, *limits);
    loop {
        match conn.next_request() {
            Ok(req) => {
                // Each accepted request gets a fresh trace context; the
                // span below is the root of the request's trace tree and
                // everything downstream (tenant worker, driver, BSP)
                // inherits the id through the ambient-context machinery.
                let ctx = saga_trace::TraceCtx::mint();
                let _span = saga_trace::span_with_ctx!("http_request", ctx);
                let started = Instant::now();
                let mut resp = handle(registry, &req);
                latency.record(started.elapsed().as_nanos() as u64);
                requests.incr();
                if resp.status >= 400 {
                    errors.incr();
                }
                // Echo the id so clients (and the obs acceptance test)
                // can correlate a response with its exported trace tree.
                resp.headers.push(("x-saga-trace-id".to_string(), ctx.trace_hex()));
                if resp.write_to(conn.stream_mut(), req.keep_alive).is_err() || !req.keep_alive {
                    return;
                }
            }
            Err(ConnError::Bad(e)) => {
                // The totality contract: byte soup never hangs the
                // connection — it gets a status line and a close.
                errors.incr();
                let _ = Response::text(e.status, format!("{e}\n")).write_to(conn.stream_mut(), false);
                return;
            }
            Err(ConnError::Closed) | Err(ConnError::Io(_)) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_healthz_and_rejects_garbage() {
        let server = Server::start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let ok = roundtrip(
            server.addr(),
            "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert!(ok.contains("\r\n\r\nok\n"), "{ok}");
        assert!(ok.contains("server saga-server "), "{ok}");
        assert!(ok.contains("x-saga-trace-id: "), "{ok}");

        let bad = roundtrip(server.addr(), "\x01\x02 not http\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 4"), "{bad}");
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_pipelined_requests() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\n\r\nGET /tenants HTTP/1.1\r\nconnection: close\r\n\r\n",
            )
            .unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert_eq!(out.matches("HTTP/1.1 200").count(), 2, "{out}");
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_releases_the_port() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port is free again.
        let _rebind = TcpListener::bind(addr).unwrap();
    }
}
