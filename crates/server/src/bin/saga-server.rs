//! Runnable entry point: `saga-server [addr] [workers]`.
//!
//! Binds (default `127.0.0.1:7171`), prints the resolved address, and
//! serves until the process is killed. The CI smoke job and EXPERIMENTS.md
//! recipes drive this binary with `saga-check`'s load generator.

use saga_server::{Server, ServerConfig};
use std::time::Duration;

// With `--features alloc-track` every allocation is counted (a few
// relaxed atomic ops per malloc/free), feeding the `mem.high_water`
// and per-tenant `mem.tenant_bytes` gauges on `/metrics`. Off by
// default: the stock binary pays nothing.
#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: saga_trace::alloc::CountingAlloc = saga_trace::alloc::CountingAlloc;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let workers = args
        .next()
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| saga_utils::sync::thread::available_parallelism().min(8));
    let config = ServerConfig {
        addr,
        workers,
        ..ServerConfig::default()
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("saga-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("saga-server listening on {} ({workers} workers)", server.addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
