//! A minimal, total HTTP/1.1 layer over `std::net`.
//!
//! Only what the tenant API needs: request heads with `Content-Length`
//! bodies, keep-alive, and plain-text responses. The head parser
//! ([`parse_request`]) is **total**: any byte sequence either yields a
//! request, reports "incomplete, read more", or fails with an
//! [`HttpError`] carrying the 4xx/5xx status to answer with — it never
//! panics and never loops unboundedly (work is linear in the buffer, and
//! the buffer itself is capped by [`Limits`]). `saga-server`'s connection
//! loop leans on that contract to turn arbitrary network garbage into a
//! `400 Bad Request` instead of a wedged worker; the totality property is
//! pinned by a byte-soup proptest in `tests/proptest_http.rs`, the same
//! pattern the `saga-analyze` lexer uses.

use std::io::{Read, Write};

/// Hard limits the parser and reader enforce, so one client cannot pin a
/// worker or balloon memory.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request head (start line + headers). Exceeding it
    /// fails with `431`.
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted. Exceeding it fails with `413`.
    pub max_body_bytes: usize,
    /// Maximum number of header lines. Exceeding it fails with `431`.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            max_headers: 64,
        }
    }
}

/// A failed request: the HTTP status to answer with plus a short reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpError {
    /// Response status (4xx for malformed input, 5xx for unsupported).
    pub status: u16,
    /// Human-readable reason, safe to echo in the response body.
    pub reason: &'static str,
}

impl HttpError {
    fn bad(reason: &'static str) -> Self {
        Self {
            status: 400,
            reason,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.reason)
    }
}

/// One parsed request (head plus fully-read body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, before any `?`.
    pub path: String,
    /// Query component (after `?`, may be empty).
    pub query: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Head-parse outcome: the bytes may not hold a full head yet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// No terminating blank line in the buffer yet — read more bytes.
    Incomplete,
    /// A complete head: the request (body still empty) plus the number of
    /// buffer bytes consumed (start line through terminating blank line)
    /// and the declared `Content-Length`.
    Head {
        /// The parsed request, body not yet attached.
        request: Request,
        /// Bytes of `buf` the head consumed.
        consumed: usize,
        /// Declared body length (0 when absent).
        content_length: usize,
    },
}

/// Finds the end of the head: the first `\r\n\r\n` (or the lenient bare
/// `\n\n`), returning the index one past it.
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some(i + 2);
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// True for the characters RFC 9110 allows in a token (method, header
/// name).
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Parses a request head out of `buf`. Total: every input yields
/// [`Parsed::Incomplete`], a head, or an [`HttpError`] — see the module
/// docs. The caller attaches the body afterwards.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parsed, HttpError> {
    let end = match head_end(buf) {
        Some(end) => end,
        None => {
            return if buf.len() > limits.max_head_bytes {
                Err(HttpError {
                    status: 431,
                    reason: "request head too large",
                })
            } else {
                Ok(Parsed::Incomplete)
            };
        }
    };
    if end > limits.max_head_bytes {
        return Err(HttpError {
            status: 431,
            reason: "request head too large",
        });
    }
    let head = std::str::from_utf8(&buf[..end])
        .map_err(|_| HttpError::bad("request head is not UTF-8"))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let start = lines.next().ok_or_else(|| HttpError::bad("empty head"))?;

    // Start line: METHOD SP target SP HTTP/1.x — exactly three fields.
    let mut parts = start.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or_else(|| HttpError::bad("missing method"))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::bad("malformed start line"));
    }
    if method.is_empty() || !method.bytes().all(is_token_byte) {
        return Err(HttpError::bad("malformed method token"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => {
            return Err(HttpError {
                status: 505,
                reason: "HTTP version not supported",
            })
        }
        _ => return Err(HttpError::bad("malformed HTTP version")),
    };
    if !target.starts_with('/') {
        return Err(HttpError::bad("request target must be absolute path"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    // Header lines until the blank terminator.
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError {
                status: 431,
                reason: "too many headers",
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad("header line without colon"))?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::bad("malformed header name"));
        }
        let value = value.trim();
        if value.bytes().any(|b| b < 0x20 && b != b'\t') {
            return Err(HttpError::bad("control byte in header value"));
        }
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }

    let mut content_length = 0usize;
    let mut seen_length: Option<&str> = None;
    for (name, value) in &headers {
        match name.as_str() {
            "content-length" => {
                if seen_length.is_some_and(|prev| prev != value) {
                    return Err(HttpError::bad("conflicting Content-Length headers"));
                }
                seen_length = Some(value);
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::bad("malformed Content-Length"))?;
            }
            "transfer-encoding" => {
                return Err(HttpError {
                    status: 501,
                    reason: "Transfer-Encoding not supported",
                })
            }
            _ => {}
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(HttpError {
            status: 413,
            reason: "request body too large",
        });
    }

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };

    Ok(Parsed::Head {
        request: Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query.to_string(),
            headers,
            body: Vec::new(),
            keep_alive,
        },
        consumed: end,
        content_length,
    })
}

/// One connection's read state: a byte buffer that requests are parsed
/// out of as they complete.
#[derive(Debug)]
pub struct Conn<S> {
    stream: S,
    buf: Vec<u8>,
    limits: Limits,
}

/// Why [`Conn::next_request`] did not return a request.
#[derive(Debug)]
pub enum ConnError {
    /// The peer closed (or timed out) before a full request arrived;
    /// nothing to answer.
    Closed,
    /// Malformed request — answer with the error's status, then close.
    Bad(HttpError),
    /// Transport error.
    Io(std::io::Error),
}

impl<S: Read> Conn<S> {
    /// Wraps a stream (typically a `TcpStream` with a read timeout set).
    pub fn new(stream: S, limits: Limits) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            limits,
        }
    }

    /// The underlying stream (for writing the response).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Reads until one full request (head + declared body) is available
    /// and returns it. `Err(Closed)` on clean EOF between requests.
    pub fn next_request(&mut self) -> Result<Request, ConnError> {
        let mut chunk = [0u8; 4096];
        loop {
            match parse_request(&self.buf, &self.limits).map_err(ConnError::Bad)? {
                Parsed::Head {
                    mut request,
                    consumed,
                    content_length,
                } => {
                    while self.buf.len() < consumed + content_length {
                        let n = self.read_chunk(&mut chunk)?;
                        if n == 0 {
                            return Err(ConnError::Bad(HttpError::bad(
                                "connection closed mid-body",
                            )));
                        }
                        self.buf.extend_from_slice(&chunk[..n]);
                    }
                    request.body = self.buf[consumed..consumed + content_length].to_vec();
                    self.buf.drain(..consumed + content_length);
                    return Ok(request);
                }
                Parsed::Incomplete => {
                    let n = self.read_chunk(&mut chunk)?;
                    if n == 0 {
                        return if self.buf.iter().all(|&b| b == b'\r' || b == b'\n') {
                            Err(ConnError::Closed)
                        } else {
                            Err(ConnError::Bad(HttpError::bad("truncated request head")))
                        };
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    fn read_chunk(&mut self, chunk: &mut [u8]) -> Result<usize, ConnError> {
        match self.stream.read(chunk) {
            Ok(n) => Ok(n),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A read timeout mid-request means the client stalled; the
                // caller closes rather than waiting forever.
                Err(ConnError::Closed)
            }
            Err(e) => Err(ConnError::Io(e)),
        }
    }
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the defaults (`Content-Length`,
    /// `Content-Type`, `Connection`).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// The canonical reason phrase for the statuses this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Serializes the response, with `Connection: close` unless
    /// `keep_alive`.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-length: {}\r\ncontent-type: text/plain; charset=utf-8\r\nconnection: {}\r\n",
            self.status,
            Self::reason(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(input: &str) -> Request {
        match parse_request(input.as_bytes(), &Limits::default()).unwrap() {
            Parsed::Head { request, .. } => request,
            Parsed::Incomplete => panic!("incomplete: {input:?}"),
        }
    }

    #[test]
    fn parses_a_plain_get() {
        let r = parse_ok("GET /tenants/t1/status?full=1 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/tenants/t1/status");
        assert_eq!(r.query, "full=1");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn content_length_and_consumed_are_reported() {
        let input = b"POST /t HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        match parse_request(input, &Limits::default()).unwrap() {
            Parsed::Head {
                consumed,
                content_length,
                ..
            } => {
                assert_eq!(content_length, 5);
                assert_eq!(&input[consumed..consumed + 5], b"hello");
            }
            Parsed::Incomplete => panic!("incomplete"),
        }
    }

    #[test]
    fn incomplete_heads_ask_for_more() {
        for input in ["", "GET", "GET / HTTP/1.1\r\nHost: x\r\n"] {
            assert_eq!(
                parse_request(input.as_bytes(), &Limits::default()).unwrap(),
                Parsed::Incomplete,
                "{input:?}"
            );
        }
    }

    #[test]
    fn malformed_heads_get_4xx() {
        for (input, status) in [
            ("garbage\r\n\r\n", 400),
            ("GET /\r\n\r\n", 400),
            ("GET / HTTP/1.1 extra\r\n\r\n", 400),
            ("G@T / HTTP/1.1\r\n\r\n", 400),
            ("GET relative HTTP/1.1\r\n\r\n", 400),
            ("GET / HTTP/2.0\r\n\r\n", 505),
            ("GET / HTTQ\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\n: empty-name\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\ncontent-length: ten\r\n\r\n", 400),
            (
                "POST / HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 4\r\n\r\n",
                400,
            ),
            (
                "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
                501,
            ),
        ] {
            match parse_request(input.as_bytes(), &Limits::default()) {
                Err(e) => assert_eq!(e.status, status, "{input:?}"),
                Ok(p) => panic!("{input:?} parsed as {p:?}"),
            }
        }
    }

    #[test]
    fn limits_are_enforced() {
        let limits = Limits {
            max_head_bytes: 32,
            max_body_bytes: 8,
            max_headers: 2,
        };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        assert_eq!(
            parse_request(long.as_bytes(), &limits).unwrap_err().status,
            431
        );
        // Over the head limit without a terminator yet: also 431, not an
        // unbounded buffer.
        let unterminated = "x".repeat(64);
        assert_eq!(
            parse_request(unterminated.as_bytes(), &limits)
                .unwrap_err()
                .status,
            431
        );
        let big_body = b"POST / HTTP/1.1\r\ncontent-length: 9\r\n\r\n";
        assert_eq!(
            parse_request(
                big_body,
                &Limits {
                    max_head_bytes: 1024,
                    max_headers: 8,
                    ..limits
                }
            )
            .unwrap_err()
            .status,
            413
        );
        let many = "GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert_eq!(
            parse_request(
                many.as_bytes(),
                &Limits {
                    max_head_bytes: 1024,
                    max_body_bytes: 8,
                    max_headers: 2
                }
            )
            .unwrap_err()
            .status,
            431
        );
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let r = parse_ok("GET /x HTTP/1.1\nhost: y\n\n");
        assert_eq!(r.path, "/x");
        assert_eq!(r.header("host"), Some("y"));
    }

    #[test]
    fn connection_header_overrides_defaults() {
        assert!(!parse_ok("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(parse_ok("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
        assert!(!parse_ok("GET / HTTP/1.0\r\n\r\n").keep_alive);
    }

    #[test]
    fn conn_reads_pipelined_requests_from_one_buffer() {
        let bytes: &[u8] =
            b"POST /a HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiGET /b HTTP/1.1\r\n\r\n";
        let mut conn = Conn::new(bytes, Limits::default());
        let a = conn.next_request().unwrap();
        assert_eq!((a.path.as_str(), a.body.as_slice()), ("/a", b"hi".as_slice()));
        let b = conn.next_request().unwrap();
        assert_eq!(b.path, "/b");
        assert!(matches!(conn.next_request(), Err(ConnError::Closed)));
    }

    #[test]
    fn truncated_body_is_a_bad_request_not_a_hang() {
        let bytes: &[u8] = b"POST /a HTTP/1.1\r\ncontent-length: 10\r\n\r\nhi";
        let mut conn = Conn::new(bytes, Limits::default());
        match conn.next_request() {
            Err(ConnError::Bad(e)) => assert_eq!(e.status, 400),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let mut out = Vec::new();
        Response::text(429, "queue full\n")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nqueue full\n"), "{text}");
    }
}
