//! A minimal blocking HTTP/1.1 client over `std::net`, sized exactly to
//! this server's plain-text API. One connection per [`Client`], keep-alive
//! across calls; `saga-check`'s load generator drives N of these
//! concurrently.

use crate::http::{parse_request, Limits};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response as the client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A persistent connection to one server.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    timeout: Duration,
}

impl Client {
    /// Creates a client (connects lazily on first request).
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            stream: None,
            timeout: Duration::from_secs(30),
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// I/O errors and malformed server responses surface as `io::Error`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, b"")
    }

    /// `POST path` with a text body.
    ///
    /// # Errors
    ///
    /// I/O errors and malformed server responses surface as `io::Error`.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, body.as_bytes())
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// I/O errors and malformed server responses surface as `io::Error`.
    pub fn delete(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("DELETE", path, b"")
    }

    /// Sends one request and reads the full response. Reconnects once if
    /// the kept-alive connection went stale between calls.
    ///
    /// # Errors
    ///
    /// I/O errors and malformed server responses surface as `io::Error`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let had_live_conn = self.stream.is_some();
        match self.try_request(method, path, body) {
            Ok(resp) => Ok(resp),
            Err(e) if had_live_conn => {
                // Stale keep-alive (server idle-closed between calls):
                // retry exactly once on a fresh connection.
                let _ = e;
                self.stream = None;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("just connected");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: saga\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let sent = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .and_then(|()| stream.flush());
        if let Err(e) = sent {
            self.stream = None;
            return Err(e);
        }
        match read_response(stream) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Reads one full HTTP response (status line + headers + content-length
/// body) from the stream. Reuses the server-side request parser for the
/// header block by rewriting the status line into a request shape — the
/// grammar past the first line is identical.
fn read_response(stream: &mut TcpStream) -> std::io::Result<ClientResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        // A response head ends the same way a request head does.
        if let Some(head_end) = find_head_end(&buf) {
            let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
            let mut lines = head.split("\r\n");
            let status_line = lines.next().ok_or_else(|| bad("empty head"))?;
            let mut parts = status_line.trim_end().splitn(3, ' ');
            let version = parts.next().unwrap_or("");
            if !version.starts_with("HTTP/") {
                return Err(bad("missing HTTP version"));
            }
            let status: u16 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("bad status code"))?;
            // Re-parse the header block with the request parser by
            // substituting a synthetic request line.
            let mut synthetic = b"GET / HTTP/1.1\r\n".to_vec();
            synthetic.extend_from_slice(&buf[status_line.len() + 2..head_end]);
            synthetic.extend_from_slice(b"\r\n\r\n");
            let parsed = parse_request(&synthetic, &Limits::default())
                .map_err(|e| bad(&format!("bad response headers: {e}")))?;
            let (headers, content_length) = match parsed {
                crate::http::Parsed::Head {
                    request,
                    content_length,
                    ..
                } => (request.headers, content_length),
                crate::http::Parsed::Incomplete => return Err(bad("truncated response head")),
            };
            let mut body = buf[head_end..].to_vec();
            while body.len() < content_length {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(bad("connection closed mid-body"));
                }
                body.extend_from_slice(&chunk[..n]);
            }
            body.truncate(content_length);
            return Ok(ClientResponse {
                status,
                headers,
                body,
            });
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before response head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Position one past the head terminator (`\r\n\r\n` or `\n\n`), if
/// present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    #[test]
    fn client_round_trips_the_tenant_lifecycle() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::new(server.addr());

        let resp = client.post("/tenants", "name=cli\nalgorithm=cc\ncapacity=8\n").unwrap();
        assert_eq!(resp.status, 201, "{resp:?}");

        let resp = client.post("/tenants/cli/batches", "0 1\n1 2\n").unwrap();
        assert_eq!(resp.status, 202, "{resp:?}");
        assert!(resp.text().starts_with("depth"), "{resp:?}");

        let resp = client.get("/tenants/cli/values").unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.text().starts_with("u32 8"), "{resp:?}");

        let resp = client.delete("/tenants/cli").unwrap();
        assert_eq!(resp.status, 204);
        assert!(resp.body.is_empty());

        let resp = client.get("/tenants/cli/status").unwrap();
        assert_eq!(resp.status, 404);
        server.shutdown();
    }
}
